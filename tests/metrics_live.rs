//! Live-metrics integration: the counter tracks exported into Chrome
//! traces agree with the pool's own statistics, batch traces carry
//! well-formed counter tracks next to their spans, and enabling metrics
//! collection never changes the pipeline's bytes.
//!
//! These tests live in their own binary on purpose: counter samples are
//! recorded into the process-global trace session, so any parallel test
//! that drives the global pool would pollute a peak-equality assertion.
//! Within the binary every test takes [`TEST_LOCK`].

use arp_core::output::{diff_snapshots, snapshot};
use arp_core::{run_batch_dag, BatchItem, PipelineConfig, ReadyOrder};
use arp_synth::{paper_event, write_event_inputs, PAPER_EVENT_SHAPES};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

/// Trace sessions and the metrics registry are process-global; every test
/// in this binary serializes on this lock.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn stage_paper_batch(base: &Path, scale: f64, n: usize) -> Vec<BatchItem> {
    let mut items = Vec::new();
    for (i, &(label, _, _, _)) in PAPER_EVENT_SHAPES.iter().take(n).enumerate() {
        let dir = base.join("in").join(label);
        std::fs::create_dir_all(&dir).unwrap();
        write_event_inputs(&paper_event(i, scale), &dir).unwrap();
        items.push(BatchItem {
            label: label.to_string(),
            input_dir: dir,
        });
    }
    items
}

#[test]
fn ready_queue_counter_track_peak_matches_pool_stats_peak() {
    let _guard = TEST_LOCK.lock().unwrap();
    // A private pool so no other code path can touch the peak statistic
    // between the snapshot and the assertion.
    let pool = arp_par::ThreadPool::new(3);
    // Wide fan-out: one root releases 62 middle nodes at once into a
    // 3-thread pool, so the ready queue genuinely builds depth; a final
    // sink joins them.
    let n = 64;
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for p in preds.iter_mut().take(n - 1).skip(1) {
        *p = vec![0];
    }
    preds[n - 1] = (1..n - 1).collect();

    let session = arp_trace::TraceSession::start();
    let tasks: Vec<arp_par::BorrowedTask<'_>> = (0..n)
        .map(|_| {
            Box::new(|| std::thread::sleep(Duration::from_micros(200))) as arp_par::BorrowedTask<'_>
        })
        .collect();
    pool.run_dag_prioritized(tasks, &preds, &[]);
    let trace = session.finish();
    let stats = pool.stats();

    // The track samples the exact value `dag_ready_peak` maximizes over,
    // so the exported peak and the pool statistic must agree — this is
    // what lets a Perfetto counter track be read as scheduler truth.
    assert!(stats.dag_ready_peak >= 2, "fan-out never queued: {stats:?}");
    let track_peak = trace
        .counter_peak("ready-queue-depth")
        .expect("ready-queue-depth track missing");
    assert_eq!(track_peak as u64, stats.dag_ready_peak);

    // The workers-busy track is present and never exceeds the thread
    // count plus the helping caller.
    let busy_peak = trace
        .counter_peak("workers-busy")
        .expect("workers-busy track missing");
    assert!((1.0..=4.0).contains(&busy_peak), "busy peak {busy_peak}");

    // Per-track timestamps are monotone (the exporter sorts by track, and
    // the validator enforces it on the JSON form). The stealing scheduler
    // adds tracks beyond the classic two (deque-depth, steals, and the
    // io-workers-busy lane once I/O workers pull compute work), so the
    // exact count is not pinned — only that the classic pair is present.
    let json = trace.to_chrome_json();
    let check = arp_trace::validate_chrome_json(&json).unwrap();
    assert!(check.counter_tracks >= 2, "tracks {}", check.counter_tracks);
    assert_eq!(check.counter_events, trace.counters.len());
    let tracks = trace.counter_tracks();
    assert!(tracks.contains(&"ready-queue-depth"), "{tracks:?}");
    assert!(tracks.contains(&"workers-busy"), "{tracks:?}");
}

#[test]
fn batch_trace_counter_tracks_are_well_formed() {
    let _guard = TEST_LOCK.lock().unwrap();
    let base = std::env::temp_dir().join(format!("arp-met-batch-{}", std::process::id()));
    let items = stage_paper_batch(&base, 0.002, 3);

    let session = arp_trace::TraceSession::start();
    run_batch_dag(
        &items,
        &base.join("work"),
        &PipelineConfig::fast(),
        ReadyOrder::CriticalPath,
    )
    .unwrap();
    let trace = session.finish();

    // The batch trace carries spans AND counter samples, and the whole
    // file — spans, counter names, per-track monotonicity — validates.
    assert!(!trace.spans.is_empty());
    assert!(
        trace.counter_peak("ready-queue-depth").unwrap_or(0.0) >= 1.0,
        "batch run never sampled ready-queue depth"
    );
    let json = trace.to_chrome_json();
    let check = arp_trace::validate_chrome_json(&json).unwrap();
    assert!(check.complete > 0);
    assert!(check.counter_events > 0);
    assert!(check.counter_tracks >= 1);

    // And the file round-trips: counters included, losslessly.
    let back = arp_trace::from_chrome_json(&json).unwrap();
    assert_eq!(back.counters, trace.counters);
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn metrics_collection_never_changes_pipeline_bytes() {
    let _guard = TEST_LOCK.lock().unwrap();
    let base = std::env::temp_dir().join(format!("arp-met-bytes-{}", std::process::id()));
    let items = stage_paper_batch(&base, 0.002, 2);
    let config = PipelineConfig::fast();

    assert!(
        !arp_metrics::enabled(),
        "metrics leaked on from another test"
    );
    let work_off = base.join("work-off");
    run_batch_dag(&items, &work_off, &config, ReadyOrder::CriticalPath).unwrap();

    let work_on = base.join("work-on");
    arp_metrics::set_enabled(true);
    let result = run_batch_dag(&items, &work_on, &config, ReadyOrder::CriticalPath);
    arp_metrics::set_enabled(false);
    result.unwrap();

    // Metrics are observational: every product of every event must be
    // byte-identical with collection on and off.
    for item in &items {
        let diffs = diff_snapshots(
            &snapshot(&work_off.join(&item.label)).unwrap(),
            &snapshot(&work_on.join(&item.label)).unwrap(),
        );
        assert!(
            diffs.is_empty(),
            "metrics changed bytes of event {}: {diffs:#?}",
            item.label
        );
    }

    // And the collection that ran balanced its books: pending drained to
    // zero, every admitted event retired.
    let text = arp_metrics::gather();
    let samples = arp_metrics::expo::parse_exposition(&text).expect("gather must self-parse");
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
    };
    assert_eq!(value("arp_batch_nodes_pending"), 0.0);
    assert!(value("arp_batch_events_admitted_total") >= 2.0);
    assert_eq!(
        value("arp_batch_events_admitted_total"),
        value("arp_batch_events_retired_total")
    );
    std::fs::remove_dir_all(&base).unwrap();
}
