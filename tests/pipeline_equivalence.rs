//! Cross-crate integration: the five pipeline implementations are
//! output-equivalent, deterministic, and correct across backends.

use arp_core::config::TimingModel;
use arp_core::output::{diff_snapshots, snapshot};
use arp_core::{run_pipeline, ImplKind, ParallelBackend, PipelineConfig, RunContext};
use arp_synth::{paper_event, write_event_inputs};
use std::path::PathBuf;

fn setup(tag: &str, event_index: usize, scale: f64) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("arp-it-{tag}-{}", std::process::id()));
    let input = base.join("inputs");
    std::fs::create_dir_all(&input).unwrap();
    let event = paper_event(event_index, scale);
    write_event_inputs(&event, &input).unwrap();
    (base, input)
}

fn fast_config() -> PipelineConfig {
    PipelineConfig::fast()
}

#[test]
fn all_five_implementations_produce_identical_final_products() {
    let (base, input) = setup("equiv", 0, 0.004);
    let mut reference = None;
    for kind in ImplKind::ALL {
        let work = base.join(format!("work-{kind:?}"));
        let ctx = RunContext::new(&input, &work, fast_config()).unwrap();
        run_pipeline(&ctx, kind).unwrap();
        let snap = snapshot(&work).unwrap();
        assert!(!snap.is_empty());
        match &reference {
            None => reference = Some(snap),
            Some(r) => {
                let diffs = diff_snapshots(r, &snap);
                assert!(diffs.is_empty(), "{kind:?} diverged: {diffs:#?}");
            }
        }
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn reruns_are_deterministic() {
    let (base, input) = setup("determ", 0, 0.003);
    let mut snaps = Vec::new();
    for run in 0..2 {
        let work = base.join(format!("work-{run}"));
        let ctx = RunContext::new(&input, &work, fast_config()).unwrap();
        run_pipeline(&ctx, ImplKind::FullyParallel).unwrap();
        snaps.push(snapshot(&work).unwrap());
    }
    assert!(diff_snapshots(&snaps[0], &snaps[1]).is_empty());
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn rayon_and_omp_backends_agree() {
    let (base, input) = setup("backend", 0, 0.003);
    let mut snaps = Vec::new();
    for (i, backend) in [
        ParallelBackend::Rayon,
        ParallelBackend::OmpStyle(arp_par::Schedule::Dynamic(1)),
        ParallelBackend::OmpStyle(arp_par::Schedule::Guided(1)),
    ]
    .into_iter()
    .enumerate()
    {
        let mut config = fast_config();
        config.backend = backend;
        let work = base.join(format!("work-{i}"));
        let ctx = RunContext::new(&input, &work, config).unwrap();
        run_pipeline(&ctx, ImplKind::FullyParallel).unwrap();
        snaps.push(snapshot(&work).unwrap());
    }
    for s in &snaps[1..] {
        assert!(diff_snapshots(&snaps[0], s).is_empty());
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn simulated_timing_mode_matches_measured_outputs() {
    let (base, input) = setup("simout", 0, 0.003);
    let work_m = base.join("measured");
    let ctx_m = RunContext::new(&input, &work_m, fast_config()).unwrap();
    run_pipeline(&ctx_m, ImplKind::FullyParallel).unwrap();

    let mut sim_cfg = fast_config();
    sim_cfg.timing = TimingModel::Simulated { threads: 8 };
    let work_s = base.join("simulated");
    let ctx_s = RunContext::new(&input, &work_s, sim_cfg).unwrap();
    let report = run_pipeline(&ctx_s, ImplKind::FullyParallel).unwrap();

    let diffs = diff_snapshots(&snapshot(&work_m).unwrap(), &snapshot(&work_s).unwrap());
    assert!(diffs.is_empty(), "{diffs:#?}");
    // The simulated run reports plausible virtual times.
    assert!(report.total > std::time::Duration::ZERO);
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn simulated_parallel_run_is_faster_than_sequential_in_virtual_time() {
    let (base, input) = setup("simspeed", 1, 0.01);
    let mut config = fast_config();
    config.timing = TimingModel::Simulated { threads: 8 };

    let ctx_seq = RunContext::new(&input, base.join("w-seq"), config.clone()).unwrap();
    let seq = run_pipeline(&ctx_seq, ImplKind::SequentialOriginal).unwrap();

    let ctx_par = RunContext::new(&input, base.join("w-par"), config).unwrap();
    let par = run_pipeline(&ctx_par, ImplKind::FullyParallel).unwrap();

    let speedup = seq.total.as_secs_f64() / par.total.as_secs_f64();
    // Unit durations are still wall-clock measurements, so concurrent
    // test load adds noise; assert a modest virtual speedup only.
    assert!(
        speedup > 1.1,
        "expected a virtual speedup, got {speedup:.2}x (seq {:?}, par {:?})",
        seq.total,
        par.total
    );
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn dag_matches_sequential_optimized_on_every_paper_event() {
    // The tentpole guarantee: deleting the stage barriers changes the
    // schedule, never the artifacts — on all six paper events.
    for event_index in 0..6 {
        let (base, input) = setup(&format!("dagev{event_index}"), event_index, 0.002);
        let work_seq = base.join("w-seq");
        let ctx_seq = RunContext::new(&input, &work_seq, fast_config()).unwrap();
        run_pipeline(&ctx_seq, ImplKind::SequentialOptimized).unwrap();

        let work_dag = base.join("w-dag");
        let ctx_dag = RunContext::new(&input, &work_dag, fast_config()).unwrap();
        let report = run_pipeline(&ctx_dag, ImplKind::DagParallel).unwrap();

        let diffs = diff_snapshots(&snapshot(&work_seq).unwrap(), &snapshot(&work_dag).unwrap());
        assert!(diffs.is_empty(), "event {event_index} diverged: {diffs:#?}");
        assert_eq!(report.processes.len(), 17);
        assert!(report.dag.is_some());
        std::fs::remove_dir_all(&base).unwrap();
    }
}

#[test]
fn simulated_dag_schedule_never_loses_to_the_barrier_plan() {
    // Fig. 9's stage plan is one linearization of the dependency graph, so
    // dependency-driven scheduling can only remove waiting, never add it.
    // Both makespans come from the same per-node durations of one run,
    // making the comparison exact for every paper event.
    for event_index in 0..6 {
        let (base, input) = setup(&format!("dagsim{event_index}"), event_index, 0.002);
        let mut config = fast_config();
        config.timing = TimingModel::Simulated { threads: 8 };
        let ctx = RunContext::new(&input, base.join("w"), config).unwrap();
        let report = run_pipeline(&ctx, ImplKind::DagParallel).unwrap();
        let dag = report.dag.expect("DAG runs carry a schedule report");
        assert!(
            dag.dag_makespan <= dag.barrier_makespan,
            "event {event_index}: dag {:?} > barrier {:?}",
            dag.dag_makespan,
            dag.barrier_makespan
        );
        assert!(dag.critical_path_len <= dag.dag_makespan);
        std::fs::remove_dir_all(&base).unwrap();
    }
}

#[test]
fn single_station_event_works_end_to_end() {
    let base = std::env::temp_dir().join(format!("arp-it-single-{}", std::process::id()));
    let input = base.join("inputs");
    std::fs::create_dir_all(&input).unwrap();
    let mut event = paper_event(0, 0.004);
    event.stations.truncate(1);
    write_event_inputs(&event, &input).unwrap();

    for kind in ImplKind::ALL {
        let work = base.join(format!("w-{kind:?}"));
        let ctx = RunContext::new(&input, &work, fast_config()).unwrap();
        let report = run_pipeline(&ctx, kind).unwrap();
        assert_eq!(report.v1_files, 1);
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn duhamel_and_nigam_jennings_runs_both_complete() {
    // The two response-spectrum kernels produce numerically different R
    // files (different integration), but both pipelines must complete and
    // the Duhamel one is never *less* expensive.
    use arp_core::ProcessId;
    use arp_dsp::respspec::ResponseMethod;
    let (base, input) = setup("kernels", 0, 0.004);
    let mut p16_times = Vec::new();
    for method in [ResponseMethod::NigamJennings, ResponseMethod::Duhamel] {
        let mut config = fast_config();
        config.response_method = method;
        let work = base.join(format!("w-{method:?}"));
        let ctx = RunContext::new(&input, &work, config).unwrap();
        let report = run_pipeline(&ctx, ImplKind::SequentialOptimized).unwrap();
        p16_times.push(report.process_time(ProcessId(16)).unwrap());
    }
    // The O(D²)-per-period kernel is more expensive than the O(D)
    // recurrence on the same records. The exact ratio varies with host
    // core count and load, so only the direction is asserted.
    assert!(
        p16_times[1] > p16_times[0],
        "Duhamel {:?} should dwarf Nigam-Jennings {:?} on process #16",
        p16_times[1],
        p16_times[0]
    );
    std::fs::remove_dir_all(&base).unwrap();
}
