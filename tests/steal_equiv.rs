//! Work-stealing equivalence: cross-lane stealing changes *which worker*
//! runs a node and *when*, never what the node writes. The six paper
//! events processed with stealing active (`--io-threads 2`: an I/O lane
//! plus cross-lane steals) must produce products byte-identical to the
//! degenerate single-queue schedule (`--io-threads 0`).

use arp_core::output::{diff_snapshots, snapshot};
use arp_synth::{paper_event, write_event_inputs, PAPER_EVENT_SHAPES};
use std::path::Path;
use std::process::Command;

#[test]
fn stealing_on_and_off_products_are_byte_identical_six_events() {
    // Each configuration runs in its own process: the lane width (and with
    // it, whether cross-lane stealing can happen at all) is fixed when the
    // global pool first spins up.
    let base = std::env::temp_dir().join(format!("arp-steal-equiv-{}", std::process::id()));
    let root = base.join("batch");
    let mut labels = Vec::new();
    for (i, &(label, _, _, _)) in PAPER_EVENT_SHAPES.iter().enumerate() {
        let dir = root.join(label);
        std::fs::create_dir_all(&dir).unwrap();
        write_event_inputs(&paper_event(i, 0.002), &dir).unwrap();
        labels.push(label);
    }

    let run = |io_threads: usize, work: &Path| {
        let out = Command::new(env!("CARGO_BIN_EXE_arp"))
            .args([
                "batch",
                "--root",
                root.to_str().unwrap(),
                "--work",
                work.to_str().unwrap(),
                "--impl",
                "dag",
                "--io-threads",
                &io_threads.to_string(),
            ])
            .output()
            .expect("spawn arp batch");
        assert!(
            out.status.success(),
            "io_threads={io_threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };

    let work_steal = base.join("work-stealing");
    let work_single = base.join("work-single-queue");
    run(2, &work_steal);
    run(0, &work_single);

    for label in labels {
        let diffs = diff_snapshots(
            &snapshot(&work_single.join(label)).unwrap(),
            &snapshot(&work_steal.join(label)).unwrap(),
        );
        assert!(
            diffs.is_empty(),
            "event {label} diverged between stealing-on and stealing-off: {diffs:#?}"
        );
    }
    std::fs::remove_dir_all(&base).unwrap();
}
