//! Trace well-formedness: spans recorded by the DAG executors nest, never
//! overlap within a worker lane, round-trip through Chrome Trace Event
//! JSON exactly, cover every super-DAG node — and tracing never changes
//! the pipeline's bytes.

use arp_core::output::{diff_snapshots, snapshot};
use arp_core::{
    run_batch_dag, run_pipeline, BatchItem, ImplKind, PipelineConfig, ReadyOrder, RunContext,
    SuperDag,
};
use arp_synth::{paper_event, write_event_inputs, PAPER_EVENT_SHAPES};
use arp_trace::{Cat, TraceSession};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Trace sessions are process-global; the harness runs tests on parallel
/// threads, so every test that records (or must *not* record) spans takes
/// this lock first.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn stage_event(dir: &Path, index: usize, scale: f64) {
    std::fs::create_dir_all(dir).unwrap();
    write_event_inputs(&paper_event(index, scale), dir).unwrap();
}

fn stage_paper_batch(base: &Path, scale: f64) -> Vec<BatchItem> {
    let mut items = Vec::new();
    for (i, &(label, _, _, _)) in PAPER_EVENT_SHAPES.iter().enumerate() {
        let dir = base.join("in").join(label);
        stage_event(&dir, i, scale);
        items.push(BatchItem {
            label: label.to_string(),
            input_dir: dir,
        });
    }
    items
}

#[test]
fn dag_run_spans_nest_and_lanes_never_overlap() {
    let _guard = TEST_LOCK.lock().unwrap();
    let base = std::env::temp_dir().join(format!("arp-trc-nest-{}", std::process::id()));
    stage_event(&base.join("in"), 0, 0.005);
    let ctx = RunContext::new(base.join("in"), base.join("work"), PipelineConfig::fast()).unwrap();

    let session = TraceSession::start();
    run_pipeline(&ctx, ImplKind::DagParallel).unwrap();
    let trace = session.finish();

    // Every optimized-graph node produced exactly one scheduler span.
    let dag_spans: Vec<_> = trace.spans_of(Cat::DagNode).collect();
    assert_eq!(dag_spans.len(), SuperDag::union(&["e".into()]).len());
    // Each is complete and attributed to a real worker lane.
    for s in &dag_spans {
        assert!(s.lane < trace.lanes.len(), "span {s:?} off the lane table");
        assert!(s.end_ns() >= s.start_ns);
        assert!(s.process.is_some(), "unattributed scheduler span {s:?}");
        assert!(!s.event.is_empty());
    }
    // Within a lane, spans either nest or are disjoint — never partially
    // overlap. `lane_violations` checks exactly that invariant.
    let violations = trace.lane_violations();
    assert!(violations.is_empty(), "lane violations: {violations:#?}");
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn chrome_json_round_trips_exactly() {
    let _guard = TEST_LOCK.lock().unwrap();
    let base = std::env::temp_dir().join(format!("arp-trc-json-{}", std::process::id()));
    stage_event(&base.join("in"), 1, 0.005);
    let ctx = RunContext::new(base.join("in"), base.join("work"), PipelineConfig::fast()).unwrap();

    let session = TraceSession::start();
    run_pipeline(&ctx, ImplKind::FullyParallel).unwrap();
    let trace = session.finish();
    assert!(!trace.spans.is_empty());

    let json = trace.to_chrome_json();
    let check = arp_trace::validate_chrome_json(&json).unwrap();
    assert_eq!(check.complete, trace.spans.len());
    // `ChromeCheck::lanes` counts lanes that actually carry spans; a lane
    // can legitimately be idle (a worker that never got a job), so it is
    // bounded by — not equal to — the trace's lane table.
    let spanned: std::collections::BTreeSet<usize> = trace.spans.iter().map(|s| s.lane).collect();
    assert_eq!(check.lanes, spanned.len());
    assert!(check.lanes <= trace.lanes.len());

    let back = arp_trace::from_chrome_json(&json).unwrap();
    assert_eq!(back, trace, "JSON round-trip must be lossless");
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn batch_trace_has_one_span_per_super_dag_node() {
    let _guard = TEST_LOCK.lock().unwrap();
    let base = std::env::temp_dir().join(format!("arp-trc-batch-{}", std::process::id()));
    let items = stage_paper_batch(&base, 0.002);
    let labels: Vec<String> = items.iter().map(|i| i.label.clone()).collect();

    let session = TraceSession::start();
    run_batch_dag(
        &items,
        &base.join("work"),
        &PipelineConfig::fast(),
        ReadyOrder::CriticalPath,
    )
    .unwrap();
    let trace = session.finish();

    // The acceptance bar: one complete scheduler span per super-DAG node,
    // each attributed to a worker lane and to its event.
    let expected = SuperDag::union(&labels).len();
    let dag_spans: Vec<_> = trace.spans_of(Cat::DagNode).collect();
    assert_eq!(dag_spans.len(), expected);
    for label in &labels {
        let per_event = dag_spans.iter().filter(|s| &s.event == label).count();
        assert_eq!(
            per_event,
            expected / labels.len(),
            "event {label} is missing scheduler spans"
        );
    }
    assert!(trace.lane_violations().is_empty());
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn tracing_never_changes_pipeline_bytes() {
    let _guard = TEST_LOCK.lock().unwrap();
    let base = std::env::temp_dir().join(format!("arp-trc-bytes-{}", std::process::id()));
    let items = stage_paper_batch(&base, 0.002);

    // Same batch, tracing off then on.
    let work_off: PathBuf = base.join("work-off");
    run_batch_dag(
        &items,
        &work_off,
        &PipelineConfig::fast(),
        ReadyOrder::CriticalPath,
    )
    .unwrap();

    let work_on: PathBuf = base.join("work-on");
    let session = TraceSession::start();
    run_batch_dag(
        &items,
        &work_on,
        &PipelineConfig::fast(),
        ReadyOrder::CriticalPath,
    )
    .unwrap();
    let trace = session.finish();
    assert!(!trace.spans.is_empty(), "traced run recorded nothing");

    // Tracing is observational: every product of all six paper events must
    // be byte-identical with and without a live session.
    for item in &items {
        let diffs = diff_snapshots(
            &snapshot(&work_off.join(&item.label)).unwrap(),
            &snapshot(&work_on.join(&item.label)).unwrap(),
        );
        assert!(
            diffs.is_empty(),
            "tracing changed bytes of event {}: {diffs:#?}",
            item.label
        );
    }
    std::fs::remove_dir_all(&base).unwrap();
}
