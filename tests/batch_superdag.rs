//! Cross-event super-DAG integration: batching events into one graph
//! changes the schedule, never the bytes — and the schedule analysis shows
//! real cross-event overlap on a multi-thread pool.

use arp_core::config::TimingModel;
use arp_core::output::{diff_snapshots, snapshot};
use arp_core::{
    run_batch, run_batch_dag, run_pipeline, BatchItem, ImplKind, PipelineConfig, ReadyOrder,
    RunContext,
};
use arp_synth::{paper_event, write_event_inputs, PAPER_EVENT_SHAPES};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn stage_paper_batch(base: &Path, scale: f64) -> Vec<BatchItem> {
    let mut items = Vec::new();
    for (i, &(label, _, _, _)) in PAPER_EVENT_SHAPES.iter().enumerate() {
        let dir = base.join("batch").join(label);
        std::fs::create_dir_all(&dir).unwrap();
        write_event_inputs(&paper_event(i, scale), &dir).unwrap();
        items.push(BatchItem {
            label: label.to_string(),
            input_dir: dir,
        });
    }
    items
}

#[test]
fn batch_dag_products_match_sequential_per_event_on_all_paper_events() {
    // The tentpole guarantee at batch scope: unioning all six events into
    // one super-graph and running them concurrently on the shared pool
    // produces byte-identical products to processing each event alone with
    // the sequential optimized chain.
    let base = std::env::temp_dir().join(format!("arp-sdag-equiv-{}", std::process::id()));
    let items = stage_paper_batch(&base, 0.002);

    let batch_work = base.join("batch-work");
    let report = run_batch(
        &items,
        &batch_work,
        &PipelineConfig::fast(),
        ImplKind::BatchDag,
    )
    .unwrap();
    assert_eq!(report.events.len(), PAPER_EVENT_SHAPES.len());

    for item in &items {
        let work_seq = base.join("seq-work").join(&item.label);
        let ctx = RunContext::new(&item.input_dir, &work_seq, PipelineConfig::fast()).unwrap();
        run_pipeline(&ctx, ImplKind::SequentialOptimized).unwrap();

        let diffs = diff_snapshots(
            &snapshot(&work_seq).unwrap(),
            &snapshot(&batch_work.join(&item.label)).unwrap(),
        );
        assert!(
            diffs.is_empty(),
            "event {} diverged: {diffs:#?}",
            item.label
        );
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn super_dag_overlaps_events_beyond_the_per_event_loop() {
    // The acceptance bar for the batch scheduler: on a multi-thread pool
    // the unioned schedule finishes before the per-event DAG loop would
    // (small events fill the idle tails of big ones). Both makespans are
    // computed from the same measured per-node durations, so the
    // comparison is deterministic even on a loaded single-core host.
    let base = std::env::temp_dir().join(format!("arp-sdag-olap-{}", std::process::id()));
    let items = stage_paper_batch(&base, 0.002);
    let mut config = PipelineConfig::fast();
    config.timing = TimingModel::Simulated { threads: 8 };

    let report = run_batch_dag(
        &items,
        &base.join("work"),
        &config,
        ReadyOrder::CriticalPath,
    )
    .unwrap();
    let dag = report.dag.as_ref().expect("super-DAG analysis");
    assert_eq!(dag.event_makespans.len(), PAPER_EVENT_SHAPES.len());
    assert!(
        dag.cross_event_overlap() > Duration::ZERO,
        "batch {:?} vs per-event baseline {:?}",
        dag.batch_makespan,
        dag.sequential_baseline()
    );
    assert!(dag.overlap_speedup() > 1.0);
    // The batch can never beat its own longest event.
    assert!(dag.batch_makespan >= dag.critical_path_len);
    // The decomposition is consistent: serialized cost splits exactly into
    // intra-event saving + cross-event overlap + batch makespan.
    assert_eq!(
        dag.node_total,
        dag.intra_event_saving() + dag.cross_event_overlap() + dag.batch_makespan
    );
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn ready_orders_produce_identical_products() {
    // The fairness knob reorders dispatch, nothing else: both ready-queue
    // policies must emit the same bytes.
    let base = std::env::temp_dir().join(format!("arp-sdag-order-{}", std::process::id()));
    let items: Vec<BatchItem> = stage_paper_batch(&base, 0.002)
        .into_iter()
        .take(2)
        .collect();
    let mut snaps = Vec::new();
    for (i, order) in [ReadyOrder::CriticalPath, ReadyOrder::Submission]
        .into_iter()
        .enumerate()
    {
        let work: PathBuf = base.join(format!("work-{i}"));
        run_batch_dag(&items, &work, &PipelineConfig::fast(), order).unwrap();
        snaps.push(snapshot(&work.join(&items[0].label)).unwrap());
    }
    assert!(diff_snapshots(&snaps[0], &snaps[1]).is_empty());
    std::fs::remove_dir_all(&base).unwrap();
}
