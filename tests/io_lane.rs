//! I/O-lane integration: routing pure-I/O DAG nodes to a dedicated worker
//! lane changes *when* nodes run, never what they produce — and a mid-batch
//! failure is attributed to its event without corrupting siblings.

use arp_core::output::{diff_snapshots, snapshot};
use arp_core::{run_batch_dag, BatchItem, PipelineConfig, PipelineError, ReadyOrder};
use arp_synth::{paper_event, write_event_inputs};
use std::path::{Path, PathBuf};
use std::process::Command;

fn stage_two_events(base: &Path) -> Vec<BatchItem> {
    let mut items = Vec::new();
    for (i, label) in ["ev-a", "ev-b"].iter().enumerate() {
        let dir = base.join("batch").join(label);
        std::fs::create_dir_all(&dir).unwrap();
        write_event_inputs(&paper_event(i, 0.002), &dir).unwrap();
        items.push(BatchItem {
            label: label.to_string(),
            input_dir: dir,
        });
    }
    items
}

/// Every `tmp-*` staging folder found anywhere under `root`.
fn staging_dirs(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.filter_map(|e| e.ok()) {
            if !entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                continue;
            }
            let path = entry.path();
            if entry.file_name().to_string_lossy().starts_with("tmp-") {
                found.push(path.clone());
            }
            stack.push(path);
        }
    }
    found
}

#[test]
fn lane_on_and_off_products_are_byte_identical() {
    // The acceptance bar for the I/O lane: `--io-threads 2` (lane on) and
    // `--io-threads 0` (lane off, the classic single-queue schedule) must
    // write byte-identical products. Each configuration runs in its own
    // process because the lane is sized when the global pool first spins up.
    let base = std::env::temp_dir().join(format!("arp-iolane-equiv-{}", std::process::id()));
    let items = stage_two_events(&base);
    let root = base.join("batch");

    let run = |io_threads: usize, work: &Path| -> String {
        let out = Command::new(env!("CARGO_BIN_EXE_arp"))
            .args([
                "batch",
                "--root",
                root.to_str().unwrap(),
                "--work",
                work.to_str().unwrap(),
                "--impl",
                "dag",
                "--io-threads",
                &io_threads.to_string(),
            ])
            .output()
            .expect("spawn arp batch");
        assert!(
            out.status.success(),
            "io_threads={io_threads}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    let work_on = base.join("work-lane-on");
    let work_off = base.join("work-lane-off");
    let stdout_on = run(2, &work_on);
    run(0, &work_off);
    // The decomposition table reports the lane comparison.
    assert!(stdout_on.contains("with I/O lane"), "{stdout_on}");

    for item in &items {
        let diffs = diff_snapshots(
            &snapshot(&work_off.join(&item.label)).unwrap(),
            &snapshot(&work_on.join(&item.label)).unwrap(),
        );
        assert!(
            diffs.is_empty(),
            "event {} diverged between lane-off and lane-on: {diffs:#?}",
            item.label
        );
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn failed_event_is_attributed_and_isolated() {
    // Corrupt one event's data mid-file (the header stays valid, so the
    // failure happens inside the scheduled super-graph, not during setup)
    // and check three things: the error names the failing event, the
    // sibling event's finished products are byte-identical to a clean run,
    // and no staging folders survive.
    let base = std::env::temp_dir().join(format!("arp-iolane-isol-{}", std::process::id()));
    let items = stage_two_events(&base);

    let clean_work = base.join("work-clean");
    run_batch_dag(
        &items,
        &clean_work,
        &PipelineConfig::fast(),
        ReadyOrder::CriticalPath,
    )
    .unwrap();

    // Keep the BEGIN ACC header but replace the first data line with junk.
    let victim = items[1].input_dir.join(
        std::fs::read_dir(&items[1].input_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".v1"))
            .unwrap()
            .file_name(),
    );
    let mut text = std::fs::read_to_string(&victim).unwrap();
    let pos = text.find("BEGIN ACC").unwrap();
    let line_start = text[pos..].find('\n').unwrap() + pos + 1;
    let line_end = text[line_start..].find('\n').unwrap() + line_start;
    text.replace_range(line_start..line_end, "1.0 not_a_number 2.0");
    std::fs::write(&victim, text).unwrap();

    // Simulated timing runs events sequentially (ev-a completes before
    // ev-b starts), so the sibling comparison is exact — and deterministic.
    let mut sim = PipelineConfig::fast();
    sim.timing = arp_core::config::TimingModel::Simulated { threads: 4 };
    let failed_work = base.join("work-failed");
    let err = run_batch_dag(&items, &failed_work, &sim, ReadyOrder::CriticalPath).unwrap_err();
    // The failure is attributed to the event's node...
    assert!(matches!(err, PipelineError::Node { .. }), "{err}");
    assert!(err.to_string().contains("ev-b"), "{err}");
    // ...the healthy sibling is not contaminated: its products are
    // byte-identical to the clean run...
    let diffs = diff_snapshots(
        &snapshot(&clean_work.join("ev-a")).unwrap(),
        &snapshot(&failed_work.join("ev-a")).unwrap(),
    );
    assert!(
        diffs.is_empty(),
        "ev-a diverged after ev-b failed: {diffs:#?}"
    );
    // ...and no staging folders leak from the interrupted protocol.
    assert_eq!(staging_dirs(&failed_work), Vec::<PathBuf>::new());

    // The measured path goes through the pool scheduler instead of the
    // sequential loop; it must attribute and fail-fast the same way.
    let measured_work = base.join("work-failed-measured");
    let err = run_batch_dag(
        &items,
        &measured_work,
        &PipelineConfig::fast(),
        ReadyOrder::CriticalPath,
    )
    .unwrap_err();
    assert!(matches!(err, PipelineError::Node { .. }), "{err}");
    assert!(err.to_string().contains("ev-b"), "{err}");
    assert_eq!(staging_dirs(&measured_work), Vec::<PathBuf>::new());
    std::fs::remove_dir_all(&base).unwrap();
}
