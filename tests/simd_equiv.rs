//! SIMD-backend equivalence: `--dsp-backend` picks which kernel
//! implementation services the DSP hot paths (FIR convolution, FFT
//! butterflies, response-spectrum recurrence) — it must never change what
//! the pipeline writes. The six paper events processed with
//! `--dsp-backend simd` must produce products byte-identical to
//! `--dsp-backend scalar` (and to the default `auto`, which resolves to
//! the SIMD kernels).

use arp_core::output::{diff_snapshots, snapshot};
use arp_synth::{paper_event, write_event_inputs, PAPER_EVENT_SHAPES};
use std::path::Path;
use std::process::Command;

#[test]
fn simd_and_scalar_products_are_byte_identical_six_events() {
    let base = std::env::temp_dir().join(format!("arp-simd-equiv-{}", std::process::id()));
    let root = base.join("batch");
    let mut labels = Vec::new();
    for (i, &(label, _, _, _)) in PAPER_EVENT_SHAPES.iter().enumerate() {
        let dir = root.join(label);
        std::fs::create_dir_all(&dir).unwrap();
        write_event_inputs(&paper_event(i, 0.002), &dir).unwrap();
        labels.push(label);
    }

    let run = |backend: &str, work: &Path| {
        let out = Command::new(env!("CARGO_BIN_EXE_arp"))
            .args([
                "batch",
                "--root",
                root.to_str().unwrap(),
                "--work",
                work.to_str().unwrap(),
                "--impl",
                "dag",
                "--dsp-backend",
                backend,
            ])
            .output()
            .expect("spawn arp batch");
        assert!(
            out.status.success(),
            "--dsp-backend {backend}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };

    let work_scalar = base.join("work-scalar");
    let work_simd = base.join("work-simd");
    let work_auto = base.join("work-auto");
    run("scalar", &work_scalar);
    run("simd", &work_simd);
    run("auto", &work_auto);

    for label in labels {
        let scalar = snapshot(&work_scalar.join(label)).unwrap();
        let diffs = diff_snapshots(&scalar, &snapshot(&work_simd.join(label)).unwrap());
        assert!(
            diffs.is_empty(),
            "event {label} diverged between scalar and simd backends: {diffs:#?}"
        );
        let diffs = diff_snapshots(&scalar, &snapshot(&work_auto.join(label)).unwrap());
        assert!(
            diffs.is_empty(),
            "event {label} diverged between scalar and auto backends: {diffs:#?}"
        );
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn run_rejects_unknown_dsp_backend() {
    let out = Command::new(env!("CARGO_BIN_EXE_arp"))
        .args([
            "run",
            "--in",
            "x",
            "--work",
            "y",
            "--dsp-backend",
            "avx1024",
        ])
        .output()
        .expect("spawn arp run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown DSP backend"),
        "stderr was: {stderr}"
    );
}
