//! Integration: the streaming readers are equivalent to the whole-file
//! path — same parsed structs, byte-identical re-serialization — on the
//! inputs of all six paper events and on every product of a full run,
//! and truncated files fail cleanly through every fallible iterator.

use arp_core::{run_pipeline, ImplKind, PipelineConfig, RunContext};
use arp_formats::fsio::read_file;
use arp_formats::iter::read_records;
use arp_formats::v1::{V1StationFile, V1StationReader};
use arp_formats::v2::V2File;
use arp_formats::{FFile, RFile};
use arp_synth::{paper_event, write_event_inputs};
use std::path::{Path, PathBuf};

fn base_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("arp-stream-eq-{tag}-{}", std::process::id()))
}

/// Streaming vs whole-file on the raw station inputs of all six events.
#[test]
fn station_inputs_equivalent_on_all_six_events() {
    let base = base_dir("inputs");
    for event_index in 0..6 {
        let dir = base.join(format!("ev{event_index}"));
        std::fs::create_dir_all(&dir).unwrap();
        let event = paper_event(event_index, 0.004);
        let files: Vec<PathBuf> = write_event_inputs(&event, &dir)
            .unwrap()
            .into_iter()
            .map(|name| dir.join(name))
            .collect();
        assert!(!files.is_empty());
        for path in &files {
            let raw = read_file(path).unwrap();
            let whole = V1StationFile::from_text(&raw).unwrap();
            let streamed = V1StationFile::read(path).unwrap();
            assert_eq!(streamed, whole, "{}", path.display());
            // The parse is lossless: re-serialization reproduces the bytes.
            assert_eq!(streamed.to_text(), raw, "{}", path.display());
            // And the component-at-a-time reader agrees with both.
            let parts: Vec<_> = V1StationReader::open(path)
                .unwrap()
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(parts.len(), whole.components.len());
            for (part, (comp, data)) in parts.iter().zip(whole.components.iter()) {
                assert_eq!(part.component, *comp);
                assert_eq!(&part.data, data);
            }
        }
    }
    std::fs::remove_dir_all(&base).unwrap();
}

/// Streaming vs whole-file on every record product of a full run.
#[test]
fn products_equivalent_after_full_run() {
    let base = base_dir("products");
    let input = base.join("inputs");
    std::fs::create_dir_all(&input).unwrap();
    let event = paper_event(0, 0.004);
    write_event_inputs(&event, &input).unwrap();
    let ctx = RunContext::new(&input, base.join("work"), PipelineConfig::fast()).unwrap();
    run_pipeline(&ctx, ImplKind::FullyParallel).unwrap();

    let mut checked = 0usize;
    for entry in std::fs::read_dir(base.join("work")).unwrap() {
        let path = entry.unwrap().path();
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        let raw = match ext {
            "v1" | "v2" | "f" | "r" => read_file(&path).unwrap(),
            _ => continue,
        };
        // Whole-file parse, per format.
        let whole_text = match ext {
            "v2" => V2File::from_text(&raw).unwrap().to_text(),
            "f" => FFile::from_text(&raw).unwrap().to_text(),
            "r" => RFile::from_text(&raw).unwrap().to_text(),
            _ => match V1StationFile::from_text(&raw) {
                Ok(s) => s.to_text(),
                Err(_) => continue, // per-component .v1 handled below via records
            },
        };
        assert_eq!(whole_text, raw, "{}", path.display());
        checked += 1;
    }
    assert!(checked > 20, "only {checked} products checked");

    // The generic record reader sees every record file identically: its
    // re-serialization is the file, byte for byte.
    let mut records_checked = 0usize;
    for entry in std::fs::read_dir(base.join("work")).unwrap() {
        let path = entry.unwrap().path();
        let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
        if !matches!(ext, "v1" | "v2" | "f" | "r") {
            continue;
        }
        let raw = read_file(&path).unwrap();
        let records = read_records(&path).unwrap();
        let reencoded: String = records.iter().map(|r| r.to_text()).collect();
        assert_eq!(reencoded, raw, "{}", path.display());
        records_checked += records.len();
    }
    assert!(records_checked > 20, "only {records_checked} records");

    std::fs::remove_dir_all(&base).unwrap();
}

fn write_truncated(path: &Path, frac: f64) {
    let raw = read_file(path).unwrap();
    let cut = (raw.len() as f64 * frac) as usize;
    std::fs::write(path, &raw[..cut]).unwrap();
}

/// Truncation fails cleanly — with the path attributed — through every
/// streaming entry point.
#[test]
fn truncated_files_error_with_path_attribution() {
    let base = base_dir("trunc");
    let input = base.join("inputs");
    std::fs::create_dir_all(&input).unwrap();
    let event = paper_event(1, 0.004);
    let files: Vec<PathBuf> = write_event_inputs(&event, &input)
        .unwrap()
        .into_iter()
        .map(|name| input.join(name))
        .collect();

    // V1StationFile::read names the file.
    write_truncated(&files[0], 0.5);
    let err = V1StationFile::read(&files[0]).unwrap_err().to_string();
    let name = files[0].file_name().unwrap().to_str().unwrap();
    assert!(err.contains(name), "{err}");

    // The component-at-a-time reader surfaces the error mid-iteration.
    let results: Vec<_> = V1StationReader::open(&files[0]).unwrap().collect();
    assert!(results.iter().any(|r| r.is_err()));

    // The generic record reader reports path + line.
    let err = read_records(&files[0]).unwrap_err().to_string();
    assert!(err.contains(name) && err.contains("line"), "{err}");

    std::fs::remove_dir_all(&base).unwrap();
}
