//! Integration: the artifact inventory of a full pipeline run matches the
//! paper's data-flow diagram (Fig. 5).

use arp_core::{run_pipeline, ImplKind, PipelineConfig, RunContext};
use arp_formats::{names, Component, FilterParams, GemFile, MaxValues, Quantity, RFile, V2File};
use arp_synth::{paper_event, write_event_inputs};
use std::path::PathBuf;

fn run_full(tag: &str) -> (PathBuf, RunContext) {
    let base = std::env::temp_dir().join(format!("arp-prod-{tag}-{}", std::process::id()));
    let input = base.join("inputs");
    std::fs::create_dir_all(&input).unwrap();
    let event = paper_event(0, 0.004);
    write_event_inputs(&event, &input).unwrap();
    let ctx = RunContext::new(&input, base.join("work"), PipelineConfig::fast()).unwrap();
    run_pipeline(&ctx, ImplKind::FullyParallel).unwrap();
    (base, ctx)
}

#[test]
fn full_artifact_inventory() {
    let (base, ctx) = run_full("inventory");
    let stations = ctx.stations().unwrap();
    assert_eq!(stations.len(), 5);

    for s in &stations {
        // Per-component intermediates and products.
        for c in Component::ALL {
            assert!(
                ctx.artifact(&names::v1_component(s, c)).exists(),
                "{s} {c:?} v1"
            );
            assert!(
                ctx.artifact(&names::v2_component(s, c)).exists(),
                "{s} {c:?} v2"
            );
            assert!(
                ctx.artifact(&names::f_component(s, c)).exists(),
                "{s} {c:?} f"
            );
            assert!(
                ctx.artifact(&names::r_component(s, c)).exists(),
                "{s} {c:?} r"
            );
        }
        // 18 GEM files per station.
        let mut gem_count = 0;
        for c in Component::ALL {
            for from_r in [false, true] {
                for q in Quantity::ALL {
                    let p = ctx.artifact(&names::gem(s, c, from_r, q));
                    assert!(p.exists(), "{}", p.display());
                    gem_count += 1;
                }
            }
        }
        assert_eq!(gem_count, 18);
        // Three plot files.
        for plot in [
            names::plot_acc(s),
            names::plot_fourier(s),
            names::plot_response(s),
        ] {
            let text = std::fs::read_to_string(ctx.artifact(&plot)).unwrap();
            assert!(text.starts_with("%!PS-Adobe"), "{plot}");
        }
    }

    // Shared metadata.
    let mv = MaxValues::read(&ctx.artifact(MaxValues::FILE_NAME)).unwrap();
    assert_eq!(mv.entries.len(), stations.len() * 3);
    let fp = FilterParams::read(&ctx.artifact(FilterParams::FILE_NAME)).unwrap();
    assert_eq!(fp.stations.len(), stations.len());

    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn definitive_v2_band_matches_recorded_corners() {
    let (base, ctx) = run_full("corners");
    let fp = FilterParams::read(&ctx.artifact(FilterParams::FILE_NAME)).unwrap();
    for s in ctx.stations().unwrap() {
        let corners = fp.corners_for(&s).expect("corners recorded by process #10");
        for (ci, c) in Component::ALL.iter().enumerate() {
            let v2 = V2File::read(&ctx.artifact(&names::v2_component(&s, *c))).unwrap();
            let (fsl, fpl) = corners.corners[ci];
            assert!(
                (v2.band.fsl - fsl).abs() < 1e-9 && (v2.band.fpl - fpl).abs() < 1e-9,
                "station {s} component {c:?}: band {:?} vs corners ({fsl}, {fpl})",
                v2.band
            );
        }
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn gem_series_are_consistent_with_their_sources() {
    let (base, ctx) = run_full("gemsrc");
    let s = &ctx.stations().unwrap()[0];

    // Time-series GEMs mirror the V2 traces.
    let v2 = V2File::read(&ctx.artifact(&names::v2_component(s, Component::Longitudinal))).unwrap();
    for q in Quantity::ALL {
        let gem = GemFile::read(&ctx.artifact(&names::gem(s, Component::Longitudinal, false, q)))
            .unwrap();
        let src = v2.data.get(q);
        assert_eq!(gem.values.len(), src.len());
        let peak = src.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!((gem.peak - peak).abs() <= 1e-9 * peak.max(1e-12));
    }

    // Response GEMs mirror the 5%-damped spectra.
    let r = RFile::read(&ctx.artifact(&names::r_component(s, Component::Longitudinal))).unwrap();
    let spec = r.at_damping(0.05).unwrap();
    let gem_ra = GemFile::read(&ctx.artifact(&names::gem(
        s,
        Component::Longitudinal,
        true,
        Quantity::Acceleration,
    )))
    .unwrap();
    assert_eq!(gem_ra.values.len(), spec.sa.len());
    for (a, b) in gem_ra.values.iter().zip(spec.sa.iter()) {
        assert!((a - b).abs() <= 1e-9 * b.abs().max(1e-12));
    }

    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn corrected_records_are_band_limited() {
    // The definitive V2 acceleration must have negligible energy below the
    // FSL corner relative to the passband — the whole point of the pipeline.
    let (base, ctx) = run_full("bandlimit");
    let s = &ctx.stations().unwrap()[0];
    let v2 = V2File::read(&ctx.artifact(&names::v2_component(s, Component::Longitudinal))).unwrap();
    let spec = arp_dsp::spectrum::fourier_spectrum(&v2.data.acc, v2.header.dt).unwrap();

    let mean_amp = |lo: f64, hi: f64| -> f64 {
        let vals: Vec<f64> = spec
            .frequency_hz
            .iter()
            .zip(&spec.acceleration)
            .filter(|(f, _)| **f >= lo && **f < hi)
            .map(|(_, a)| *a)
            .collect();
        if vals.is_empty() {
            0.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let stop = mean_amp(1e-6, v2.band.fsl * 0.5);
    let pass = mean_amp(v2.band.fpl * 2.0, v2.band.fph * 0.5);
    assert!(
        stop < 0.2 * pass,
        "stopband {stop} not attenuated vs passband {pass}"
    );
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn rotd_extension_emits_products_when_enabled() {
    use arp_core::process::rotdgen::RotDFile;
    let base = std::env::temp_dir().join(format!("arp-prod-rotd-{}", std::process::id()));
    let input = base.join("inputs");
    std::fs::create_dir_all(&input).unwrap();
    write_event_inputs(&paper_event(0, 0.003), &input).unwrap();

    // Off by default: no .rotd files.
    let ctx_off = RunContext::new(&input, base.join("w-off"), PipelineConfig::fast()).unwrap();
    run_pipeline(&ctx_off, ImplKind::FullyParallel).unwrap();
    let s0 = ctx_off.stations().unwrap()[0].clone();
    assert!(!ctx_off.artifact(&RotDFile::file_name(&s0)).exists());

    // Enabled: one per station, with the RotD ordering invariant.
    let mut config = PipelineConfig::fast();
    config.emit_rotd = true;
    let ctx_on = RunContext::new(&input, base.join("w-on"), config).unwrap();
    run_pipeline(&ctx_on, ImplKind::FullyParallel).unwrap();
    for s in ctx_on.stations().unwrap() {
        let f = RotDFile::read(&ctx_on.artifact(&RotDFile::file_name(&s))).unwrap();
        for k in 0..f.periods.len() {
            assert!(f.rotd50[k] <= f.rotd100[k] + 1e-12);
        }
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn event_summary_matches_products() {
    use arp_core::{event_summary, summary_csv};
    let (base, ctx) = run_full("summary");
    let rows = event_summary(&ctx).unwrap();
    assert_eq!(rows.len(), ctx.stations().unwrap().len() * 3);
    // Summary PGA equals the V2 peak for each row.
    for row in &rows {
        let v2 =
            V2File::read(&ctx.artifact(&names::v2_component(&row.station, row.component))).unwrap();
        assert!((row.pga - v2.peaks.pga).abs() <= 1e-12 * v2.peaks.pga.max(1e-12));
    }
    let csv = summary_csv(&rows);
    assert!(csv.contains("sa_1.0s"));
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn report_timings_cover_every_process_and_stage() {
    let base = std::env::temp_dir().join(format!("arp-prod-report-{}", std::process::id()));
    let input = base.join("inputs");
    std::fs::create_dir_all(&input).unwrap();
    write_event_inputs(&paper_event(0, 0.003), &input).unwrap();
    let ctx = RunContext::new(&input, base.join("work"), PipelineConfig::fast()).unwrap();
    let report = run_pipeline(&ctx, ImplKind::FullyParallel).unwrap();

    assert_eq!(report.stages.len(), 11);
    assert_eq!(report.processes.len(), 17);
    let stage_sum: std::time::Duration = report.stages.iter().map(|s| s.elapsed).sum();
    // Stage times decompose the total (within scheduling noise).
    assert!(stage_sum <= report.total * 2);
    assert!(report.throughput() > 0.0);
    std::fs::remove_dir_all(&base).unwrap();
}
