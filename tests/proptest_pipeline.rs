//! Property tests over the whole pipeline: arbitrary small events and
//! configurations must process end-to-end with the implementations staying
//! output-equivalent.

use arp_core::output::{diff_snapshots, snapshot};
use arp_core::{run_pipeline, ImplKind, ParallelBackend, PipelineConfig, RunContext};
use arp_synth::{EventSpec, SiteClass, SourceModel, StationSpec};
use proptest::prelude::*;

fn event_strategy() -> impl Strategy<Value = EventSpec> {
    (
        1usize..4,    // stations
        64usize..220, // samples per component
        4.5f64..6.5,  // magnitude
        prop::sample::select(vec![0.005f64, 0.01, 0.02]),
        any::<u64>(),
    )
        .prop_map(|(n_stations, npts, magnitude, dt, seed)| {
            let stations = (0..n_stations)
                .map(|i| StationSpec {
                    code: format!("ST{i}X"),
                    distance_km: 10.0 + 15.0 * i as f64,
                    dt,
                    npts,
                    site: SiteClass::for_station_index(i),
                })
                .collect();
            EventSpec {
                id: "PROP-EV".into(),
                origin_time: "2020-01-01T00:00:00Z".into(),
                source: SourceModel {
                    magnitude,
                    ..Default::default()
                },
                stations,
                seed,
            }
        })
}

proptest! {
    // End-to-end pipeline runs are expensive; a handful of cases still
    // explores station counts, record lengths, rates, and seeds.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn any_event_processes_and_implementations_agree(
        event in event_strategy(),
        backend_rayon in any::<bool>(),
    ) {
        let base = std::env::temp_dir().join(format!(
            "arp-prop-{}-{}",
            std::process::id(),
            event.seed
        ));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        arp_synth::write_event_inputs(&event, &input).unwrap();

        let mut config = PipelineConfig::fast();
        config.backend = if backend_rayon {
            ParallelBackend::Rayon
        } else {
            ParallelBackend::OmpStyle(arp_par::Schedule::Dynamic(1))
        };

        let mut reference = None;
        for kind in [
            ImplKind::SequentialOriginal,
            ImplKind::FullyParallel,
            ImplKind::DagParallel,
        ] {
            let work = base.join(format!("w-{kind:?}"));
            let ctx = RunContext::new(&input, &work, config.clone()).unwrap();
            let report = run_pipeline(&ctx, kind).unwrap();
            prop_assert_eq!(report.v1_files, event.stations.len());
            prop_assert_eq!(report.data_points, event.total_data_points());
            // Verification passes on every completed run.
            let issues = arp_core::verify_run(&ctx).unwrap();
            prop_assert!(issues.is_empty(), "{:?}", issues);

            let snap = snapshot(&work).unwrap();
            match &reference {
                None => reference = Some(snap),
                Some(r) => {
                    let diffs = diff_snapshots(r, &snap);
                    prop_assert!(diffs.is_empty(), "{:?}", diffs);
                }
            }
        }
        std::fs::remove_dir_all(&base).unwrap();
    }
}
