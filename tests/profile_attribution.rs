//! Profile attribution integration: building the critical-path profile
//! never changes the pipeline's bytes, the accounting identity (Σ
//! per-kernel self-time ≡ Σ per-worker busy time) holds exactly on real
//! batch traces, and every what-if prediction equals re-running the
//! deterministic replay on explicitly pre-scaled durations.

use arp_core::output::{diff_snapshots, snapshot};
use arp_core::{
    profile_trace_what_if, realize_batch, run_batch_dag, BatchItem, PipelineConfig, ProcessId,
    ReadyOrder, WHAT_IF_SPEEDUPS,
};
use arp_synth::{paper_event, write_event_inputs, PAPER_EVENT_SHAPES};
use arp_trace::profile::Profile;
use arp_trace::TraceSession;
use std::path::Path;
use std::sync::Mutex;

/// Trace sessions are process-global; the harness runs tests on parallel
/// threads, so every test that records spans takes this lock first.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn stage_paper_batch(base: &Path, scale: f64, events: usize) -> Vec<BatchItem> {
    let mut items = Vec::new();
    for (i, &(label, _, _, _)) in PAPER_EVENT_SHAPES.iter().take(events).enumerate() {
        let dir = base.join("in").join(label);
        std::fs::create_dir_all(&dir).unwrap();
        write_event_inputs(&paper_event(i, scale), &dir).unwrap();
        items.push(BatchItem {
            label: label.to_string(),
            input_dir: dir,
        });
    }
    items
}

/// Runs a traced batch and returns the raw trace; the caller owns the lock.
fn traced_batch(base: &Path, items: &[BatchItem]) -> arp_trace::Trace {
    let session = TraceSession::start();
    run_batch_dag(
        items,
        &base.join("work"),
        &PipelineConfig::fast(),
        ReadyOrder::CriticalPath,
    )
    .unwrap();
    session.finish()
}

#[test]
fn profiling_on_changes_no_bytes_on_all_paper_events() {
    let _guard = TEST_LOCK.lock().unwrap();
    let base = std::env::temp_dir().join(format!("arp-prof-equiv-{}", std::process::id()));
    let items = stage_paper_batch(&base, 0.002, PAPER_EVENT_SHAPES.len());

    // Reference pass: profiling off.
    run_batch_dag(
        &items,
        &base.join("work-off"),
        &PipelineConfig::fast(),
        ReadyOrder::CriticalPath,
    )
    .unwrap();

    // Profiled pass: trace the run and fold the full attribution profile,
    // what-if curves included, exercising the entire observation path.
    let session = TraceSession::start();
    run_batch_dag(
        &items,
        &base.join("work-on"),
        &PipelineConfig::fast(),
        ReadyOrder::CriticalPath,
    )
    .unwrap();
    let trace = session.finish();
    let profile = profile_trace_what_if(&trace, 4, 2, 3, &WHAT_IF_SPEEDUPS).unwrap();
    assert!(!profile.kernels.is_empty());
    assert!(!profile.what_if.is_empty());

    // Byte equivalence per event: observing the run never changes it.
    for item in &items {
        let diffs = diff_snapshots(
            &snapshot(&base.join("work-off").join(&item.label)).unwrap(),
            &snapshot(&base.join("work-on").join(&item.label)).unwrap(),
        );
        assert!(
            diffs.is_empty(),
            "profiling changed bytes of event {}: {diffs:#?}",
            item.label
        );
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn accounting_identity_is_exact_on_a_real_batch_trace() {
    let _guard = TEST_LOCK.lock().unwrap();
    let base = std::env::temp_dir().join(format!("arp-prof-acct-{}", std::process::id()));
    let items = stage_paper_batch(&base, 0.002, 3);
    let trace = traced_batch(&base, &items);

    let profile = profile_trace_what_if(&trace, 4, 2, 3, &WHAT_IF_SPEEDUPS).unwrap();
    // Exclusive self-time attribution makes the identity exact even when
    // help-first stealing nests DAG-node spans on one worker lane.
    assert_eq!(
        profile.self_total_ns, profile.worker_busy_ns,
        "accounting identity broken: Σ self {} ns vs Σ busy {} ns",
        profile.self_total_ns, profile.worker_busy_ns
    );
    assert_eq!(profile.accounting_error(), 0.0);
    profile.validate(0.0).unwrap();
    assert!(profile.cp_ns > 0, "realized critical path is empty");
    assert_eq!(profile.events.len(), items.len());

    // The exported artifacts agree with the in-memory profile: the JSON
    // round-trips exactly and the folded stacks cover every kernel with
    // attributed self-time.
    let back = Profile::parse_json(&profile.to_json()).unwrap();
    assert_eq!(back, profile);
    let folded = profile.folded();
    for k in profile.kernels.iter().filter(|k| k.self_ns > 0) {
        assert!(
            folded.contains(&k.name),
            "kernel {:?} missing from folded stacks",
            k.name
        );
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn what_if_predictions_equal_scaled_replay_exactly() {
    let _guard = TEST_LOCK.lock().unwrap();
    let base = std::env::temp_dir().join(format!("arp-prof-whatif-{}", std::process::id()));
    let items = stage_paper_batch(&base, 0.002, 3);
    let trace = traced_batch(&base, &items);

    let (threads, io_threads) = (4, 2);
    let profile = profile_trace_what_if(&trace, threads, io_threads, 3, &WHAT_IF_SPEEDUPS).unwrap();
    let batch = realize_batch(&trace).unwrap();
    assert_eq!(
        profile.replay_base_ns,
        batch.replay_makespan(threads, io_threads).as_nanos() as u64
    );

    assert!(!profile.what_if.is_empty());
    for curve in &profile.what_if {
        let select = batch.kernel_select(ProcessId(curve.process));
        assert_eq!(curve.points.len(), WHAT_IF_SPEEDUPS.len());
        for point in &curve.points {
            // Scale the recorded durations by hand and rerun the same
            // deterministic replay: the engine's prediction must match to
            // the nanosecond — no hidden model, only the scheduler.
            let scaled = arp_par::scale_super_durations(&batch.durations, &select, point.speedup);
            let rerun = arp_par::super_dag_makespan_lanes(
                &scaled,
                &batch.per_event_preds,
                threads,
                io_threads,
                &batch.io_lanes,
            );
            assert_eq!(
                point.predicted_ns,
                rerun.as_nanos() as u64,
                "what-if #{:02} at {}x diverged from the scaled replay",
                curve.process,
                point.speedup
            );
            assert!(
                point.predicted_ns <= profile.replay_base_ns,
                "speeding a kernel up must never slow the replay down"
            );
        }
    }
    std::fs::remove_dir_all(&base).unwrap();
}
