//! Flight-recorder forensics: a kernel panicking mid-batch must leave a
//! postmortem bundle that validates, names the failing node and event,
//! and renders as an incident report — and arming diagnostics must never
//! change a single product byte.
//!
//! Each configuration runs `arp` in its own process (the recorder's panic
//! hook, the log ring, and the worker registry are process-global).

use arp_core::output::{diff_snapshots, snapshot};
use arp_core::SuperDag;
use arp_synth::{paper_event, write_event_inputs, PAPER_EVENT_SHAPES};
use std::path::{Path, PathBuf};
use std::process::Command;

fn stage_batch(root: &Path, scale: f64, n: usize) -> Vec<String> {
    let mut labels = Vec::new();
    for (i, &(label, _, _, _)) in PAPER_EVENT_SHAPES.iter().take(n).enumerate() {
        let dir = root.join(label);
        std::fs::create_dir_all(&dir).unwrap();
        write_event_inputs(&paper_event(i, scale), &dir).unwrap();
        labels.push(label.to_string());
    }
    labels
}

fn arp() -> Command {
    Command::new(env!("CARGO_BIN_EXE_arp"))
}

/// The one postmortem bundle under `dir`.
fn find_bundle(dir: &Path) -> PathBuf {
    let bundles: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("postmortem-"))
        })
        .collect();
    assert_eq!(bundles.len(), 1, "expected one bundle, found {bundles:?}");
    bundles.into_iter().next().unwrap()
}

#[test]
fn injected_panic_writes_a_bundle_that_validates_and_names_the_node() {
    let base = std::env::temp_dir().join(format!("arp-diag-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let root = base.join("batch");
    let labels = stage_batch(&root, 0.003, 3);

    // Target a mid-pipeline node of the second event, so the batch is
    // genuinely in flight (other events' nodes pending or running) when
    // the panic fires.
    let super_dag = SuperDag::union(&labels);
    let per = super_dag.per_event().nodes().len();
    let target = super_dag.node_label(per + per / 2);

    let diag_dir = base.join("diag");
    std::fs::create_dir_all(&diag_dir).unwrap();
    let out = arp()
        .args([
            "batch",
            "--root",
            root.to_str().unwrap(),
            "--work",
            base.join("work").to_str().unwrap(),
            "--impl",
            "dag",
            "--diag-dir",
            diag_dir.to_str().unwrap(),
        ])
        .env("ARP_INJECT_PANIC", &target)
        .output()
        .expect("spawn arp batch");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "batch must fail: {stderr}");
    // The failure is attributed: the Node wrapper names the label and the
    // preserved panic payload travels in the message.
    assert!(
        stderr.contains(&target),
        "stderr lacks node label: {stderr}"
    );
    assert!(stderr.contains("injected panic"), "{stderr}");

    // The hook froze a bundle; `arp diag-check` accepts it whole and its
    // log as a standalone JSONL file.
    let bundle = find_bundle(&diag_dir);
    let check = arp()
        .args(["diag-check", "--bundle", bundle.to_str().unwrap()])
        .output()
        .expect("spawn arp diag-check");
    assert!(
        check.status.success(),
        "diag-check: {}",
        String::from_utf8_lossy(&check.stderr)
    );
    let log_check = arp()
        .args([
            "diag-check",
            "--file",
            bundle.join("log.jsonl").to_str().unwrap(),
        ])
        .output()
        .expect("spawn arp diag-check --file");
    assert!(
        log_check.status.success(),
        "diag-check --file: {}",
        String::from_utf8_lossy(&log_check.stderr)
    );

    // The incident report names the failing node, its event, and carries
    // the panic message and the frontier at capture time.
    let pm = arp()
        .arg("postmortem")
        .arg(&bundle)
        .output()
        .expect("spawn arp postmortem");
    assert!(
        pm.status.success(),
        "postmortem: {}",
        String::from_utf8_lossy(&pm.stderr)
    );
    let report = String::from_utf8_lossy(&pm.stdout);
    assert!(report.contains(&target), "report lacks node: {report}");
    assert!(report.contains(&labels[1]), "report lacks event: {report}");
    assert!(report.contains("injected panic"), "{report}");
    assert!(
        report.contains("per-event progress"),
        "report lacks frontier: {report}"
    );

    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn diag_on_and_off_products_are_byte_identical_six_events() {
    let base = std::env::temp_dir().join(format!("arp-diag-equiv-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let root = base.join("batch");
    let labels = stage_batch(&root, 0.002, PAPER_EVENT_SHAPES.len());

    let run = |diag: bool, work: &Path| {
        let mut cmd = arp();
        cmd.args([
            "batch",
            "--root",
            root.to_str().unwrap(),
            "--work",
            work.to_str().unwrap(),
            "--impl",
            "dag",
        ]);
        if diag {
            cmd.args(["--diag", "on", "--diag-dir", work.to_str().unwrap()]);
            cmd.args(["--log-level", "trace"]);
        }
        let out = cmd.output().expect("spawn arp batch");
        assert!(
            out.status.success(),
            "diag={diag}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    };

    let work_plain = base.join("work-plain");
    let work_diag = base.join("work-diag");
    run(false, &work_plain);
    run(true, &work_diag);

    for label in labels {
        let diffs = diff_snapshots(
            &snapshot(&work_plain.join(&label)).unwrap(),
            &snapshot(&work_diag.join(&label)).unwrap(),
        );
        assert!(
            diffs.is_empty(),
            "event {label} diverged between diag-on and diag-off: {diffs:#?}"
        );
    }
    std::fs::remove_dir_all(&base).unwrap();
}
