//! Integration: corrupted or missing inputs produce typed errors, never
//! panics, and never partial silent success.

use arp_core::{run_pipeline, ImplKind, PipelineConfig, PipelineError, RunContext};
use arp_formats::names;
use arp_synth::{paper_event, write_event_inputs};
use std::path::PathBuf;

fn setup(tag: &str) -> (PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("arp-fail-{tag}-{}", std::process::id()));
    let input = base.join("inputs");
    std::fs::create_dir_all(&input).unwrap();
    write_event_inputs(&paper_event(0, 0.003), &input).unwrap();
    (base, input)
}

fn run(input: &PathBuf, work: PathBuf, kind: ImplKind) -> Result<(), PipelineError> {
    let ctx = RunContext::new(input, work, PipelineConfig::fast())?;
    run_pipeline(&ctx, kind).map(|_| ())
}

#[test]
fn empty_input_directory_completes_with_no_products() {
    let base = std::env::temp_dir().join(format!("arp-fail-empty-{}", std::process::id()));
    let input = base.join("inputs");
    std::fs::create_dir_all(&input).unwrap();
    // Zero stations is a valid (degenerate) event: all loops are empty.
    run(&input, base.join("work"), ImplKind::FullyParallel).unwrap();
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn missing_input_directory_is_an_error() {
    let base = std::env::temp_dir().join(format!("arp-fail-miss-{}", std::process::id()));
    let input = base.join("never-created");
    let err = run(&input, base.join("work"), ImplKind::SequentialOriginal).unwrap_err();
    assert!(matches!(err, PipelineError::Io { .. }), "{err}");
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn garbage_v1_file_is_rejected_with_format_error() {
    let (base, input) = setup("garbage");
    std::fs::write(input.join("BOGUS.v1"), "this is not a V1 file\n").unwrap();
    for kind in [
        ImplKind::SequentialOriginal,
        ImplKind::FullyParallel,
        ImplKind::DagParallel,
    ] {
        let err = run(&input, base.join(format!("w-{kind:?}")), kind).unwrap_err();
        assert!(matches!(err, PipelineError::Format(_)), "{kind:?}: {err}");
    }
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn truncated_v1_file_is_rejected() {
    let (base, input) = setup("trunc");
    // Truncate one station file halfway through a numeric block.
    let victim = input.join(
        std::fs::read_dir(&input)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".v1"))
            .unwrap()
            .file_name(),
    );
    let text = std::fs::read_to_string(&victim).unwrap();
    std::fs::write(&victim, &text[..text.len() / 2]).unwrap();
    let err = run(&input, base.join("work"), ImplKind::SequentialOptimized).unwrap_err();
    assert!(matches!(err, PipelineError::Format(_)), "{err}");
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn corrupted_numeric_value_is_rejected() {
    let (base, input) = setup("nanvals");
    let victim = input.join(
        std::fs::read_dir(&input)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".v1"))
            .unwrap()
            .file_name(),
    );
    let mut text = std::fs::read_to_string(&victim).unwrap();
    // Replace a numeric token inside the ACC block with junk.
    let pos = text.find("BEGIN ACC").unwrap();
    let line_start = text[pos..].find('\n').unwrap() + pos + 1;
    let line_end = text[line_start..].find('\n').unwrap() + line_start;
    text.replace_range(line_start..line_end, "1.0 not_a_number 2.0");
    std::fs::write(&victim, text).unwrap();
    let err = run(&input, base.join("work"), ImplKind::SequentialOptimized).unwrap_err();
    assert!(matches!(err, PipelineError::Format(_)), "{err}");
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn deleting_intermediate_midway_is_detected() {
    // Run the first half of the pipeline, delete a V2 file, and confirm the
    // response-spectrum process reports the missing artifact.
    use arp_core::process::{filter, filterinit, gather, respspec, separate};
    let (base, input) = setup("midway");
    let ctx = RunContext::new(&input, base.join("work"), PipelineConfig::fast()).unwrap();
    gather::gather_inputs(&ctx, false).unwrap();
    filterinit::init_filter_params(&ctx).unwrap();
    separate::separate_components(&ctx, false).unwrap();
    filter::correct_signals(&ctx, filter::CorrectionPass::Default, false).unwrap();

    let station = ctx.stations().unwrap()[0].clone();
    std::fs::remove_file(ctx.artifact(&names::v2_component(
        &station,
        arp_formats::Component::Vertical,
    )))
    .unwrap();
    let err = respspec::response_spectrum_calc(&ctx, false).unwrap_err();
    assert!(matches!(err, PipelineError::Format(_)), "{err}");
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn work_dir_inside_input_dir_is_rejected_by_gather_scan() {
    // A work dir nested in the input dir must not confuse the .v1 scan
    // (gather only picks files, and only *.v1).
    let (base, input) = setup("nested");
    let work = input.join("work");
    run(&input, work, ImplKind::SequentialOptimized).unwrap();
    std::fs::remove_dir_all(&base).unwrap();
}
