//! Property tests over the artifact-dependency DAG: the stage plan's
//! freedom (concurrent tasks within a stage) never violates a dependency,
//! the redundant processes are schedulable anywhere after their inputs,
//! and the critical path behaves like a longest path should.

use arp_core::plan::STAGE_TABLE;
use arp_core::{ProcessDag, ProcessId, SuperDag};
use proptest::prelude::*;
use std::time::Duration;

/// SplitMix64 step: cheap, deterministic, good enough to explore orderings.
fn next_u64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Shuffles a slice in place with a Fisher–Yates walk driven by `seed`.
fn shuffle(xs: &mut [u8], mut seed: u64) {
    for i in (1..xs.len()).rev() {
        let z = next_u64(&mut seed);
        xs.swap(i, (z as usize) % (i + 1));
    }
}

/// A shuffled flattening of the eleven-stage plan: stages in order,
/// intra-stage processes permuted by `seed`. Always a valid linearization
/// of the optimized per-event graph.
fn shuffled_plan_flattening(seed: u64) -> Vec<u8> {
    let mut order = Vec::new();
    for (k, stage) in STAGE_TABLE.iter().enumerate() {
        let mut procs: Vec<u8> = stage.processes.to_vec();
        shuffle(&mut procs, seed.wrapping_add(k as u64));
        order.extend(procs);
    }
    order
}

proptest! {
    /// A stage's processes are concurrent tasks, so *any* intra-stage
    /// completion order must still be a topological linearization of the
    /// dependency graph — that is what makes the barrier plan sound.
    #[test]
    fn every_intra_stage_shuffle_of_the_plan_linearizes(seed in any::<u64>()) {
        let dag = ProcessDag::optimized();
        let order = shuffled_plan_flattening(seed);
        let violations = dag.linearization_violations(&order);
        prop_assert!(violations.is_empty(), "{violations:#?}");
    }

    /// The redundant processes #6/#12/#14 are pure leaves of the full
    /// graph: inserting each at *any* position after the gather (#1) keeps
    /// a valid linearization, which is exactly why deleting them is safe.
    #[test]
    fn redundant_processes_slot_in_anywhere_after_the_gather(
        seed in any::<u64>(),
        positions in prop::collection::vec(0usize..18, 3),
    ) {
        let full = ProcessDag::full();
        let opt = ProcessDag::optimized();
        for p in [6u8, 12, 14] {
            prop_assert_eq!(full.preds(p), &[1u8], "redundant #{} preds", p);
            prop_assert!(full.succs(p).is_empty(), "redundant #{} must be a leaf", p);
        }

        // Start from a valid order of the optimized graph (a shuffled plan
        // flattening) and splice the redundant leaves in anywhere after #1.
        let mut order = shuffled_plan_flattening(seed);
        prop_assert!(opt.is_linearization(&order));
        let gather_pos = order.iter().position(|&p| p == 1).unwrap();
        for (i, &p) in [6u8, 12, 14].iter().enumerate() {
            let at = gather_pos + 1 + positions[i] % (order.len() - gather_pos);
            order.insert(at, p);
        }
        let violations = full.linearization_violations(&order);
        prop_assert!(violations.is_empty(), "{violations:#?}");
    }

    /// Longest-path sanity under arbitrary weights: bounded below by the
    /// heaviest node, above by the serial sum, and every consecutive pair
    /// on the reported path is a real dependency.
    #[test]
    fn critical_path_is_a_dependency_chain_with_sane_length(
        weights in prop::collection::vec(1u64..1_000, 17),
    ) {
        let dag = ProcessDag::optimized();
        let nodes = dag.nodes().to_vec();
        let weight_of = |p: ProcessId| {
            let i = nodes.iter().position(|&q| q == p.0).unwrap();
            Duration::from_micros(weights[i])
        };
        let cp = dag.critical_path(weight_of);

        let total: Duration = nodes.iter().map(|&p| weight_of(ProcessId(p))).sum();
        let heaviest = nodes.iter().map(|&p| weight_of(ProcessId(p))).max().unwrap();
        prop_assert!(cp.length >= heaviest);
        prop_assert!(cp.length <= total);

        let path_sum: Duration = cp.nodes.iter().map(|&p| weight_of(p)).sum();
        prop_assert_eq!(path_sum, cp.length);
        for pair in cp.nodes.windows(2) {
            prop_assert!(
                dag.preds(pair[1].0).contains(&pair[0].0),
                "#{} -> #{} is not an edge",
                pair[0].0,
                pair[1].0
            );
        }
    }

    /// The cross-event union stays acyclic for any batch size: a
    /// topological order exists, covers every node, and is itself a valid
    /// linearization.
    #[test]
    fn super_dag_union_is_acyclic(n_events in 0usize..7) {
        let labels: Vec<String> = (0..n_events).map(|e| format!("ev{e}")).collect();
        let sd = SuperDag::union(&labels);
        prop_assert_eq!(sd.len(), n_events * 17);
        let order = sd.topological_order();
        prop_assert!(order.is_ok(), "{order:?}");
        let order = order.unwrap();
        prop_assert_eq!(order.len(), sd.len());
        prop_assert!(sd.is_linearization(&order));
    }

    /// Soundness of cross-event scheduling: events share no edges, so ANY
    /// interleaving of valid per-event orders (each a shuffled stage-plan
    /// flattening) is a valid linearization of the super-graph. This is
    /// exactly the freedom the batch scheduler exploits to fill idle tails.
    #[test]
    fn any_interleaving_of_per_event_plans_linearizes_the_super_dag(
        seed in any::<u64>(),
        n_events in 1usize..5,
    ) {
        let labels: Vec<String> = (0..n_events).map(|e| format!("ev{e}")).collect();
        let sd = SuperDag::union(&labels);
        let per_nodes = sd.per_event().nodes().to_vec();

        // One shuffled stage-plan flattening per event, mapped to flat
        // super-graph indices.
        let orders: Vec<Vec<usize>> = (0..n_events)
            .map(|e| {
                shuffled_plan_flattening(seed.wrapping_add(e as u64 * 0x1234_5678))
                    .iter()
                    .map(|&p| {
                        sd.event_offset(e)
                            + per_nodes.iter().position(|&q| q == p).unwrap()
                    })
                    .collect()
            })
            .collect();

        // Merge them in an arbitrary seed-driven interleaving that keeps
        // each event's own order.
        let mut merged = Vec::with_capacity(sd.len());
        let mut cursors = vec![0usize; n_events];
        let mut s = seed ^ 0xDEAD_BEEF_CAFE_F00D;
        while merged.len() < sd.len() {
            let live: Vec<usize> = (0..n_events)
                .filter(|&e| cursors[e] < orders[e].len())
                .collect();
            let e = live[(next_u64(&mut s) as usize) % live.len()];
            merged.push(orders[e][cursors[e]]);
            cursors[e] += 1;
        }
        let violations = sd.linearization_violations(&merged);
        prop_assert!(violations.is_empty(), "{violations:#?}");
        prop_assert!(sd.is_linearization(&merged));
    }
}
