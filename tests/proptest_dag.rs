//! Property tests over the artifact-dependency DAG: the stage plan's
//! freedom (concurrent tasks within a stage) never violates a dependency,
//! the redundant processes are schedulable anywhere after their inputs,
//! and the critical path behaves like a longest path should.

use arp_core::plan::STAGE_TABLE;
use arp_core::{ProcessDag, ProcessId};
use proptest::prelude::*;
use std::time::Duration;

/// Shuffles a slice in place with a Fisher–Yates walk driven by `seed`.
fn shuffle(xs: &mut [u8], mut seed: u64) {
    for i in (1..xs.len()).rev() {
        // SplitMix64 step: cheap, deterministic, good enough to explore
        // orderings.
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        xs.swap(i, (z as usize) % (i + 1));
    }
}

proptest! {
    /// A stage's processes are concurrent tasks, so *any* intra-stage
    /// completion order must still be a topological linearization of the
    /// dependency graph — that is what makes the barrier plan sound.
    #[test]
    fn every_intra_stage_shuffle_of_the_plan_linearizes(seed in any::<u64>()) {
        let dag = ProcessDag::optimized();
        let mut order = Vec::new();
        for (k, stage) in STAGE_TABLE.iter().enumerate() {
            let mut procs: Vec<u8> = stage.processes.to_vec();
            shuffle(&mut procs, seed.wrapping_add(k as u64));
            order.extend(procs);
        }
        let violations = dag.linearization_violations(&order);
        prop_assert!(violations.is_empty(), "{violations:#?}");
    }

    /// The redundant processes #6/#12/#14 are pure leaves of the full
    /// graph: inserting each at *any* position after the gather (#1) keeps
    /// a valid linearization, which is exactly why deleting them is safe.
    #[test]
    fn redundant_processes_slot_in_anywhere_after_the_gather(
        seed in any::<u64>(),
        positions in prop::collection::vec(0usize..18, 3),
    ) {
        let full = ProcessDag::full();
        let opt = ProcessDag::optimized();
        for p in [6u8, 12, 14] {
            prop_assert_eq!(full.preds(p), &[1u8], "redundant #{} preds", p);
            prop_assert!(full.succs(p).is_empty(), "redundant #{} must be a leaf", p);
        }

        // Start from a valid order of the optimized graph (a shuffled plan
        // flattening) and splice the redundant leaves in anywhere after #1.
        let mut order = Vec::new();
        for (k, stage) in STAGE_TABLE.iter().enumerate() {
            let mut procs: Vec<u8> = stage.processes.to_vec();
            shuffle(&mut procs, seed.wrapping_add(k as u64));
            order.extend(procs);
        }
        prop_assert!(opt.is_linearization(&order));
        let gather_pos = order.iter().position(|&p| p == 1).unwrap();
        for (i, &p) in [6u8, 12, 14].iter().enumerate() {
            let at = gather_pos + 1 + positions[i] % (order.len() - gather_pos);
            order.insert(at, p);
        }
        let violations = full.linearization_violations(&order);
        prop_assert!(violations.is_empty(), "{violations:#?}");
    }

    /// Longest-path sanity under arbitrary weights: bounded below by the
    /// heaviest node, above by the serial sum, and every consecutive pair
    /// on the reported path is a real dependency.
    #[test]
    fn critical_path_is_a_dependency_chain_with_sane_length(
        weights in prop::collection::vec(1u64..1_000, 17),
    ) {
        let dag = ProcessDag::optimized();
        let nodes = dag.nodes().to_vec();
        let weight_of = |p: ProcessId| {
            let i = nodes.iter().position(|&q| q == p.0).unwrap();
            Duration::from_micros(weights[i])
        };
        let cp = dag.critical_path(weight_of);

        let total: Duration = nodes.iter().map(|&p| weight_of(ProcessId(p))).sum();
        let heaviest = nodes.iter().map(|&p| weight_of(ProcessId(p))).max().unwrap();
        prop_assert!(cp.length >= heaviest);
        prop_assert!(cp.length <= total);

        let path_sum: Duration = cp.nodes.iter().map(|&p| weight_of(p)).sum();
        prop_assert_eq!(path_sum, cp.length);
        for pair in cp.nodes.windows(2) {
            prop_assert!(
                dag.preds(pair[1].0).contains(&pair[0].0),
                "#{} -> #{} is not an edge",
                pair[0].0,
                pair[1].0
            );
        }
    }
}
