//! # arp — accelerographic records processing
//!
//! Umbrella crate re-exporting the workspace: a Rust reproduction of
//! *"Parallelizing Accelerographic Records Processing"* (IPPS 2024) — the
//! strong-motion pipeline of El Salvador's Observatory of Natural Threats,
//! its sequential optimization, and its parallelization, plus every
//! substrate it depends on.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `arp-core` | the 20 processes, 11-stage plan, artifact DAG, five executors |
//! | [`dsp`] | `arp-dsp` | FFT, filters, spectra, response spectra, measures |
//! | [`formats`] | `arp-formats` | V1/V2/F/R/GEM and metadata file formats |
//! | [`synth`] | `arp-synth` | stochastic ground-motion generator + dataset |
//! | [`plot`] | `arp-plot` | PostScript/SVG plotting |
//! | [`par`] | `arp-par` | OpenMP-style runtime + scheduling simulator |
//! | [`trace`] | `arp-trace` | per-task span recorder, Chrome-trace export |
//!
//! ## Quick start
//!
//! ```no_run
//! use arp::core::{run_pipeline, ImplKind, PipelineConfig, RunContext};
//!
//! // Synthesize an event and run the fully parallelized pipeline on it.
//! let event = arp::synth::paper_event(0, 0.02);
//! std::fs::create_dir_all("inputs")?;
//! arp::synth::write_event_inputs(&event, std::path::Path::new("inputs"))?;
//!
//! let ctx = RunContext::new("inputs", "work", PipelineConfig::default())?;
//! let report = run_pipeline(&ctx, ImplKind::FullyParallel)?;
//! println!("{} points in {:?}", report.data_points, report.total);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The runnable entry points live in `examples/` (library walk-throughs),
//! `src/bin/arp.rs` (the CLI), and `crates/bench` (the experiment harness
//! regenerating the paper's tables and figures).

#![warn(missing_docs)]

pub use arp_core as core;
pub use arp_dsp as dsp;
pub use arp_formats as formats;
pub use arp_par as par;
pub use arp_plot as plot;
pub use arp_synth as synth;
pub use arp_trace as trace;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // Touch one item per crate so a broken re-export fails to compile.
        let _ = crate::core::PipelineConfig::default();
        let _ = crate::dsp::BandPass::DEFAULT;
        let _ = crate::formats::names::v1_station("X");
        let _ = crate::synth::PAPER_EVENT_SHAPES.len();
        let _ = crate::plot::Scale::Linear;
        let _ = crate::par::Schedule::Static;
        let _ = crate::trace::Cat::DagNode.label();
    }
}
