//! `arp` — command-line front end to the pipeline.
//!
//! ```text
//! arp generate --out DIR [--event N] [--scale X]    synthesize V1 inputs
//! arp run --in DIR --work DIR [--impl NAME]         run the pipeline
//! arp verify --in DIR --work DIR                    verify a completed run
//! arp inspect --work DIR --station CODE             summarize one station
//! arp query --dir DIR [filters] [--format F]        filtered record scan
//! ```
//!
//! `--impl` is one of `seq-original`, `seq-optimized`, `partial`, `full`,
//! `dag` (default `full`). `arp run --stats on` additionally prints the
//! worker-pool counters the run produced (and, for `--impl dag`, the
//! schedule analysis: critical path and barrier vs. DAG makespans).
//!
//! `arp batch --root DIR --work DIR [--impl NAME] [--order cp|fifo]`
//! processes every event directory under `--root`. For `batch`,
//! `--impl dag` selects the cross-event super-DAG scheduler: all events'
//! dependency graphs are unioned and submitted to the worker pool in one
//! call, so small events fill the idle tails of big ones. `--order` picks
//! the ready-queue ordering (`cp` critical-path priority, the default, or
//! `fifo` submission order).
//!
//! Both `run` and `batch` accept `--io-threads N`: the shared worker pool
//! routes DAG nodes whose process is pure I/O (readers, writers, plotters)
//! to a dedicated lane of `N` extra workers so compute workers never block
//! on disk. `0` disables the lane (every node runs on the compute workers —
//! products are byte-identical either way; the lane only changes *when*
//! nodes run, never what they compute). Unset, the lane defaults to
//! `max(2, threads/4)`.
//!
//! Both `run` and `batch` accept `--dsp-backend auto|scalar|simd`: the
//! kernel implementation the DSP layer uses (FIR convolution, FFT
//! butterflies, response-spectrum recurrence). `auto` (the default)
//! resolves to the 4-lane blocked `simd` kernels; `scalar` forces the
//! reference loops. Both backends are bitwise-identical — the flag trades
//! speed, never results — and the chosen backend is recorded in the run
//! report.
//!
//! Both `run` and `batch` accept trace sinks: `--trace out.json` writes a
//! Chrome Trace Event file (load it in Perfetto or `chrome://tracing`),
//! `--trace-svg out.svg` a per-worker Gantt, `--trace-csv out.csv` a flat
//! span table. Any of them also prints the per-worker utilization and
//! queue-wait summary. `arp trace-check --file out.json` validates a trace
//! file against the Chrome Trace Event schema — spans *and* counter tracks
//! (the CI smoke job runs it).
//!
//! Profiling: `arp profile --input trace.json` folds a recorded batch
//! trace into per-kernel self-time and critical-path-share tables, plus
//! Coz-style what-if speedup curves (each kernel's recorded durations are
//! scaled and replayed through the deterministic scheduling simulator).
//! `--root DIR --work DIR` instead runs a fresh instrumented dag batch.
//! `--json`, `--folded`, and `--svg` export the profile JSON, collapsed
//! folded stacks (`flamegraph.pl`-compatible), and a flame/icicle SVG;
//! `arp profile --check profile.json` validates an export, including the
//! accounting identity (Σ kernel self-time ≡ Σ worker busy time).
//!
//! Live metrics: `--metrics-addr 127.0.0.1:9102` on `run`/`batch` enables
//! collection and serves Prometheus text exposition at `/metrics` (plus
//! `/healthz` and the live `/statusz` pipeline view: per-event super-DAG
//! progress, per-worker running node / lane / steal counts, pool totals)
//! from a background thread; `127.0.0.1:0` picks a free port and the
//! resolved address is printed. `--metrics-hold SECS` keeps the endpoint
//! alive after the workload so scrapers can catch short runs.
//! `arp metrics` prints the full catalog snapshot; `--fetch ADDR` scrapes
//! a running endpoint and `--check FILE` validates a saved exposition.
//!
//! Diagnostics: `--log-level trace|debug|info|warn|error|off` sets the
//! console log level (default `warn`; structured records go to stderr).
//! `--diag on` (or `--diag-dir DIR`, which implies it) on `run`/`batch`
//! arms the **flight recorder**: ring-buffered structured logging plus a
//! panic/failure hook, so a worker panic or batch abort freezes a
//! `postmortem-<run-id>/` bundle (log tail as JSONL, metrics snapshot,
//! trace tail, per-worker state, live super-DAG frontier) under the diag
//! dir. `arp postmortem BUNDLE` renders a bundle as a human-readable
//! incident report; `arp diag-check --file LOG.jsonl | --bundle DIR`
//! validates diagnostics artifacts (CI runs it on forced-failure bundles).

use arp_core::{
    event_summary, run_pipeline_labeled, summary_csv, verify_run, ImplKind, PipelineConfig,
    ReadyOrder, RunContext,
};
use arp_formats::iter::RecordKind;
use arp_formats::query::Query;
use arp_formats::{names, Component, Filter, MaxValues, RFile, RecordEncoder, V2File};
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {arg:?}"))?;
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
    }
    Ok(flags)
}

fn impl_kind(name: &str) -> Result<ImplKind, String> {
    match name {
        "seq-original" => Ok(ImplKind::SequentialOriginal),
        "seq-optimized" => Ok(ImplKind::SequentialOptimized),
        "partial" => Ok(ImplKind::PartiallyParallel),
        "full" => Ok(ImplKind::FullyParallel),
        "dag" => Ok(ImplKind::DagParallel),
        other => Err(format!(
            "unknown implementation {other:?} (use seq-original|seq-optimized|partial|full|dag)"
        )),
    }
}

fn cmd_generate(flags: &HashMap<String, String>) -> Result<(), String> {
    let out = PathBuf::from(flags.get("out").ok_or("generate needs --out DIR")?);
    let event_index: usize = flags.get("event").map_or(Ok(0), |v| {
        v.parse().map_err(|e| format!("bad --event: {e}"))
    })?;
    if event_index > 5 {
        return Err("--event must be 0..=5".into());
    }
    let scale: f64 = flags.get("scale").map_or(Ok(0.05), |v| {
        v.parse().map_err(|e| format!("bad --scale: {e}"))
    })?;
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let event = arp_synth::paper_event(event_index, scale);
    let files = arp_synth::write_event_inputs(&event, &out).map_err(|e| e.to_string())?;
    println!(
        "generated event {} ({} stations, {} data points) into {}",
        event.id,
        files.len(),
        event.total_data_points(),
        out.display()
    );
    Ok(())
}

/// Builds the pipeline configuration a command runs with, applying
/// `--dsp-backend auto|scalar|simd` (default `auto`).
fn pipeline_config(flags: &HashMap<String, String>) -> Result<PipelineConfig, String> {
    let mut config = PipelineConfig::default();
    if let Some(raw) = flags.get("dsp-backend") {
        config.dsp_backend = raw.parse::<arp_dsp::DspBackend>()?;
    }
    Ok(config)
}

fn make_context(flags: &HashMap<String, String>) -> Result<RunContext, String> {
    let input = flags.get("in").ok_or("needs --in DIR")?;
    let work = flags.get("work").ok_or("needs --work DIR")?;
    RunContext::new(input, work, pipeline_config(flags)?).map_err(|e| e.to_string())
}

/// Handles `--io-threads N`: sizes the shared pool's dedicated I/O lane
/// before the pool first spins up (0 = lane off, run everything on the
/// compute workers). Must run before the workload touches the global pool.
fn configure_io_threads(flags: &HashMap<String, String>) -> Result<(), String> {
    let Some(raw) = flags.get("io-threads") else {
        return Ok(());
    };
    let n: usize = raw.parse().map_err(|e| format!("bad --io-threads: {e}"))?;
    if !arp_par::configure_global_io_threads(n) {
        return Err("--io-threads set after the worker pool started".into());
    }
    Ok(())
}

/// Forces every layer's metric catalog into the registry, so snapshots
/// list all instruments rather than only the ones a code path touched.
fn register_all_metrics() {
    arp_par::metrics::register();
    arp_core::metrics::register();
}

/// Handles `--metrics-addr ADDR` (and its companion `--metrics-hold SECS`):
/// enables metrics collection, registers the full catalog, and starts the
/// background `/metrics` + `/healthz` endpoint. Returns how long to keep
/// the process alive after the workload so scrapers can still reach the
/// endpoint (`127.0.0.1:0` picks a free port; the resolved address is
/// printed for scripts to grep).
fn start_metrics(flags: &HashMap<String, String>) -> Result<Option<std::time::Duration>, String> {
    let Some(addr) = flags.get("metrics-addr") else {
        if flags.contains_key("metrics-hold") {
            return Err("--metrics-hold needs --metrics-addr".into());
        }
        return Ok(None);
    };
    let hold: u64 = flags.get("metrics-hold").map_or(Ok(0), |v| {
        v.parse().map_err(|e| format!("bad --metrics-hold: {e}"))
    })?;
    arp_metrics::set_enabled(true);
    register_all_metrics();
    // The `/statusz` view needs the per-worker registry live.
    arp_diag::workers::set_tracking(true);
    arp_metrics::http::set_statusz_provider(Box::new(statusz_body));
    let local =
        arp_metrics::http::serve(addr).map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
    println!("metrics: serving http://{local}/metrics");
    Ok(Some(std::time::Duration::from_secs(hold)))
}

/// Assembles the live `/statusz` body: the in-flight batch's per-event
/// DAG frontier (`null` between batches), every worker's current node /
/// lane / steal count with the longest-running in-flight nodes, the
/// pool's cumulative counters, and each worker deque's live depth.
fn statusz_body() -> String {
    let frontier = arp_core::frontier_json().unwrap_or_else(|| "null".to_string());
    let workers = arp_diag::workers::to_json(8);
    let pool = arp_par::ThreadPool::global();
    let s = pool.stats();
    let deques: Vec<String> = pool
        .deque_depths()
        .into_iter()
        .map(|(worker, depth)| format!("{{\"worker\":\"{worker}\",\"depth\":{depth}}}"))
        .collect();
    format!(
        "{{\n\"frontier\": {frontier},\n\"workers\": {workers},\n\"pool\": {{\"jobs_on_workers\":{},\"jobs_helped\":{},\"steal_attempts\":{},\"steals_compute\":{},\"steals_io\":{},\"cross_lane_steals\":{},\"panics_caught\":{}}},\n\"deques\": [{}]\n}}\n",
        s.jobs_on_workers,
        s.jobs_helped,
        s.steal_attempts,
        s.steals_compute,
        s.steals_io,
        s.cross_lane_steals,
        s.panics_caught,
        deques.join(",")
    )
}

/// Handles `--log-level`, `--diag on|off`, and `--diag-dir DIR`: sets the
/// console log level, and — when diagnostics are on — arms the flight
/// recorder (ring logging + worker tracking + the panic hook) with the
/// bundle sources this binary can capture. Returns whether the recorder
/// was armed, so the workload's error path can write an abort bundle.
fn start_diag(flags: &HashMap<String, String>) -> Result<bool, String> {
    if let Some(level) = flags.get("log-level") {
        if level == "off" {
            arp_diag::set_console_level(None);
        } else {
            let parsed = arp_diag::Level::parse(level).ok_or_else(|| {
                format!("bad --log-level {level:?} (use trace|debug|info|warn|error|off)")
            })?;
            arp_diag::set_console_level(Some(parsed));
        }
    }
    let on = match flags.get("diag").map(|s| s.as_str()) {
        Some("on") => true,
        Some("off") => false,
        None => flags.contains_key("diag-dir"),
        Some(other) => return Err(format!("bad --diag {other:?} (use on|off)")),
    };
    if !on {
        return Ok(false);
    }
    let dir = flags
        .get("diag-dir")
        .or_else(|| flags.get("work"))
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    // Everything this process can freeze into a bundle: the Prometheus
    // snapshot, the active trace session's tail (absent when untraced),
    // and the live super-DAG frontier (absent between batches).
    arp_diag::recorder::add_source("metrics.prom", || Some(arp_metrics::gather()));
    arp_diag::recorder::add_source("trace.csv", || arp_trace::snapshot().map(|t| t.to_csv()));
    arp_diag::recorder::add_source("frontier.json", arp_core::frontier_json);
    let run_id = format!(
        "{}-{}",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs()),
        std::process::id()
    );
    arp_diag::recorder::arm(&run_id, &dir);
    println!(
        "diag: flight recorder armed (run {run_id}, bundles under {})",
        dir.display()
    );
    Ok(true)
}

/// After the workload: keep the metrics endpoint reachable for `--metrics-hold`.
fn hold_metrics(hold: Option<std::time::Duration>) {
    if let Some(hold) = hold.filter(|h| !h.is_zero()) {
        println!("metrics: holding endpoint open for {hold:?}");
        std::thread::sleep(hold);
    }
}

/// The trace sinks a command was asked for (`--trace`, `--trace-svg`,
/// `--trace-csv`). When any is present the workload runs inside a
/// [`arp_trace::TraceSession`] and the drained trace is written to each
/// requested file.
struct TraceSinks {
    chrome: Option<PathBuf>,
    svg: Option<PathBuf>,
    csv: Option<PathBuf>,
}

impl TraceSinks {
    fn from_flags(flags: &HashMap<String, String>) -> TraceSinks {
        TraceSinks {
            chrome: flags.get("trace").map(PathBuf::from),
            svg: flags.get("trace-svg").map(PathBuf::from),
            csv: flags.get("trace-csv").map(PathBuf::from),
        }
    }

    /// Starts a session iff any sink was requested.
    fn session(&self) -> Option<arp_trace::TraceSession> {
        (self.chrome.is_some() || self.svg.is_some() || self.csv.is_some())
            .then(arp_trace::TraceSession::start)
    }

    /// Writes every requested sink and prints the scheduler-health summary.
    fn write(&self, trace: &arp_trace::Trace) -> Result<(), String> {
        let save = |path: &PathBuf, content: String| -> Result<(), String> {
            std::fs::write(path, content).map_err(|e| format!("{}: {e}", path.display()))?;
            println!("wrote {}", path.display());
            Ok(())
        };
        if let Some(path) = &self.chrome {
            save(path, trace.to_chrome_json())?;
        }
        if let Some(path) = &self.svg {
            save(path, arp_core::worker_timeline_svg(trace))?;
        }
        if let Some(path) = &self.csv {
            save(path, trace.to_csv())?;
        }
        print!("{}", trace.summary().render());
        if !trace.lane_violations().is_empty() {
            arp_diag::warn(|| "trace has overlapping spans within a lane".to_string());
        }
        Ok(())
    }
}

fn cmd_run(flags: &HashMap<String, String>) -> Result<(), String> {
    let kind = impl_kind(flags.get("impl").map_or("full", |s| s.as_str()))?;
    let ctx = make_context(flags)?;
    configure_io_threads(flags)?;
    let diag = start_diag(flags)?;
    let hold = start_metrics(flags)?;
    let sinks = TraceSinks::from_flags(flags);
    let session = sinks.session();
    let result = run_pipeline_labeled(&ctx, kind, "cli");
    if diag {
        if let Err(e) = &result {
            // A panic already wrote its bundle from the hook; this covers
            // ordinary failures (and is a no-op after a hook capture).
            arp_diag::recorder::write_postmortem(&format!("run failed: {e}"));
        }
    }
    let trace = session.map(|s| s.finish());
    let report = result.map_err(|e| e.to_string())?;
    println!(
        "{}: {} V1 files, {} data points, {:?} ({:.0} points/s, dsp {})",
        report.implementation.label(),
        report.v1_files,
        report.data_points,
        report.total,
        report.throughput(),
        report.dsp_backend
    );
    for stage in &report.stages {
        println!("  stage {:<5} {:?}", stage.stage.label(), stage.elapsed);
    }
    if let Some(dag) = &report.dag {
        let path: Vec<String> = dag
            .critical_path
            .iter()
            .map(|p| format!("#{}", p.0))
            .collect();
        println!(
            "  critical path {} ({:?} floor on {} threads)",
            path.join(" -> "),
            dag.critical_path_len,
            dag.threads
        );
        println!(
            "  makespan {:?} dag vs {:?} barrier plan (barriers cost {:?}; stage parallelism saves {:?})",
            dag.dag_makespan,
            dag.barrier_makespan,
            dag.barrier_saving(),
            dag.stage_saving()
        );
    }
    if flags.get("stats").is_some_and(|v| v != "off") {
        match &report.pool {
            Some(pool) => {
                println!(
                    "  pool: {} dispatched, {} helped by caller, {} loops, {} dag dispatches (ready peak {}), {} dags",
                    pool.jobs_on_workers,
                    pool.jobs_helped,
                    pool.loops_completed,
                    pool.dag_dispatches,
                    pool.dag_ready_peak,
                    pool.dags_completed
                );
                println!(
                    "  io lane: {} dispatched, {} on io workers (ready peak {})",
                    pool.io_dispatches, pool.io_jobs_on_workers, pool.io_ready_peak
                );
                println!(
                    "  stealing: {} attempts, {} compute + {} io stolen ({} cross-lane)",
                    pool.steal_attempts,
                    pool.steals_compute,
                    pool.steals_io,
                    pool.cross_lane_steals
                );
            }
            None => println!("  pool: not used by this run"),
        }
    }
    if let Some(trace) = &trace {
        sinks.write(trace)?;
    }
    if diag {
        arp_diag::recorder::disarm();
    }
    hold_metrics(hold);
    Ok(())
}

fn cmd_verify(flags: &HashMap<String, String>) -> Result<(), String> {
    let ctx = make_context(flags)?;
    let issues = verify_run(&ctx).map_err(|e| e.to_string())?;
    if issues.is_empty() {
        let stations = ctx.stations().map_err(|e| e.to_string())?;
        println!(
            "verified: complete run for {} stations ({} artifacts)",
            stations.len(),
            arp_core::expected_artifacts(&stations).len()
        );
        Ok(())
    } else {
        for issue in &issues {
            eprintln!("{issue}");
        }
        Err(format!("{} issue(s) found", issues.len()))
    }
}

fn cmd_inspect(flags: &HashMap<String, String>) -> Result<(), String> {
    let work = PathBuf::from(flags.get("work").ok_or("inspect needs --work DIR")?);
    let station = flags.get("station").ok_or("inspect needs --station CODE")?;

    println!("station {station}:");
    for comp in Component::ALL {
        let v2 = V2File::read(&work.join(names::v2_component(station, comp)))
            .map_err(|e| e.to_string())?;
        println!(
            "  {} {:>6} samples @ {:>5.0} sps | band {:.3}-{:.1} Hz | PGA {:8.3} cm/s2 PGV {:7.4} cm/s PGD {:7.4} cm",
            comp.code(),
            v2.data.len(),
            1.0 / v2.header.dt,
            v2.band.fpl,
            v2.band.fph,
            v2.peaks.pga,
            v2.peaks.pgv,
            v2.peaks.pgd
        );
        let r = RFile::read(&work.join(names::r_component(station, comp)))
            .map_err(|e| e.to_string())?;
        if let Some(spec) = r.at_damping(0.05) {
            let (idx, peak) = spec
                .sa
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, v)| (i, *v))
                .unwrap_or((0, 0.0));
            println!(
                "     SA(5%) peak {:8.2} cm/s2 at T = {:.2} s",
                peak, spec.periods[idx]
            );
        }
    }
    if let Ok(mv) = MaxValues::read(&work.join(MaxValues::FILE_NAME)) {
        let n = mv.entries.iter().filter(|e| &e.station == station).count();
        println!("  max-values entries for this station: {n}");
    }
    Ok(())
}

fn cmd_batch(flags: &HashMap<String, String>) -> Result<(), String> {
    let root = PathBuf::from(flags.get("root").ok_or("batch needs --root DIR")?);
    let work = PathBuf::from(flags.get("work").ok_or("batch needs --work DIR")?);
    // For whole batches, `dag` means the cross-event super-DAG scheduler,
    // not a per-event DAG loop.
    let kind = match impl_kind(flags.get("impl").map_or("full", |s| s.as_str()))? {
        ImplKind::DagParallel => ImplKind::BatchDag,
        other => other,
    };
    let order = match flags.get("order").map(|s| s.as_str()) {
        None | Some("cp") => ReadyOrder::CriticalPath,
        Some("fifo") => ReadyOrder::Submission,
        Some(other) => return Err(format!("unknown --order {other:?} (use cp|fifo)")),
    };
    let items = arp_core::discover_batch(&root).map_err(|e| e.to_string())?;
    if items.is_empty() {
        return Err(format!(
            "no event directories with .v1 files under {}",
            root.display()
        ));
    }
    println!("processing {} events...", items.len());
    let config = pipeline_config(flags)?;
    configure_io_threads(flags)?;
    let diag = start_diag(flags)?;
    let hold = start_metrics(flags)?;
    let sinks = TraceSinks::from_flags(flags);
    let session = sinks.session();
    let result = if kind == ImplKind::BatchDag {
        arp_core::run_batch_dag(&items, &work, &config, order)
    } else {
        arp_core::run_batch(&items, &work, &config, kind)
    };
    if diag {
        if let Err(e) = &result {
            // A panic already wrote its bundle from the hook; this covers
            // ordinary failures (and is a no-op after a hook capture).
            arp_diag::recorder::write_postmortem(&format!("batch failed: {e}"));
        }
    }
    let trace = session.map(|s| s.finish());
    let report = result.map_err(|e| e.to_string())?;
    print!("{}", report.to_table());
    if let Some(trace) = &trace {
        sinks.write(trace)?;
    }
    if diag {
        arp_diag::recorder::disarm();
    }
    hold_metrics(hold);
    Ok(())
}

/// `arp profile` — critical-path attribution with what-if speedup curves.
///
/// ```text
/// arp profile --input TRACE.json [--threads N] [--io-threads N]
/// arp profile --root DIR --work DIR [--io-threads N]
/// arp profile --check PROFILE.json [--tolerance X]
/// ```
///
/// The first form folds a recorded `--trace` file (Chrome Trace Event
/// format) into the attribution profile; the second runs a fresh
/// instrumented super-DAG batch and profiles it; the third validates an
/// exported profile JSON (internal consistency plus the self-time ≡
/// worker-busy accounting identity within `--tolerance`, default 1%).
/// `--top K` picks how many kernels get what-if curves; `--json`,
/// `--folded`, and `--svg` write the profile JSON, collapsed folded
/// stacks, and the flame (icicle) SVG.
fn cmd_profile(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = flags.get("check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let profile =
            arp_trace::profile::Profile::parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
        let tolerance: f64 = flags.get("tolerance").map_or(Ok(0.01), |v| {
            v.parse().map_err(|e| format!("bad --tolerance: {e}"))
        })?;
        profile
            .validate(tolerance)
            .map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: valid profile — {} kernel(s) over {} event(s), {} what-if curve(s), \
             accounting error {:.4}%",
            profile.kernels.len(),
            profile.events.len(),
            profile.what_if.len(),
            profile.accounting_error() * 100.0
        );
        return Ok(());
    }
    let top_k: usize = flags.get("top").map_or(Ok(arp_core::WHAT_IF_TOP_K), |v| {
        v.parse().map_err(|e| format!("bad --top: {e}"))
    })?;
    let flag_usize = |key: &str| -> Result<Option<usize>, String> {
        flags
            .get(key)
            .map(|v| v.parse().map_err(|e| format!("bad --{key}: {e}")))
            .transpose()
    };
    let (trace, threads, io_threads) = if let Some(path) = flags.get("input") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let trace = arp_trace::from_chrome_json(&text).map_err(|e| format!("{path}: {e}"))?;
        // Replay topology: flags win; otherwise reconstruct it from the
        // recorded worker lanes (the I/O lane workers are named arp-io-*).
        let io_lanes = trace
            .lanes
            .iter()
            .filter(|l| l.starts_with("arp-io-"))
            .count();
        let compute = (trace.lanes.len() - io_lanes).max(1);
        let threads = flag_usize("threads")?.unwrap_or(compute);
        let io_threads = flag_usize("io-threads")?.unwrap_or(io_lanes);
        (trace, threads, io_threads)
    } else {
        let root = flags.get("root").ok_or(
            "profile needs --input TRACE.json, --check PROFILE.json, or --root DIR --work DIR",
        )?;
        let work = PathBuf::from(flags.get("work").ok_or("profile --root needs --work DIR")?);
        let items = arp_core::discover_batch(&PathBuf::from(root)).map_err(|e| e.to_string())?;
        if items.is_empty() {
            return Err(format!("no event directories with .v1 files under {root}"));
        }
        configure_io_threads(flags)?;
        println!(
            "profiling a fresh dag batch over {} event(s)...",
            items.len()
        );
        let session = arp_trace::TraceSession::start();
        let result = arp_core::run_batch_dag(
            &items,
            &work,
            &PipelineConfig::default(),
            ReadyOrder::CriticalPath,
        );
        let trace = session.finish();
        result.map_err(|e| e.to_string())?;
        let pool = arp_par::ThreadPool::global();
        let threads = flag_usize("threads")?.unwrap_or_else(|| pool.threads());
        (trace, threads, pool.io_threads())
    };
    let profile = arp_core::profile_trace_what_if(
        &trace,
        threads,
        io_threads,
        top_k,
        &arp_core::WHAT_IF_SPEEDUPS,
    )
    .map_err(|e| e.to_string())?;
    let save = |path: &String, content: String| -> Result<(), String> {
        std::fs::write(path, content).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote {path}");
        Ok(())
    };
    if let Some(path) = flags.get("json") {
        save(path, profile.to_json())?;
    }
    if let Some(path) = flags.get("folded") {
        save(path, profile.folded())?;
    }
    if let Some(path) = flags.get("svg") {
        let flame = arp_plot::FlameGraph::from_folded(&profile.folded())?;
        let title = format!(
            "arp profile — {} event(s), wall {:.1} ms",
            profile.events.len(),
            profile.wall_ns as f64 / 1e6
        );
        save(path, flame.to_svg(1000.0, &title))?;
    }
    print!("{}", profile.render());
    Ok(())
}

/// `arp diag-check` — validates diagnostics artifacts. `--file LOG.jsonl`
/// strictly parses a structured-log export (every line a record, strictly
/// increasing sequence numbers); `--bundle DIR` validates a postmortem
/// bundle (required files present, log parses, frontier well-formed).
fn cmd_diag_check(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = flags.get("file") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let n = arp_diag::validate_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: valid diagnostics log — {n} record(s)");
        return Ok(());
    }
    if let Some(dir) = flags.get("bundle") {
        let summary = arp_diag::recorder::check_bundle(std::path::Path::new(dir))?;
        println!("{summary}");
        return Ok(());
    }
    Err("diag-check needs --file LOG.jsonl or --bundle DIR".into())
}

/// `arp postmortem BUNDLE` — renders a flight-recorder bundle as a
/// human-readable incident report: the failure reason, the failing node
/// and its event/worker, that worker's last log records, the slowest
/// in-flight nodes, and per-event progress at capture time.
fn cmd_postmortem(flags: &HashMap<String, String>, positional: Option<&str>) -> Result<(), String> {
    let dir = positional
        .map(str::to_string)
        .or_else(|| flags.get("bundle").cloned())
        .ok_or("postmortem needs a bundle directory (arp postmortem DIR)")?;
    let report = arp_diag::recorder::render_report(std::path::Path::new(&dir))?;
    print!("{report}");
    Ok(())
}

/// Validates a Chrome-trace file written by `--trace` against the Trace
/// Event schema and reports what it contains.
fn cmd_trace_check(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = PathBuf::from(flags.get("file").ok_or("trace-check needs --file FILE")?);
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let check =
        arp_trace::validate_chrome_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    if check.complete == 0 {
        return Err(format!("{}: no complete (X) span events", path.display()));
    }
    let trace =
        arp_trace::from_chrome_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let violations = trace.lane_violations();
    if !violations.is_empty() {
        return Err(format!(
            "{}: spans overlap within a lane:\n  {}",
            path.display(),
            violations.join("\n  ")
        ));
    }
    println!(
        "{}: valid Chrome trace — {} events ({} spans) on {} worker lanes, {} counter samples on {} tracks",
        path.display(),
        check.events,
        check.complete,
        check.lanes,
        check.counter_events,
        check.counter_tracks
    );
    Ok(())
}

/// `arp metrics` — Prometheus text-exposition tooling. With no flags,
/// prints a snapshot of this process's full metric catalog (all zeros in a
/// fresh process; the naming and format are the point). `--check FILE`
/// strictly parses a scraped exposition file, `--fetch ADDR` scrapes a
/// running `--metrics-addr` endpoint over plain TCP and validates the body
/// — so CI needs no external HTTP client. `--path /statusz` redirects the
/// fetch to another route on the same endpoint (printed raw, no exposition
/// check, since `/statusz` serves JSON).
fn cmd_metrics(flags: &HashMap<String, String>) -> Result<(), String> {
    if let Some(path) = flags.get("check") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let samples =
            arp_metrics::expo::parse_exposition(&text).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: valid Prometheus exposition — {} samples",
            samples.len()
        );
        return Ok(());
    }
    if let Some(addr) = flags.get("fetch") {
        let path = flags.get("path").map_or("/metrics", String::as_str);
        let body = fetch_http(addr, path)?;
        if path != "/metrics" {
            // /statusz and friends serve JSON, not Prometheus exposition.
            print!("{body}");
            return Ok(());
        }
        let samples =
            arp_metrics::expo::parse_exposition(&body).map_err(|e| format!("{addr}: {e}"))?;
        print!("{body}");
        eprintln!(
            "{addr}: valid Prometheus exposition — {} samples",
            samples.len()
        );
        return Ok(());
    }
    register_all_metrics();
    print!("{}", arp_metrics::gather());
    Ok(())
}

/// Minimal HTTP/1.1 GET against a `--metrics-addr` endpoint.
fn fetch_http(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read, Write};
    let err = |e: std::io::Error| format!("{addr}: {e}");
    let mut stream = std::net::TcpStream::connect(addr).map_err(err)?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .map_err(err)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(err)?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(err)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("{addr}: malformed HTTP response"))?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(format!("{addr}: {status}"));
    }
    Ok(body.to_string())
}

/// Builds the filter list for `arp query` from its flags.
fn query_filters(flags: &HashMap<String, String>) -> Result<Vec<Filter>, String> {
    let mut filters = Vec::new();
    if let Some(kind) = flags.get("kind") {
        filters.push(Filter::Kind(
            RecordKind::from_short_name(kind).map_err(|e| e.to_string())?,
        ));
    }
    if let Some(event) = flags.get("event") {
        filters.push(Filter::Event(event.clone()));
    }
    if let Some(station) = flags.get("station") {
        filters.push(Filter::Station(station.clone()));
    }
    if let Some(comp) = flags.get("component") {
        let comp = match comp.chars().collect::<Vec<_>>().as_slice() {
            [c] => Component::from_code(*c),
            _ => Component::from_name(comp),
        }
        .map_err(|e| e.to_string())?;
        filters.push(Filter::Component(comp));
    }
    let bound = |key: &str| -> Result<Option<f64>, String> {
        flags
            .get(key)
            .map(|v| v.parse().map_err(|e| format!("bad --{key}: {e}")))
            .transpose()
    };
    let (min_pga, max_pga) = (bound("min-pga")?, bound("max-pga")?);
    if min_pga.is_some() || max_pga.is_some() {
        filters.push(Filter::pga_range(min_pga, max_pga));
    }
    let (period_min, period_max) = (bound("period-min")?, bound("period-max")?);
    if period_min.is_some() || period_max.is_some() {
        filters.push(Filter::period_band(period_min, period_max));
    }
    Ok(filters)
}

/// `arp query` — filtered streaming scan over a work directory's products.
///
/// ```text
/// arp query --dir WORK [--kind v1s|v1c|v2|f|r] [--event ID] [--station CODE]
///           [--component l|t|v] [--min-pga X] [--max-pga X]
///           [--period-min X] [--period-max X]
///           [--format table|csv|paths] [--emit DIR]
/// ```
///
/// Records stream through the filters one at a time — non-matching record
/// bodies are skipped without parsing, so querying a large work directory
/// never loads whole files. `--emit DIR` re-encodes every match into `DIR`
/// under its canonical file name (byte-identical to the source records).
fn cmd_query(flags: &HashMap<String, String>) -> Result<(), String> {
    let dir = PathBuf::from(flags.get("dir").ok_or("query needs --dir DIR")?);
    let format = flags.get("format").map_or("table", |s| s.as_str());
    if !matches!(format, "table" | "csv" | "paths") {
        return Err(format!("unknown --format {format:?} (use table|csv|paths)"));
    }
    let emit = flags.get("emit").map(PathBuf::from);
    let filters = query_filters(flags)?;
    let iter = Query::new(&dir)
        .filters(filters)
        .run()
        .map_err(|e| e.to_string())?;

    if format == "csv" {
        println!("kind,station,event,component,points,pga,file");
    }
    let mut matches = 0usize;
    let mut errors = 0usize;
    for item in iter {
        let hit = match item {
            Ok(hit) => hit,
            Err(e) => {
                errors += 1;
                arp_diag::warn(|| e.to_string());
                continue;
            }
        };
        matches += 1;
        let rec = &hit.record;
        let comp = rec.component().map_or("-".into(), |c| c.code().to_string());
        let pga = rec.pga().map_or("-".into(), |v| format!("{v:.3}"));
        match format {
            "paths" => println!("{}", hit.path.display()),
            "csv" => println!(
                "{},{},{},{},{},{},{}",
                rec.kind().short_name(),
                rec.station(),
                rec.event_id(),
                comp,
                rec.data_points(),
                pga,
                hit.path.display()
            ),
            _ => println!(
                "{:<4} {:<6} {:<10} {:<2} {:>8} {:>10}  {}",
                rec.kind().short_name(),
                rec.station(),
                rec.event_id(),
                comp,
                rec.data_points(),
                pga,
                hit.path.display()
            ),
        }
        if let Some(out) = &emit {
            let mut enc =
                RecordEncoder::create(&out.join(rec.file_name())).map_err(|e| e.to_string())?;
            enc.write_record(rec).map_err(|e| e.to_string())?;
            enc.finish().map_err(|e| e.to_string())?;
        }
    }
    eprintln!(
        "query: {matches} record(s) matched{}",
        if errors > 0 {
            format!(", {errors} file(s) skipped with errors")
        } else {
            String::new()
        }
    );
    if let Some(out) = &emit {
        eprintln!("query: re-encoded matches into {}", out.display());
    }
    if matches == 0 && errors > 0 {
        return Err("no records matched and some files failed to parse".into());
    }
    Ok(())
}

fn cmd_summary(flags: &HashMap<String, String>) -> Result<(), String> {
    let ctx = make_context(flags)?;
    let rows = event_summary(&ctx).map_err(|e| e.to_string())?;
    let csv = summary_csv(&rows);
    match flags.get("csv") {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| e.to_string())?;
            println!("wrote {} rows to {path}", rows.len());
        }
        None => print!("{csv}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!(
            "usage: arp <generate|run|verify|inspect|query|summary|batch|profile|trace-check|metrics|diag-check|postmortem> [--flags]"
        );
        return ExitCode::from(2);
    };
    // `arp postmortem <bundle>` takes its bundle directory positionally.
    let positional = (command == "postmortem" && args.get(1).is_some_and(|a| !a.starts_with("--")))
        .then(|| args[1].clone());
    let flag_args = if positional.is_some() {
        &args[2..]
    } else {
        &args[1..]
    };
    let flags = match parse_flags(flag_args) {
        Ok(f) => f,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&flags),
        "run" => cmd_run(&flags),
        "verify" => cmd_verify(&flags),
        "inspect" => cmd_inspect(&flags),
        "query" => cmd_query(&flags),
        "summary" => cmd_summary(&flags),
        "batch" => cmd_batch(&flags),
        "profile" => cmd_profile(&flags),
        "trace-check" => cmd_trace_check(&flags),
        "metrics" => cmd_metrics(&flags),
        "diag-check" => cmd_diag_check(&flags),
        "postmortem" => cmd_postmortem(&flags, positional.as_deref()),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
