//! # arp-diag — structured diagnostics and the flight recorder
//!
//! The third observability pillar next to `arp-trace` (spans) and
//! `arp-metrics` (counters): leveled, attributed **log records**. Every
//! record carries a monotonic timestamp (nanoseconds since the process
//! epoch shared with the trace layer), the worker thread that produced it,
//! and — when the pipeline has told us — the event / process / DAG node it
//! was working on at the time.
//!
//! The design follows the sibling crates' idiom exactly:
//!
//! * **One relaxed load when disabled.** [`enabled`] compares the record's
//!   level against a single atomic gate; below the gate the call site does
//!   no formatting, no locking, no clock read. The gate is the minimum of
//!   the console threshold (default [`Level::Warn`], so warnings still
//!   reach stderr in an unconfigured process) and the ring threshold
//!   ([`Level::Trace`] while the ring is armed, off otherwise).
//! * **Thread-local rings.** Armed recording appends to a per-thread ring
//!   buffer registered under the thread's name (the pool's `arp-par-*` /
//!   `arp-io-*` workers each get a lane); overflow drops the *oldest*
//!   record and counts it. No cross-thread contention on the hot path.
//! * **First-party JSONL.** [`export_jsonl`] writes one JSON object per
//!   line; [`parse_jsonl`] / [`validate_jsonl`] read it back with the
//!   workspace's own parser (`arp_trace::json`) — the `arp diag-check`
//!   validator is built on them.
//!
//! On top of the logger sits the flight recorder ([`recorder`]): arm it
//! with a run id and an output directory, and a worker panic (or an
//! explicit abort) writes a `postmortem-<run-id>/` bundle — the log-ring
//! tail, the live super-DAG frontier, per-worker state, and whatever extra
//! sources (metrics snapshot, trace tail) the host process registered.
//!
//! [`workers`] is the shared per-worker state registry: which node each
//! worker is executing right now, since when, and how many tasks it has
//! stolen — the data the `/statusz` endpoint and the postmortem bundle
//! both render.

#![warn(missing_docs)]

pub mod recorder;
pub mod workers;

use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Severity of a log record, ordered `Trace < Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Scheduler-internal chatter (steals, dispatches).
    Trace,
    /// Per-node lifecycle records.
    Debug,
    /// Run milestones.
    Info,
    /// Recoverable anomalies — the default console threshold.
    Warn,
    /// Failures: panics, aborted batches.
    Error,
}

/// Gate value meaning "no level passes" (one past [`Level::Error`]).
const LEVEL_OFF: usize = 5;

impl Level {
    /// Lower-case display name (`"warn"`), also the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a level name as written by [`Level::as_str`].
    pub fn parse(s: &str) -> Option<Level> {
        Some(match s {
            "trace" => Level::Trace,
            "debug" => Level::Debug,
            "info" => Level::Info,
            "warn" => Level::Warn,
            "error" => Level::Error,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured log record.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Global sequence number — a total order across all threads.
    pub seq: u64,
    /// Nanoseconds since the process epoch (monotonic, shared with the
    /// trace layer's clock).
    pub t_ns: u64,
    /// Severity.
    pub level: Level,
    /// Name of the thread that produced the record.
    pub worker: String,
    /// Event label the worker was processing, when attributed.
    pub event: Option<String>,
    /// Pipeline process number (`#p`), when attributed.
    pub process: Option<u8>,
    /// Super-DAG node label (`"<event>/#<p>"`), when attributed.
    pub node: Option<String>,
    /// Human-readable message.
    pub message: String,
}

/// Minimum level that is recorded *anywhere* (console or ring), encoded as
/// `Level as usize` (or [`LEVEL_OFF`]). The disabled fast path of [`log`]
/// is exactly one relaxed load against this.
static GATE: AtomicUsize = AtomicUsize::new(Level::Warn as usize);

/// Console (stderr) threshold; [`LEVEL_OFF`] silences the console.
static CONSOLE: AtomicUsize = AtomicUsize::new(Level::Warn as usize);

/// Whether records are captured into the thread-local rings.
static RING_ON: AtomicBool = AtomicBool::new(false);

/// Global record sequence counter.
static SEQ: AtomicU64 = AtomicU64::new(0);

fn recompute_gate() {
    let console = CONSOLE.load(Ordering::SeqCst);
    let ring = if RING_ON.load(Ordering::SeqCst) {
        Level::Trace as usize
    } else {
        LEVEL_OFF
    };
    GATE.store(console.min(ring), Ordering::SeqCst);
}

/// Sets the console (stderr) threshold; `None` silences the console
/// entirely. The default is [`Level::Warn`].
pub fn set_console_level(level: Option<Level>) {
    CONSOLE.store(level.map_or(LEVEL_OFF, |l| l as usize), Ordering::SeqCst);
    recompute_gate();
}

/// Arms or disarms ring capture. Arming clears every live lane so the
/// rings hold only the new run's records.
pub fn set_ring_enabled(on: bool) {
    if on {
        let reg = registry().lock();
        for lane in reg.iter() {
            let mut ring = lane.ring.lock();
            ring.records.clear();
            ring.dropped = 0;
        }
    }
    RING_ON.store(on, Ordering::SeqCst);
    recompute_gate();
}

/// Whether ring capture is armed.
pub fn ring_enabled() -> bool {
    RING_ON.load(Ordering::Relaxed)
}

/// Whether a record at `level` would be recorded anywhere. One relaxed
/// load — the whole cost of a disabled call site.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as usize >= GATE.load(Ordering::Relaxed)
}

/// Records per thread-local ring; oldest dropped (and counted) past this.
const RING_CAPACITY: usize = 8192;

struct Ring {
    records: VecDeque<Record>,
    dropped: u64,
}

/// One thread's ring. Records carry their worker name themselves, so the
/// lane needs no identity of its own — it is only a drain point.
struct Lane {
    ring: Mutex<Ring>,
}

/// The worker's pipeline attribution, mirrored onto every record it logs.
#[derive(Default, Clone)]
struct Context {
    event: Option<String>,
    process: Option<u8>,
    node: Option<String>,
}

thread_local! {
    static LANE: RefCell<Option<Arc<Lane>>> = const { RefCell::new(None) };
    static CONTEXT: RefCell<Context> = RefCell::new(Context::default());
}

fn registry() -> &'static Mutex<Vec<Arc<Lane>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Lane>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Shared monotonic origin for [`Record::t_ns`] — the trace layer's clock,
/// so log timestamps and span timestamps line up in a postmortem.
fn now_ns() -> u64 {
    // `arp_trace::stamp` is gated on *trace* enablement; diag needs the
    // epoch unconditionally, so keep its own lazily-pinned copy of the
    // same idea (first use pins the origin).
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn lane_for_current_thread() -> Arc<Lane> {
    LANE.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(lane) = slot.as_ref() {
            return lane.clone();
        }
        let lane = Arc::new(Lane {
            ring: Mutex::new(Ring {
                records: VecDeque::new(),
                dropped: 0,
            }),
        });
        registry().lock().push(lane.clone());
        *slot = Some(lane.clone());
        lane
    })
}

/// Sets this thread's pipeline attribution; subsequent records carry it.
pub fn set_context(event: Option<String>, process: Option<u8>, node: Option<String>) {
    CONTEXT.with(|c| {
        *c.borrow_mut() = Context {
            event,
            process,
            node,
        }
    });
}

/// Clears this thread's pipeline attribution.
pub fn clear_context() {
    CONTEXT.with(|c| *c.borrow_mut() = Context::default());
}

/// Snapshot of this thread's current attribution:
/// `(event, process, node)`. The recorder stamps the incident record with
/// it when a panic hook fires on a worker.
pub fn current_context() -> (Option<String>, Option<u8>, Option<String>) {
    CONTEXT.with(|c| {
        let c = c.borrow();
        (c.event.clone(), c.process, c.node.clone())
    })
}

/// Logs a record at `level`. The message closure runs only when the level
/// passes the gate, so disabled call sites pay one relaxed load and no
/// formatting.
#[inline]
pub fn log(level: Level, message: impl FnOnce() -> String) {
    if !enabled(level) {
        return;
    }
    log_slow(level, message());
}

/// Convenience: [`log`] at [`Level::Trace`].
#[inline]
pub fn trace(message: impl FnOnce() -> String) {
    log(Level::Trace, message);
}

/// Convenience: [`log`] at [`Level::Debug`].
#[inline]
pub fn debug(message: impl FnOnce() -> String) {
    log(Level::Debug, message);
}

/// Convenience: [`log`] at [`Level::Info`].
#[inline]
pub fn info(message: impl FnOnce() -> String) {
    log(Level::Info, message);
}

/// Convenience: [`log`] at [`Level::Warn`].
#[inline]
pub fn warn(message: impl FnOnce() -> String) {
    log(Level::Warn, message);
}

/// Convenience: [`log`] at [`Level::Error`].
#[inline]
pub fn error(message: impl FnOnce() -> String) {
    log(Level::Error, message);
}

fn log_slow(level: Level, message: String) {
    let context = CONTEXT.with(|c| c.borrow().clone());
    let record = Record {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        t_ns: now_ns(),
        level,
        worker: std::thread::current()
            .name()
            .unwrap_or("caller")
            .to_string(),
        event: context.event,
        process: context.process,
        node: context.node,
        message,
    };
    if level as usize >= CONSOLE.load(Ordering::Relaxed) {
        let at = match &record.node {
            Some(node) => format!(" [{node}]"),
            None => String::new(),
        };
        eprintln!("arp[{level}]{at} {}", record.message);
    }
    if RING_ON.load(Ordering::Relaxed) {
        let lane = lane_for_current_thread();
        let mut ring = lane.ring.lock();
        if ring.records.len() >= RING_CAPACITY {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(record);
    }
}

/// Copies every lane's ring (without clearing), merged and sorted by
/// sequence number. Safe to call mid-run — the flight recorder uses it
/// from a panic hook while workers are still logging.
pub fn snapshot() -> Vec<Record> {
    let mut records = Vec::new();
    for lane in registry().lock().iter() {
        records.extend(lane.ring.lock().records.iter().cloned());
    }
    records.sort_by_key(|r| r.seq);
    records
}

/// Drains every lane's ring, merged and sorted by sequence number.
pub fn drain() -> Vec<Record> {
    let mut records = Vec::new();
    for lane in registry().lock().iter() {
        let mut ring = lane.ring.lock();
        records.extend(ring.records.drain(..));
        ring.dropped = 0;
    }
    records.sort_by_key(|r| r.seq);
    records
}

/// Total records lost to ring overflow across all lanes.
pub fn dropped() -> u64 {
    registry()
        .lock()
        .iter()
        .map(|lane| lane.ring.lock().dropped)
        .sum()
}

/// Serializes records as JSONL: one JSON object per line, stable key
/// order, optional attribution keys omitted when absent.
pub fn export_jsonl(records: &[Record]) -> String {
    // `escape` produces the full string literal, quotes included.
    use arp_trace::json::escape;
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "{{\"seq\":{},\"t_ns\":{},\"level\":\"{}\",\"worker\":{}",
            r.seq,
            r.t_ns,
            r.level,
            escape(&r.worker)
        ));
        if let Some(event) = &r.event {
            out.push_str(&format!(",\"event\":{}", escape(event)));
        }
        if let Some(p) = r.process {
            out.push_str(&format!(",\"process\":{p}"));
        }
        if let Some(node) = &r.node {
            out.push_str(&format!(",\"node\":{}", escape(node)));
        }
        out.push_str(&format!(",\"msg\":{}}}\n", escape(&r.message)));
    }
    out
}

/// Parses a JSONL log back into records. Blank lines are ignored; any
/// malformed line is an error naming its line number.
pub fn parse_jsonl(text: &str) -> std::result::Result<Vec<Record>, String> {
    use arp_trace::json;
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let at = |msg: String| format!("line {}: {msg}", lineno + 1);
        let v = json::parse(line).map_err(|e| at(e.to_string()))?;
        let req_u64 = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| at(format!("missing or non-integer {key:?}")))
        };
        let req_str = |key: &str| {
            v.get(key)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| at(format!("missing or non-string {key:?}")))
        };
        let level_name = req_str("level")?;
        let level =
            Level::parse(&level_name).ok_or_else(|| at(format!("unknown level {level_name:?}")))?;
        let process = match v.get("process") {
            None => None,
            Some(x) => Some(
                x.as_u64()
                    .filter(|&p| p <= u8::MAX as u64)
                    .ok_or_else(|| at("\"process\" out of range".into()))? as u8,
            ),
        };
        records.push(Record {
            seq: req_u64("seq")?,
            t_ns: req_u64("t_ns")?,
            level,
            worker: req_str("worker")?,
            event: v.get("event").and_then(|x| x.as_str()).map(str::to_string),
            process,
            node: v.get("node").and_then(|x| x.as_str()).map(str::to_string),
            message: req_str("msg")?,
        });
    }
    Ok(records)
}

/// Validates a JSONL log: every line parses with the required fields, and
/// sequence numbers are strictly increasing (the export is seq-sorted and
/// seqs are globally unique, so duplicates or disorder mean a corrupt or
/// hand-edited file). Returns the record count.
pub fn validate_jsonl(text: &str) -> std::result::Result<usize, String> {
    let records = parse_jsonl(text)?;
    for pair in records.windows(2) {
        if pair[1].seq <= pair[0].seq {
            return Err(format!(
                "sequence numbers not strictly increasing: {} then {}",
                pair[0].seq, pair[1].seq
            ));
        }
    }
    Ok(records.len())
}

/// Logger/recorder state is process-global; every test that toggles it
/// (across this crate's modules) serializes on this lock.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_levels_do_not_format() {
        let _guard = crate::TEST_LOCK.lock();
        set_console_level(Some(Level::Error));
        set_ring_enabled(false);
        let mut ran = false;
        log(Level::Debug, || {
            ran = true;
            String::new()
        });
        assert!(!ran, "message closure ran below the gate");
        set_console_level(Some(Level::Warn));
    }

    #[test]
    fn ring_captures_attributed_records_in_seq_order() {
        let _guard = crate::TEST_LOCK.lock();
        set_console_level(None);
        set_ring_enabled(true);
        set_context(Some("ev1".into()), Some(7), Some("ev1/#7".into()));
        info(|| "first".into());
        clear_context();
        error(|| "second".into());
        let records = drain();
        set_ring_enabled(false);
        set_console_level(Some(Level::Warn));
        assert_eq!(records.len(), 2);
        assert!(records[0].seq < records[1].seq);
        assert_eq!(records[0].event.as_deref(), Some("ev1"));
        assert_eq!(records[0].process, Some(7));
        assert_eq!(records[0].node.as_deref(), Some("ev1/#7"));
        assert_eq!(records[1].level, Level::Error);
        assert_eq!(records[1].event, None);
    }

    #[test]
    fn jsonl_roundtrips_and_validates() {
        let _guard = crate::TEST_LOCK.lock();
        set_console_level(None);
        set_ring_enabled(true);
        set_context(Some("ev \"q\"".into()), Some(3), Some("ev \"q\"/#3".into()));
        warn(|| "needs \"escaping\"\n".into());
        clear_context();
        debug(|| "plain".into());
        let records = drain();
        set_ring_enabled(false);
        set_console_level(Some(Level::Warn));
        let text = export_jsonl(&records);
        assert_eq!(validate_jsonl(&text).expect("valid"), records.len());
        let parsed = parse_jsonl(&text).expect("parses");
        assert_eq!(parsed, records);
    }

    #[test]
    fn validator_rejects_corruption() {
        assert!(validate_jsonl("not json\n").is_err());
        // Missing "worker".
        assert!(
            validate_jsonl("{\"seq\":0,\"t_ns\":1,\"level\":\"info\",\"msg\":\"x\"}\n").is_err()
        );
        // Unknown level.
        assert!(validate_jsonl(
            "{\"seq\":0,\"t_ns\":1,\"level\":\"loud\",\"worker\":\"w\",\"msg\":\"x\"}\n"
        )
        .is_err());
        // Out-of-order seq.
        let two = "{\"seq\":5,\"t_ns\":1,\"level\":\"info\",\"worker\":\"w\",\"msg\":\"a\"}\n\
                   {\"seq\":5,\"t_ns\":2,\"level\":\"info\",\"worker\":\"w\",\"msg\":\"b\"}\n";
        assert!(validate_jsonl(two).is_err());
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _guard = crate::TEST_LOCK.lock();
        set_console_level(None);
        set_ring_enabled(true);
        for i in 0..(RING_CAPACITY + 10) {
            info(move || format!("r{i}"));
        }
        let dropped_now = dropped();
        let records = drain();
        set_ring_enabled(false);
        set_console_level(Some(Level::Warn));
        assert_eq!(records.len(), RING_CAPACITY);
        assert!(dropped_now >= 10);
        assert_eq!(records.last().expect("tail").message, "r8201");
    }

    #[test]
    fn level_parse_roundtrip() {
        for level in [
            Level::Trace,
            Level::Debug,
            Level::Info,
            Level::Warn,
            Level::Error,
        ] {
            assert_eq!(Level::parse(level.as_str()), Some(level));
        }
        assert_eq!(Level::parse("loud"), None);
    }
}
