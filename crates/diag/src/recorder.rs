//! The flight recorder: turns a panic (or an explicit abort) into a
//! durable `postmortem-<run-id>/` bundle.
//!
//! A host process [`arm`]s the recorder with a run id and an output
//! directory, registers extra bundle sources ([`add_source`] — the CLI
//! wires a Prometheus snapshot, the live trace tail, and the super-DAG
//! frontier), and runs its workload. If any thread panics while the
//! recorder is armed, a process-wide panic hook writes the bundle *at the
//! moment of failure* — the log rings, the per-worker state, and every
//! registered source are frozen before the unwind reaches a `catch_unwind`
//! and the pipeline's fail-fast machinery starts tearing the run down.
//! Hosts whose failure is an error value rather than a panic call
//! [`write_postmortem`] themselves. Either way at most one bundle is
//! written per armed run.
//!
//! ## Bundle layout
//!
//! ```text
//! postmortem-<run-id>/
//!   MANIFEST.txt     run id, reason, capture origin (ns since epoch)
//!   incident.json    reason + failing worker/node/event attribution
//!   log.jsonl        merged log-ring tail (see crate-level JSONL schema)
//!   workers.json     per-worker state: running node, lane, steals
//!   <source>         one file per registered source (metrics.prom,
//!                    trace.csv, frontier.json, ... — host-defined)
//! ```

use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// A named bundle contributor: returns the file body, or `None` to skip
/// the file this time (e.g. no trace session active).
type Source = Box<dyn Fn() -> Option<String> + Send + Sync>;

struct Armed {
    run_id: String,
    dir: PathBuf,
}

static ARMED: Mutex<Option<Armed>> = Mutex::new(None);
static WRITTEN: AtomicBool = AtomicBool::new(false);

fn sources() -> &'static Mutex<Vec<(String, Source)>> {
    static SOURCES: OnceLock<Mutex<Vec<(String, Source)>>> = OnceLock::new();
    SOURCES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Registers (or replaces, by file name) a bundle source. `name` is the
/// file name inside the bundle (`"metrics.prom"`, `"frontier.json"`).
pub fn add_source(name: &str, f: impl Fn() -> Option<String> + Send + Sync + 'static) {
    let mut sources = sources().lock();
    sources.retain(|(n, _)| n != name);
    sources.push((name.to_string(), Box::new(f)));
}

/// Arms the recorder: the next panic on any thread (or explicit
/// [`write_postmortem`] call) writes `dir/postmortem-<run_id>/`. Also
/// installs the process-wide panic hook (once), enables ring capture and
/// worker tracking, and resets the once-per-run bundle guard.
pub fn arm(run_id: &str, dir: &Path) {
    install_hook();
    crate::set_ring_enabled(true);
    crate::workers::set_tracking(true);
    WRITTEN.store(false, Ordering::SeqCst);
    *ARMED.lock() = Some(Armed {
        run_id: run_id.to_string(),
        dir: dir.to_path_buf(),
    });
}

/// Disarms the recorder (a run that completed cleanly writes nothing).
/// Ring capture stays on — the host toggles it with the `--diag` flag's
/// lifetime, not per workload.
pub fn disarm() {
    *ARMED.lock() = None;
}

/// Whether the recorder is currently armed.
pub fn armed() -> bool {
    ARMED.lock().is_some()
}

fn install_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            // Freeze first, then let the default hook print: the bundle
            // must capture the worker's state before unwinding starts.
            let payload = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            let worker = std::thread::current()
                .name()
                .unwrap_or("caller")
                .to_string();
            crate::error(|| format!("panic: {payload}"));
            write_postmortem(&format!("panic on {worker}: {payload}"));
            previous(info);
        }));
    });
}

/// Writes the postmortem bundle if the recorder is armed and none has been
/// written for this run yet. Returns the bundle directory when written.
/// Safe to call from the panic hook (allocates and does file I/O, takes no
/// lock that the logging fast path holds).
pub fn write_postmortem(reason: &str) -> Option<PathBuf> {
    let (run_id, dir) = {
        let armed = ARMED.lock();
        let armed = armed.as_ref()?;
        (armed.run_id.clone(), armed.dir.clone())
    };
    if WRITTEN.swap(true, Ordering::SeqCst) {
        return None;
    }
    let bundle = dir.join(format!("postmortem-{run_id}"));
    if std::fs::create_dir_all(&bundle).is_err() {
        return None;
    }
    let write = |name: &str, body: &str| {
        let _ = std::fs::write(bundle.join(name), body);
    };

    let records = crate::snapshot();
    let (event, process, node) = crate::current_context();
    write(
        "MANIFEST.txt",
        &format!(
            "run: {run_id}\nreason: {reason}\ncaptured_t_ns: {}\nrecords: {}\ndropped: {}\n",
            records.last().map_or(0, |r| r.t_ns),
            records.len(),
            crate::dropped()
        ),
    );
    {
        use arp_trace::json::escape;
        let opt = |v: &Option<String>| v.as_ref().map_or("null".to_string(), |s| escape(s));
        write(
            "incident.json",
            &format!(
                "{{\"reason\":{},\"worker\":{},\"event\":{},\"process\":{},\"node\":{}}}\n",
                escape(reason),
                escape(std::thread::current().name().unwrap_or("caller")),
                opt(&event),
                process.map_or("null".to_string(), |p| p.to_string()),
                opt(&node)
            ),
        );
    }
    write("log.jsonl", &crate::export_jsonl(&records));
    write("workers.json", &crate::workers::to_json(8));
    for (name, source) in sources().lock().iter() {
        if let Some(body) = source() {
            write(name, &body);
        }
    }
    eprintln!("postmortem: wrote {}", bundle.display());
    Some(bundle)
}

/// Validates a bundle directory: the required files exist, `log.jsonl`
/// passes [`crate::validate_jsonl`], and the JSON files parse. Returns a
/// one-line summary.
pub fn check_bundle(bundle: &Path) -> Result<String, String> {
    let read = |name: &str| {
        std::fs::read_to_string(bundle.join(name))
            .map_err(|e| format!("{}: {e}", bundle.join(name).display()))
    };
    let manifest = read("MANIFEST.txt")?;
    if !manifest.contains("run: ") || !manifest.contains("reason: ") {
        return Err("MANIFEST.txt: missing run/reason lines".into());
    }
    let incident = read("incident.json")?;
    arp_trace::json::parse(&incident).map_err(|e| format!("incident.json: {e}"))?;
    let records =
        crate::validate_jsonl(&read("log.jsonl")?).map_err(|e| format!("log.jsonl: {e}"))?;
    let workers = read("workers.json")?;
    arp_trace::json::parse(&workers).map_err(|e| format!("workers.json: {e}"))?;
    // Optional sources validate only when present.
    if let Ok(frontier) = read("frontier.json") {
        arp_trace::json::parse(&frontier).map_err(|e| format!("frontier.json: {e}"))?;
    }
    Ok(format!(
        "{}: valid postmortem bundle — {records} log records",
        bundle.display()
    ))
}

/// Renders a bundle as a human-readable incident report: the failing node
/// and event, the failing worker's last records, the slowest in-flight
/// nodes, and per-event frontier progress when the bundle carries it.
pub fn render_report(bundle: &Path) -> Result<String, String> {
    use arp_trace::json::{parse, Value};
    let read = |name: &str| {
        std::fs::read_to_string(bundle.join(name))
            .map_err(|e| format!("{}: {e}", bundle.join(name).display()))
    };
    let manifest = read("MANIFEST.txt")?;
    let incident = parse(&read("incident.json")?).map_err(|e| format!("incident.json: {e}"))?;
    let records = crate::parse_jsonl(&read("log.jsonl")?).map_err(|e| format!("log.jsonl: {e}"))?;
    let workers = parse(&read("workers.json")?).map_err(|e| format!("workers.json: {e}"))?;

    let str_of = |v: &Value, key: &str| v.get(key).and_then(|x| x.as_str()).map(str::to_string);
    let reason = str_of(&incident, "reason").unwrap_or_else(|| "unknown".into());
    let worker = str_of(&incident, "worker").unwrap_or_else(|| "unknown".into());
    let node = str_of(&incident, "node");
    let event = str_of(&incident, "event");

    let mut out = format!("incident report — {}\n\n", bundle.display());
    for line in manifest.lines() {
        out.push_str(&format!("  {line}\n"));
    }
    out.push_str(&format!("\nreason: {reason}\n"));
    match (&node, &event) {
        (Some(node), Some(event)) => out.push_str(&format!(
            "failing node: {node} (event {event}) on worker {worker}\n"
        )),
        _ => out.push_str(&format!("failing worker: {worker} (no node attribution)\n")),
    }

    const LAST: usize = 10;
    let last: Vec<&crate::Record> = records
        .iter()
        .filter(|r| r.worker == worker)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .take(LAST)
        .rev()
        .collect();
    out.push_str(&format!("\nlast {} record(s) from {worker}:\n", last.len()));
    for r in last {
        let at = r
            .node
            .as_deref()
            .map_or(String::new(), |n| format!(" [{n}]"));
        out.push_str(&format!(
            "  {:>12.6}s {:<5}{} {}\n",
            r.t_ns as f64 / 1e9,
            r.level.as_str(),
            at,
            r.message
        ));
    }

    if let Some(longest) = workers.get("longest_running").and_then(|v| v.as_arr()) {
        if !longest.is_empty() {
            out.push_str("\nslowest in-flight nodes at capture:\n");
            for entry in longest {
                let node = str_of(entry, "node").unwrap_or_default();
                let on = str_of(entry, "worker").unwrap_or_default();
                let busy = entry.get("busy_ns").and_then(|x| x.as_f64()).unwrap_or(0.0);
                out.push_str(&format!("  {node} on {on} ({:.3}s)\n", busy / 1e9));
            }
        }
    }

    if let Ok(text) = read("frontier.json") {
        if let Ok(frontier) = parse(&text) {
            if let Some(events) = frontier.get("events").and_then(|v| v.as_arr()) {
                out.push_str("\nper-event progress at capture:\n");
                for ev in events {
                    let label = str_of(ev, "label").unwrap_or_default();
                    let count = |key: &str| ev.get(key).and_then(|x| x.as_u64()).unwrap_or(0);
                    out.push_str(&format!(
                        "  {label:<12} {} done, {} running, {} pending, {} failed, {} skipped\n",
                        count("completed"),
                        count("running"),
                        count("pending"),
                        count("failed"),
                        count("skipped")
                    ));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_bundle_roundtrips_through_check_and_report() {
        let _guard = crate::TEST_LOCK.lock();
        let dir = std::env::temp_dir().join(format!("arp-diag-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");

        add_source("frontier.json", || {
            Some(
                "{\"events\":[{\"label\":\"ev1\",\"pending\":2,\"running\":1,\
                 \"completed\":14,\"failed\":0,\"skipped\":0}]}\n"
                    .to_string(),
            )
        });
        arm("unit", &dir);
        crate::set_console_level(None);
        crate::set_context(Some("ev1".into()), Some(7), Some("ev1/#7".into()));
        crate::error(|| "kernel exploded".into());
        let bundle = write_postmortem("abort: kernel exploded").expect("bundle written");
        // Second write is suppressed by the once-per-run guard.
        assert!(write_postmortem("again").is_none());
        crate::clear_context();
        disarm();
        crate::set_ring_enabled(false);
        crate::workers::set_tracking(false);
        crate::set_console_level(Some(crate::Level::Warn));

        let summary = check_bundle(&bundle).expect("bundle validates");
        assert!(summary.contains("valid postmortem bundle"), "{summary}");
        let report = render_report(&bundle).expect("report renders");
        assert!(report.contains("ev1/#7"), "{report}");
        assert!(report.contains("event ev1"), "{report}");
        assert!(report.contains("kernel exploded"), "{report}");
        assert!(report.contains("per-event progress"), "{report}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn unarmed_recorder_writes_nothing() {
        let _guard = crate::TEST_LOCK.lock();
        disarm();
        assert!(write_postmortem("nope").is_none());
    }
}
