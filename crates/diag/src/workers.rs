//! Per-worker live state: which DAG node each worker thread is executing
//! right now (and since when), plus its steal count. The `/statusz`
//! endpoint renders this registry live; the flight recorder freezes it
//! into `workers.json` when a postmortem bundle is written.
//!
//! Tracking is off by default — every hook's fast path is one relaxed
//! load — and is switched on by hosts that serve `/statusz` or arm the
//! flight recorder.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static TRACKING: AtomicBool = AtomicBool::new(false);

/// Enables or disables worker-state tracking.
pub fn set_tracking(on: bool) {
    if !on {
        if let Some(reg) = REGISTRY.get() {
            reg.lock().clear();
        }
    }
    TRACKING.store(on, Ordering::SeqCst);
}

/// Whether worker-state tracking is on (one relaxed load).
#[inline]
pub fn tracking() -> bool {
    TRACKING.load(Ordering::Relaxed)
}

struct Running {
    node: String,
    event: String,
    process: u8,
    since: Instant,
}

#[derive(Default)]
struct Entry {
    running: Option<Running>,
    steals: u64,
}

static REGISTRY: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new();

fn registry() -> &'static Mutex<HashMap<String, Entry>> {
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

fn thread_name() -> String {
    std::thread::current()
        .name()
        .unwrap_or("caller")
        .to_string()
}

/// Lane a worker thread belongs to, derived from the pool's thread-name
/// convention (`arp-par-*` compute, `arp-io-*` I/O, anything else is a
/// helping caller).
pub fn lane_of(worker: &str) -> &'static str {
    if worker.starts_with("arp-io-") {
        "io"
    } else if worker.starts_with("arp-par-") {
        "compute"
    } else {
        "caller"
    }
}

/// Marks the current thread as executing `node`. Call at node start.
pub fn node_started(node: &str, event: &str, process: u8) {
    if !tracking() {
        return;
    }
    registry().lock().entry(thread_name()).or_default().running = Some(Running {
        node: node.to_string(),
        event: event.to_string(),
        process,
        since: Instant::now(),
    });
}

/// Clears the current thread's running node. Call at node end (any
/// outcome — the postmortem path leaves the failing node in place on
/// purpose: [`node_started`]'s record survives until the panic hook has
/// snapshotted it, because the panic unwinds past the clear call).
pub fn node_finished() {
    if !tracking() {
        return;
    }
    if let Some(entry) = registry().lock().get_mut(&thread_name()) {
        entry.running = None;
    }
}

/// Credits one successful steal to the current thread.
pub fn note_steal() {
    if !tracking() {
        return;
    }
    registry().lock().entry(thread_name()).or_default().steals += 1;
}

/// One worker's state at snapshot time.
#[derive(Debug, Clone)]
pub struct WorkerSnapshot {
    /// Worker thread name.
    pub worker: String,
    /// Lane derived from the thread name (`compute` / `io` / `caller`).
    pub lane: &'static str,
    /// `(node, event, process, busy_ns)` when the worker is mid-node.
    pub running: Option<(String, String, u8, u64)>,
    /// Tasks this worker has stolen since tracking was enabled.
    pub steals: u64,
}

/// Snapshots every tracked worker, name-sorted.
pub fn snapshot() -> Vec<WorkerSnapshot> {
    let now = Instant::now();
    let mut workers: Vec<WorkerSnapshot> = registry()
        .lock()
        .iter()
        .map(|(name, entry)| WorkerSnapshot {
            worker: name.clone(),
            lane: lane_of(name),
            running: entry.running.as_ref().map(|r| {
                (
                    r.node.clone(),
                    r.event.clone(),
                    r.process,
                    now.saturating_duration_since(r.since).as_nanos() as u64,
                )
            }),
            steals: entry.steals,
        })
        .collect();
    workers.sort_by(|a, b| a.worker.cmp(&b.worker));
    workers
}

/// Renders the registry as JSON: every worker's lane, steal count, and —
/// when mid-node — the node, its event/process, and how long it has been
/// running. The `longest_running` list is the in-flight nodes sorted
/// slowest-first (capped at `top`), the postmortem's "slowest in-flight
/// nodes" view.
pub fn to_json(top: usize) -> String {
    use arp_trace::json::escape;
    let workers = snapshot();
    let mut rows = String::new();
    for (i, w) in workers.iter().enumerate() {
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{\"worker\":{},\"lane\":\"{}\",\"steals\":{}",
            escape(&w.worker),
            w.lane,
            w.steals
        ));
        match &w.running {
            Some((node, event, process, busy_ns)) => rows.push_str(&format!(
                ",\"node\":{},\"event\":{},\"process\":{},\"busy_ns\":{}}}",
                escape(node),
                escape(event),
                process,
                busy_ns
            )),
            None => rows.push_str(",\"node\":null}"),
        }
    }
    let mut in_flight: Vec<&WorkerSnapshot> =
        workers.iter().filter(|w| w.running.is_some()).collect();
    in_flight.sort_by_key(|w| std::cmp::Reverse(w.running.as_ref().map_or(0, |r| r.3)));
    let mut longest = String::new();
    for (i, w) in in_flight.iter().take(top.max(1)).enumerate() {
        let (node, _, _, busy_ns) = w.running.as_ref().expect("filtered to running");
        if i > 0 {
            longest.push_str(",\n");
        }
        longest.push_str(&format!(
            "    {{\"node\":{},\"worker\":{},\"busy_ns\":{}}}",
            escape(node),
            escape(&w.worker),
            busy_ns
        ));
    }
    format!("{{\n  \"workers\": [\n{rows}\n  ],\n  \"longest_running\": [\n{longest}\n  ]\n}}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tracks_running_node_and_steals() {
        let _guard = crate::TEST_LOCK.lock();
        set_tracking(true);
        node_started("ev1/#7", "ev1", 7);
        note_steal();
        note_steal();
        let me = thread_name();
        let snap = snapshot();
        let mine = snap.iter().find(|w| w.worker == me).expect("tracked");
        let (node, event, process, _) = mine.running.clone().expect("running");
        assert_eq!(
            (node.as_str(), event.as_str(), process),
            ("ev1/#7", "ev1", 7)
        );
        assert_eq!(mine.steals, 2);

        let json = to_json(4);
        arp_trace::json::parse(&json).expect("valid json");
        assert!(json.contains("\"node\":\"ev1/#7\""));
        assert!(json.contains("longest_running"));

        node_finished();
        let snap = snapshot();
        let mine = snap.iter().find(|w| w.worker == me).expect("tracked");
        assert!(mine.running.is_none());
        set_tracking(false);
        assert!(snapshot().is_empty());
    }

    #[test]
    fn lanes_follow_thread_name_convention() {
        assert_eq!(lane_of("arp-par-3"), "compute");
        assert_eq!(lane_of("arp-io-0"), "io");
        assert_eq!(lane_of("main"), "caller");
    }
}
