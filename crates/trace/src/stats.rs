//! Worker-timeline statistics: per-lane utilization, queue-wait
//! percentiles, and the flat CSV sink for the bench crate.

use crate::chrome::us;
use crate::{Cat, Trace};
use std::time::Duration;

/// How much of the session one worker lane spent executing spans.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneLoad {
    /// Lane index (the Chrome-trace `tid`).
    pub lane: usize,
    /// Worker thread name (`arp-par-3`, `caller`, …).
    pub name: String,
    /// Spans recorded on this lane.
    pub spans: usize,
    /// Busy time: the union of the lane's span intervals (nested spans are
    /// not double-counted).
    pub busy: Duration,
    /// `busy / wall` — the fraction of the session this lane was executing.
    pub utilization: f64,
}

/// Scheduler-health summary of a drained [`Trace`]: per-lane utilization
/// plus queue-wait percentiles over the DAG-node spans (the units that sit
/// in the pool's channel before a worker picks them up).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Session wall time.
    pub wall: Duration,
    /// One entry per lane that recorded at least one span.
    pub lanes: Vec<LaneLoad>,
    /// Total spans across all lanes.
    pub spans: usize,
    /// Spans lost to ring overflow.
    pub dropped: u64,
    /// Mean queue wait in microseconds.
    pub queue_wait_mean_us: f64,
    /// Median queue wait in microseconds.
    pub queue_wait_p50_us: f64,
    /// 90th-percentile queue wait in microseconds.
    pub queue_wait_p90_us: f64,
    /// 99th-percentile queue wait in microseconds.
    pub queue_wait_p99_us: f64,
    /// Worst queue wait in microseconds.
    pub queue_wait_max_us: f64,
}

impl TraceSummary {
    /// Mean utilization across the active lanes (lanes with no spans are
    /// excluded — an idle lane registered by an earlier workload says
    /// nothing about this one). Zero for an empty trace.
    pub fn mean_utilization(&self) -> f64 {
        if self.lanes.is_empty() {
            return 0.0;
        }
        self.lanes.iter().map(|l| l.utilization).sum::<f64>() / self.lanes.len() as f64
    }

    /// Multi-line human-readable rendering (CLI and bench reports).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} spans on {} lanes over {:.3} ms ({} dropped)\n",
            self.spans,
            self.lanes.len(),
            self.wall.as_secs_f64() * 1e3,
            self.dropped
        ));
        out.push_str(&format!(
            "queue wait (us): mean {:.1}  p50 {:.1}  p90 {:.1}  p99 {:.1}  max {:.1}\n",
            self.queue_wait_mean_us,
            self.queue_wait_p50_us,
            self.queue_wait_p90_us,
            self.queue_wait_p99_us,
            self.queue_wait_max_us
        ));
        out.push_str(&format!(
            "utilization: mean {:.1}%\n",
            self.mean_utilization() * 100.0
        ));
        for lane in &self.lanes {
            out.push_str(&format!(
                "  lane {:>2} {:<12} {:>5} spans  busy {:>10.3} ms  util {:>5.1}%\n",
                lane.lane,
                lane.name,
                lane.spans,
                lane.busy.as_secs_f64() * 1e3,
                lane.utilization * 100.0
            ));
        }
        out
    }
}

/// Busy time of one lane: the measure of the union of its span intervals.
fn lane_busy_ns(trace: &Trace, lane: usize) -> u64 {
    // Spans are sorted by start (enclosers first) within a lane.
    let mut busy = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for span in trace.lane_spans(lane) {
        let (start, end) = (span.start_ns, span.end_ns());
        match cur {
            Some((_, ce)) if start <= ce => {
                cur = Some((cur.unwrap().0, ce.max(end)));
            }
            Some((cs, ce)) => {
                busy += ce - cs;
                cur = Some((start, end));
            }
            None => cur = Some((start, end)),
        }
    }
    if let Some((cs, ce)) = cur {
        busy += ce - cs;
    }
    busy
}

/// Nearest-rank percentile of an ascending-sorted slice. Zero when empty.
fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1] as f64
}

/// Computes the [`TraceSummary`] of a drained trace. Queue-wait statistics
/// are taken over the [`Cat::DagNode`] spans — the work that was dispatched
/// through the pool's channel; chunk and process spans execute in place and
/// carry no queue wait.
pub fn summarize(trace: &Trace) -> TraceSummary {
    let wall_ns = trace.wall.as_nanos() as u64;
    let mut lanes = Vec::new();
    for (lane, name) in trace.lanes.iter().enumerate() {
        let spans = trace.lane_spans(lane).count();
        if spans == 0 {
            continue;
        }
        let busy_ns = lane_busy_ns(trace, lane);
        lanes.push(LaneLoad {
            lane,
            name: name.clone(),
            spans,
            busy: Duration::from_nanos(busy_ns),
            utilization: if wall_ns > 0 {
                busy_ns as f64 / wall_ns as f64
            } else {
                0.0
            },
        });
    }
    let mut waits: Vec<u64> = trace.spans_of(Cat::DagNode).map(|s| s.queue_ns).collect();
    waits.sort_unstable();
    let mean_ns = if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<u64>() as f64 / waits.len() as f64
    };
    TraceSummary {
        wall: trace.wall,
        lanes,
        spans: trace.spans.len(),
        dropped: trace.dropped,
        queue_wait_mean_us: mean_ns / 1e3,
        queue_wait_p50_us: percentile(&waits, 50.0) / 1e3,
        queue_wait_p90_us: percentile(&waits, 90.0) / 1e3,
        queue_wait_p99_us: percentile(&waits, 99.0) / 1e3,
        queue_wait_max_us: waits.last().copied().unwrap_or(0) as f64 / 1e3,
    }
}

/// Quotes a CSV field when it contains a delimiter, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// One row per span, microsecond times:
/// `lane,worker,cat,name,process,event,start_us,dur_us,queue_wait_us,bytes`.
pub fn to_csv(trace: &Trace) -> String {
    let mut out =
        String::from("lane,worker,cat,name,process,event,start_us,dur_us,queue_wait_us,bytes\n");
    for span in &trace.spans {
        let worker = trace.lanes.get(span.lane).map(String::as_str).unwrap_or("");
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            span.lane,
            csv_field(worker),
            span.cat.label(),
            csv_field(&span.name),
            span.process.map(|p| p.to_string()).unwrap_or_default(),
            csv_field(&span.event),
            us(span.start_ns),
            us(span.dur_ns),
            us(span.queue_ns),
            span.bytes
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    fn span(lane: usize, start_ns: u64, dur_ns: u64, queue_ns: u64) -> Span {
        Span {
            name: format!("s{start_ns}"),
            cat: Cat::DagNode,
            process: Some(1),
            event: "ev".into(),
            lane,
            start_ns,
            dur_ns,
            queue_ns,
            bytes: 8,
        }
    }

    #[test]
    fn busy_time_merges_nested_and_disjoint_spans() {
        let trace = Trace {
            // Lane 0: [0,100) enclosing [10,30), plus disjoint [200,250).
            spans: vec![span(0, 0, 100, 0), span(0, 10, 20, 0), span(0, 200, 50, 0)],
            lanes: vec!["w0".into()],
            counters: Vec::new(),
            wall: Duration::from_nanos(300),
            dropped: 0,
        };
        let summary = summarize(&trace);
        assert_eq!(summary.lanes.len(), 1);
        assert_eq!(summary.lanes[0].busy, Duration::from_nanos(150));
        assert!((summary.lanes[0].utilization - 0.5).abs() < 1e-9);
        assert!((summary.mean_utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn idle_lanes_are_excluded() {
        let trace = Trace {
            spans: vec![span(1, 0, 50, 0)],
            lanes: vec!["idle".into(), "busy".into()],
            counters: Vec::new(),
            wall: Duration::from_nanos(100),
            dropped: 0,
        };
        let summary = summarize(&trace);
        assert_eq!(summary.lanes.len(), 1);
        assert_eq!(summary.lanes[0].name, "busy");
    }

    #[test]
    fn queue_wait_percentiles_use_nearest_rank() {
        let spans: Vec<Span> = (1..=100).map(|i| span(0, i * 10, 5, i * 1_000)).collect();
        let trace = Trace {
            spans,
            lanes: vec!["w0".into()],
            counters: Vec::new(),
            wall: Duration::from_micros(2),
            dropped: 0,
        };
        let s = summarize(&trace);
        assert!((s.queue_wait_p50_us - 50.0).abs() < 1e-9);
        assert!((s.queue_wait_p90_us - 90.0).abs() < 1e-9);
        assert!((s.queue_wait_p99_us - 99.0).abs() < 1e-9);
        assert!((s.queue_wait_max_us - 100.0).abs() < 1e-9);
        assert!((s.queue_wait_mean_us - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_summarizes_to_zeroes() {
        let s = summarize(&Trace::default());
        assert_eq!(s.spans, 0);
        assert!(s.lanes.is_empty());
        assert_eq!(s.mean_utilization(), 0.0);
        assert_eq!(s.queue_wait_max_us, 0.0);
        assert!(s.render().contains("0 spans"));
    }

    #[test]
    fn csv_has_header_and_one_row_per_span() {
        let trace = Trace {
            spans: vec![span(0, 0, 1_000, 500)],
            lanes: vec!["arp-par-0".into()],
            counters: Vec::new(),
            wall: Duration::from_micros(1),
            dropped: 0,
        };
        let csv = trace.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "lane,worker,cat,name,process,event,start_us,dur_us,queue_wait_us,bytes"
        );
        assert_eq!(lines[1], "0,arp-par-0,dag-node,s0,1,ev,0.000,1.000,0.500,8");
    }

    #[test]
    fn csv_quotes_fields_with_delimiters() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
