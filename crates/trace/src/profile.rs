//! Critical-path profile: attribution of a recorded DAG execution.
//!
//! A trace says *which worker ran which node when*; this module folds that
//! record — together with the dependency edges the scheduler honored — into
//! an attribution artifact:
//!
//! * **per-kernel self-time**: *exclusive* wall time spent inside each
//!   pipeline process (kernel), summed over every node that ran it. Real
//!   executions nest spans on one worker (a worker blocked on a node's
//!   dependencies helps with other ready nodes), so each instant is
//!   attributed to the innermost active span;
//! * **realized critical path**: the longest dependency chain through the
//!   executed DAG, weighted by the *recorded* (inclusive) durations — a
//!   successor waited for the whole span, nested helping included;
//! * **accounting identity**: Σ per-kernel self-time must equal Σ per-worker
//!   busy time (the interval union of each worker's node spans). The
//!   exclusive fold makes both sides partitions of the same busy intervals,
//!   so any drift means the fold lost or double-counted work;
//! * **folded stacks**: the standard collapsed `frame;frame;frame value`
//!   format consumed by flame-graph renderers;
//! * a **JSON artifact** that round-trips exactly through
//!   [`Profile::to_json`] / [`Profile::parse_json`] and is validated by
//!   [`Profile::validate`] (surfaced as `arp profile --check`).
//!
//! The what-if sensitivity curves ([`WhatIfCurve`]) are *stored* here but
//! *computed* upstream, where the deterministic schedule replay lives: the
//! engine scales one kernel's recorded durations and replays the schedule,
//! so predictions are reproducible bit-for-bit (see `arp-core`'s profile
//! module and `arp-par`'s scaled-replay entry points).

use crate::json::{self, Value};
use std::collections::BTreeMap;

/// One realized DAG-node execution, extracted from a recorded trace.
///
/// `process`/`name`/`kind` identify the kernel (pipeline process) the node
/// ran; `event` is the accelerographic event it belongs to; `lane` is the
/// worker that executed it. Times are nanoseconds on the trace's clock.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Event label (e.g. `Jul-31-2019`).
    pub event: String,
    /// Pipeline process id (1-20).
    pub process: u8,
    /// Kernel (process) display name.
    pub name: String,
    /// Workload class label (e.g. `heavy-flops`, `heavy-io`).
    pub kind: String,
    /// Worker that ran the node (e.g. `arp-par-0`).
    pub lane: String,
    /// Start offset in nanoseconds.
    pub start_ns: u64,
    /// Recorded duration in nanoseconds.
    pub dur_ns: u64,
}

/// Per-kernel attribution row.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRow {
    /// Pipeline process id.
    pub process: u8,
    /// Kernel display name.
    pub name: String,
    /// Workload class label.
    pub kind: String,
    /// Number of executed nodes running this kernel.
    pub nodes: usize,
    /// Exclusive time inside this kernel, ns (nested spans attributed to
    /// the inner node).
    pub self_ns: u64,
    /// Time this kernel contributes to the realized critical path, ns.
    pub cp_ns: u64,
    /// `cp_ns` as a fraction of the whole critical path (0 when empty).
    pub cp_share: f64,
}

/// Per-workload-class attribution row (kernels grouped by kind).
#[derive(Debug, Clone, PartialEq)]
pub struct KindRow {
    /// Workload class label.
    pub kind: String,
    /// Number of executed nodes of this class.
    pub nodes: usize,
    /// Exclusive time in this class, ns.
    pub self_ns: u64,
    /// Time this class contributes to the realized critical path, ns.
    pub cp_ns: u64,
    /// `cp_ns` as a fraction of the whole critical path.
    pub cp_share: f64,
}

/// One step of the realized critical path, in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct CpStep {
    /// Event the node belongs to.
    pub event: String,
    /// Pipeline process id.
    pub process: u8,
    /// Kernel display name.
    pub name: String,
    /// Recorded duration of the step, ns.
    pub dur_ns: u64,
}

/// Busy time of one worker: the interval union of its node spans.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerBusy {
    /// Worker name.
    pub lane: String,
    /// Nodes the worker executed.
    pub nodes: usize,
    /// Union of the worker's span intervals, ns.
    pub busy_ns: u64,
}

/// One aggregated stack frame: all nodes of one kernel within one event.
///
/// This is the folded-stack data; [`Profile::folded`] renders it in the
/// collapsed format and the flame SVG lays it out as
/// `batch → event → kind → kernel`.
#[derive(Debug, Clone, PartialEq)]
pub struct StackRow {
    /// Event label (second frame).
    pub event: String,
    /// Workload class label (third frame).
    pub kind: String,
    /// Pipeline process id.
    pub process: u8,
    /// Kernel display name (leaf frame).
    pub name: String,
    /// Nodes aggregated into this frame.
    pub nodes: usize,
    /// Exclusive time in this frame, ns.
    pub self_ns: u64,
}

/// One point of a what-if sensitivity curve: "this kernel `speedup`×
/// faster" replayed through the deterministic scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfPoint {
    /// Hypothetical kernel speedup factor (durations divided by this).
    pub speedup: f64,
    /// Replayed makespan with the scaled durations, ns.
    pub predicted_ns: u64,
    /// Fraction of the base makespan saved: `1 - predicted/base`.
    pub saving: f64,
    /// Kernel dominating the critical path *after* scaling — the point
    /// where this stops matching the curve's own kernel is where further
    /// speedup stops paying.
    pub bottleneck: String,
}

/// What-if sensitivity curve for one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfCurve {
    /// Pipeline process id of the scaled kernel.
    pub process: u8,
    /// Kernel display name.
    pub name: String,
    /// Curve points in increasing `speedup` order.
    pub points: Vec<WhatIfPoint>,
}

/// The complete profile artifact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    /// Compute workers the run (or replay) was scheduled on.
    pub threads: usize,
    /// I/O-lane workers.
    pub io_threads: usize,
    /// Wall time of the traced run, ns.
    pub wall_ns: u64,
    /// Length of the realized critical path, ns.
    pub cp_ns: u64,
    /// Σ per-kernel self-time, ns (left side of the accounting identity).
    pub self_total_ns: u64,
    /// Σ per-worker busy time, ns (right side of the accounting identity).
    pub worker_busy_ns: u64,
    /// Base makespan of the what-if replay (unscaled durations), ns.
    /// Zero when no what-if curves were computed.
    pub replay_base_ns: u64,
    /// Events present in the trace, sorted.
    pub events: Vec<String>,
    /// Per-kernel rows, heaviest self-time first.
    pub kernels: Vec<KernelRow>,
    /// Per-workload-class rows, heaviest self-time first.
    pub kinds: Vec<KindRow>,
    /// The realized critical path, in execution order.
    pub critical_path: Vec<CpStep>,
    /// Per-worker busy time, sorted by worker name.
    pub workers: Vec<WorkerBusy>,
    /// Folded-stack aggregation (event × kernel).
    pub stacks: Vec<StackRow>,
    /// What-if sensitivity curves (empty unless the engine filled them).
    pub what_if: Vec<WhatIfCurve>,
}

/// Splits every lane's busy time among its spans, attributing each instant
/// to the *innermost* active span — the latest-started one, ties to the
/// higher node index. Real executions nest DAG-node spans on one lane (a
/// worker blocked in `dag_wait` helps with other ready nodes), so a span's
/// recorded duration includes work that belongs to the nodes it ran
/// *inside* it; this sweep is the standard exclusive-time fold that hands
/// each nanosecond to exactly one node. Σ exclusive time over a lane
/// therefore equals the lane's interval union identically — that equality
/// is the accounting identity [`Profile::validate`] enforces.
fn exclusive_times(nodes: &[ProfileNode]) -> Vec<u64> {
    let mut by_lane: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        by_lane.entry(n.lane.as_str()).or_default().push(i);
    }
    let mut exclusive = vec![0u64; nodes.len()];
    for idxs in by_lane.into_values() {
        // Boundary sweep: (time, is_start, idx), starts before ends at
        // equal times (the order is irrelevant for attribution — the
        // segment between equal times is empty — but keeps ties stable).
        let mut edges: Vec<(u64, bool, usize)> = Vec::with_capacity(idxs.len() * 2);
        for &i in &idxs {
            edges.push((nodes[i].start_ns, true, i));
            edges.push((nodes[i].start_ns + nodes[i].dur_ns, false, i));
        }
        edges.sort_unstable();
        let mut active: std::collections::BTreeSet<(u64, usize)> =
            std::collections::BTreeSet::new();
        let mut prev = 0u64;
        for (t, is_start, i) in edges {
            if let Some(&(_, top)) = active.last() {
                exclusive[top] += t - prev;
            }
            if is_start {
                active.insert((nodes[i].start_ns, i));
            } else {
                active.remove(&(nodes[i].start_ns, i));
            }
            prev = t;
        }
    }
    exclusive
}

/// Length of the union of half-open intervals, ns.
fn interval_union(mut spans: Vec<(u64, u64)>) -> u64 {
    spans.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in spans {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
                let _ = cs;
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

impl Profile {
    /// Folds executed nodes and their dependency edges into a profile.
    ///
    /// `preds[i]` lists the indices of `nodes` that had to finish before
    /// node `i` started — the realized DAG. Errors on a dangling or
    /// self-referential predecessor and on cycles; an empty node set
    /// produces an empty (but valid) profile.
    pub fn build(
        nodes: &[ProfileNode],
        preds: &[Vec<usize>],
        threads: usize,
        io_threads: usize,
        wall_ns: u64,
    ) -> Result<Profile, String> {
        let n = nodes.len();
        if preds.len() != n {
            return Err(format!(
                "profile: {} nodes but {} predecessor lists",
                n,
                preds.len()
            ));
        }
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                if p >= n || p == i {
                    return Err(format!("profile: bad predecessor {p} of node {i}"));
                }
                succs[p].push(i);
            }
        }

        // Topological order (Kahn); a cycle would mean corrupt edges.
        let mut remaining: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut topo: Vec<usize> = (0..n).filter(|&i| remaining[i] == 0).collect();
        let mut head = 0;
        while head < topo.len() {
            let i = topo[head];
            head += 1;
            for &s in &succs[i] {
                remaining[s] -= 1;
                if remaining[s] == 0 {
                    topo.push(s);
                }
            }
        }
        if topo.len() != n {
            return Err("profile: dependency graph contains a cycle".into());
        }

        // Realized critical path: longest chain by recorded duration.
        // Deterministic tie-break (larger length, then lower index) so the
        // same trace always folds to the same path.
        let mut best = vec![0u64; n];
        let mut via: Vec<Option<usize>> = vec![None; n];
        for &i in &topo {
            let up = preds[i]
                .iter()
                .map(|&p| (best[p], std::cmp::Reverse(p)))
                .max();
            if let Some((len, std::cmp::Reverse(p))) = up {
                best[i] = len + nodes[i].dur_ns;
                via[i] = Some(p);
            } else {
                best[i] = nodes[i].dur_ns;
            }
        }
        let mut path = Vec::new();
        let mut cp_ns = 0;
        if let Some((i, _)) = (0..n)
            .map(|i| (i, (best[i], std::cmp::Reverse(i))))
            .max_by_key(|&(_, key)| key)
        {
            cp_ns = best[i];
            let mut cur = Some(i);
            while let Some(c) = cur {
                path.push(c);
                cur = via[c];
            }
            path.reverse();
        }
        let on_path = {
            let mut v = vec![false; n];
            for &i in &path {
                v[i] = true;
            }
            v
        };

        // Per-kernel and per-kind aggregation. Self-time is *exclusive*
        // (nested-span time goes to the inner node); critical-path weights
        // stay *inclusive* — a successor waited for the span to end, nested
        // helping included.
        let exclusive = exclusive_times(nodes);
        let mut by_kernel: BTreeMap<u8, KernelRow> = BTreeMap::new();
        let mut by_kind: BTreeMap<String, KindRow> = BTreeMap::new();
        let mut by_stack: BTreeMap<(String, u8), StackRow> = BTreeMap::new();
        let mut by_lane: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
        for (i, node) in nodes.iter().enumerate() {
            let k = by_kernel.entry(node.process).or_insert_with(|| KernelRow {
                process: node.process,
                name: node.name.clone(),
                kind: node.kind.clone(),
                nodes: 0,
                self_ns: 0,
                cp_ns: 0,
                cp_share: 0.0,
            });
            k.nodes += 1;
            k.self_ns += exclusive[i];
            if on_path[i] {
                k.cp_ns += node.dur_ns;
            }
            let kd = by_kind.entry(node.kind.clone()).or_insert_with(|| KindRow {
                kind: node.kind.clone(),
                nodes: 0,
                self_ns: 0,
                cp_ns: 0,
                cp_share: 0.0,
            });
            kd.nodes += 1;
            kd.self_ns += exclusive[i];
            if on_path[i] {
                kd.cp_ns += node.dur_ns;
            }
            let st = by_stack
                .entry((node.event.clone(), node.process))
                .or_insert_with(|| StackRow {
                    event: node.event.clone(),
                    kind: node.kind.clone(),
                    process: node.process,
                    name: node.name.clone(),
                    nodes: 0,
                    self_ns: 0,
                });
            st.nodes += 1;
            st.self_ns += exclusive[i];
            by_lane
                .entry(node.lane.clone())
                .or_default()
                .push((node.start_ns, node.start_ns + node.dur_ns));
        }
        let share = |part: u64| {
            if cp_ns == 0 {
                0.0
            } else {
                part as f64 / cp_ns as f64
            }
        };
        let mut kernels: Vec<KernelRow> = by_kernel
            .into_values()
            .map(|mut k| {
                k.cp_share = share(k.cp_ns);
                k
            })
            .collect();
        kernels.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.process.cmp(&b.process)));
        let mut kinds: Vec<KindRow> = by_kind
            .into_values()
            .map(|mut k| {
                k.cp_share = share(k.cp_ns);
                k
            })
            .collect();
        kinds.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.kind.cmp(&b.kind)));
        let workers: Vec<WorkerBusy> = by_lane
            .into_iter()
            .map(|(lane, spans)| WorkerBusy {
                lane,
                nodes: spans.len(),
                busy_ns: interval_union(spans),
            })
            .collect();

        let mut events: Vec<String> = nodes.iter().map(|s| s.event.clone()).collect();
        events.sort();
        events.dedup();

        let self_total_ns = exclusive.iter().sum();
        let worker_busy_ns = workers.iter().map(|w| w.busy_ns).sum();
        Ok(Profile {
            threads,
            io_threads,
            wall_ns,
            cp_ns,
            self_total_ns,
            worker_busy_ns,
            replay_base_ns: 0,
            events,
            kernels,
            kinds,
            critical_path: path
                .iter()
                .map(|&i| CpStep {
                    event: nodes[i].event.clone(),
                    process: nodes[i].process,
                    name: nodes[i].name.clone(),
                    dur_ns: nodes[i].dur_ns,
                })
                .collect(),
            workers,
            stacks: by_stack.into_values().collect(),
            what_if: Vec::new(),
        })
    }

    /// Relative gap of the accounting identity:
    /// `|Σ self − Σ busy| / Σ busy` (0 for an empty profile).
    pub fn accounting_error(&self) -> f64 {
        if self.worker_busy_ns == 0 {
            return if self.self_total_ns == 0 {
                0.0
            } else {
                f64::MAX
            };
        }
        (self.self_total_ns as f64 - self.worker_busy_ns as f64).abs() / self.worker_busy_ns as f64
    }

    /// Folded-stack output in the standard collapsed format, one line per
    /// aggregated frame: `batch;<event>;<kind>;#<p> <name> <µs>`. Values
    /// are microseconds, rounded up so a nonzero frame never collapses to
    /// an invisible zero count.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for s in &self.stacks {
            out.push_str(&format!(
                "batch;{};{};#{:02} {} {}\n",
                s.event,
                s.kind,
                s.process,
                s.name,
                s.self_ns.div_ceil(1_000)
            ));
        }
        out
    }

    /// Structural + arithmetic validation of the artifact (the engine
    /// behind `arp profile --check`). `tolerance` bounds the accounting
    /// identity's relative gap; every aggregate must re-add exactly.
    pub fn validate(&self, tolerance: f64) -> Result<(), String> {
        let sum = |label: &str, got: u64, want: u64| {
            if got == want {
                Ok(())
            } else {
                Err(format!(
                    "profile: {label} adds to {got} ns, header says {want} ns"
                ))
            }
        };
        sum(
            "kernel self-time",
            self.kernels.iter().map(|k| k.self_ns).sum(),
            self.self_total_ns,
        )?;
        sum(
            "kind self-time",
            self.kinds.iter().map(|k| k.self_ns).sum(),
            self.self_total_ns,
        )?;
        sum(
            "stack self-time",
            self.stacks.iter().map(|s| s.self_ns).sum(),
            self.self_total_ns,
        )?;
        sum(
            "worker busy time",
            self.workers.iter().map(|w| w.busy_ns).sum(),
            self.worker_busy_ns,
        )?;
        sum(
            "critical-path steps",
            self.critical_path.iter().map(|s| s.dur_ns).sum(),
            self.cp_ns,
        )?;
        sum(
            "per-kernel critical-path time",
            self.kernels.iter().map(|k| k.cp_ns).sum(),
            self.cp_ns,
        )?;
        for k in &self.kernels {
            let want = if self.cp_ns == 0 {
                0.0
            } else {
                k.cp_ns as f64 / self.cp_ns as f64
            };
            if (k.cp_share - want).abs() > 1e-9 {
                return Err(format!(
                    "profile: kernel #{} cp_share {} inconsistent with cp_ns (want {want})",
                    k.process, k.cp_share
                ));
            }
        }
        // Self-time is exclusive while critical-path weights are inclusive
        // (nested helping), so per-kernel cp_ns may legitimately exceed
        // self_ns; no ordering between them is checked.
        let err = self.accounting_error();
        if err > tolerance {
            return Err(format!(
                "profile: accounting identity broken: Σ self-time {} ns vs Σ worker busy {} ns \
                 (relative gap {:.4} > tolerance {:.4})",
                self.self_total_ns, self.worker_busy_ns, err, tolerance
            ));
        }
        for c in &self.what_if {
            let mut last = 0.0;
            for p in &c.points {
                if p.speedup <= 0.0 || p.speedup < last {
                    return Err(format!(
                        "profile: what-if curve #{} speedups must be positive and increasing",
                        c.process
                    ));
                }
                last = p.speedup;
                if self.replay_base_ns > 0 {
                    let want = 1.0 - p.predicted_ns as f64 / self.replay_base_ns as f64;
                    if (p.saving - want).abs() > 1e-9 {
                        return Err(format!(
                            "profile: what-if curve #{} saving {} inconsistent with \
                             predicted/base (want {want})",
                            c.process, p.saving
                        ));
                    }
                }
            }
        }
        if !self.what_if.is_empty() && self.replay_base_ns == 0 {
            return Err("profile: what-if curves present but replay_base_ns is zero".into());
        }
        Ok(())
    }

    /// Serializes the profile as a JSON document that
    /// [`Profile::parse_json`] reads back exactly.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"io_threads\": {},\n", self.io_threads));
        out.push_str(&format!("  \"wall_ns\": {},\n", self.wall_ns));
        out.push_str(&format!("  \"cp_ns\": {},\n", self.cp_ns));
        out.push_str(&format!("  \"self_total_ns\": {},\n", self.self_total_ns));
        out.push_str(&format!("  \"worker_busy_ns\": {},\n", self.worker_busy_ns));
        out.push_str(&format!("  \"replay_base_ns\": {},\n", self.replay_base_ns));
        let events: Vec<String> = self.events.iter().map(|e| json::escape(e)).collect();
        out.push_str(&format!("  \"events\": [{}],\n", events.join(", ")));
        let kernels: Vec<String> = self
            .kernels
            .iter()
            .map(|k| {
                format!(
                    "    {{\"process\": {}, \"name\": {}, \"kind\": {}, \"nodes\": {}, \
                     \"self_ns\": {}, \"cp_ns\": {}, \"cp_share\": {}}}",
                    k.process,
                    json::escape(&k.name),
                    json::escape(&k.kind),
                    k.nodes,
                    k.self_ns,
                    k.cp_ns,
                    k.cp_share
                )
            })
            .collect();
        out.push_str(&format!(
            "  \"kernels\": [\n{}\n  ],\n",
            kernels.join(",\n")
        ));
        let kinds: Vec<String> = self
            .kinds
            .iter()
            .map(|k| {
                format!(
                    "    {{\"kind\": {}, \"nodes\": {}, \"self_ns\": {}, \"cp_ns\": {}, \
                     \"cp_share\": {}}}",
                    json::escape(&k.kind),
                    k.nodes,
                    k.self_ns,
                    k.cp_ns,
                    k.cp_share
                )
            })
            .collect();
        out.push_str(&format!("  \"kinds\": [\n{}\n  ],\n", kinds.join(",\n")));
        let path: Vec<String> = self
            .critical_path
            .iter()
            .map(|s| {
                format!(
                    "    {{\"event\": {}, \"process\": {}, \"name\": {}, \"dur_ns\": {}}}",
                    json::escape(&s.event),
                    s.process,
                    json::escape(&s.name),
                    s.dur_ns
                )
            })
            .collect();
        out.push_str(&format!(
            "  \"critical_path\": [\n{}\n  ],\n",
            path.join(",\n")
        ));
        let workers: Vec<String> = self
            .workers
            .iter()
            .map(|w| {
                format!(
                    "    {{\"lane\": {}, \"nodes\": {}, \"busy_ns\": {}}}",
                    json::escape(&w.lane),
                    w.nodes,
                    w.busy_ns
                )
            })
            .collect();
        out.push_str(&format!(
            "  \"workers\": [\n{}\n  ],\n",
            workers.join(",\n")
        ));
        let stacks: Vec<String> = self
            .stacks
            .iter()
            .map(|s| {
                format!(
                    "    {{\"event\": {}, \"kind\": {}, \"process\": {}, \"name\": {}, \
                     \"nodes\": {}, \"self_ns\": {}}}",
                    json::escape(&s.event),
                    json::escape(&s.kind),
                    s.process,
                    json::escape(&s.name),
                    s.nodes,
                    s.self_ns
                )
            })
            .collect();
        out.push_str(&format!("  \"stacks\": [\n{}\n  ],\n", stacks.join(",\n")));
        let curves: Vec<String> = self
            .what_if
            .iter()
            .map(|c| {
                let points: Vec<String> = c
                    .points
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"speedup\": {}, \"predicted_ns\": {}, \"saving\": {}, \
                             \"bottleneck\": {}}}",
                            p.speedup,
                            p.predicted_ns,
                            p.saving,
                            json::escape(&p.bottleneck)
                        )
                    })
                    .collect();
                format!(
                    "    {{\"process\": {}, \"name\": {}, \"points\": [{}]}}",
                    c.process,
                    json::escape(&c.name),
                    points.join(", ")
                )
            })
            .collect();
        out.push_str(&format!("  \"what_if\": [\n{}\n  ]\n", curves.join(",\n")));
        out.push_str("}\n");
        out
    }

    /// Parses a profile JSON document produced by [`Profile::to_json`].
    pub fn parse_json(text: &str) -> Result<Profile, String> {
        let doc = json::parse(text)?;
        if !doc.is_obj() {
            return Err("profile: document is not an object".into());
        }
        let num = |v: &Value, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("profile: missing integer field {key:?}"))
        };
        let float = |v: &Value, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("profile: missing numeric field {key:?}"))
        };
        let text_of = |v: &Value, key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("profile: missing string field {key:?}"))
        };
        fn arr_of<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
            v.get(key)
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("profile: missing array field {key:?}"))
        }
        let process_of = |v: &Value| -> Result<u8, String> {
            let p = num(v, "process")?;
            u8::try_from(p).map_err(|_| format!("profile: process id {p} out of range"))
        };
        let mut profile = Profile {
            threads: num(&doc, "threads")? as usize,
            io_threads: num(&doc, "io_threads")? as usize,
            wall_ns: num(&doc, "wall_ns")?,
            cp_ns: num(&doc, "cp_ns")?,
            self_total_ns: num(&doc, "self_total_ns")?,
            worker_busy_ns: num(&doc, "worker_busy_ns")?,
            replay_base_ns: num(&doc, "replay_base_ns")?,
            ..Profile::default()
        };
        for e in arr_of(&doc, "events")? {
            profile.events.push(
                e.as_str()
                    .ok_or("profile: events must be strings")?
                    .to_owned(),
            );
        }
        for k in arr_of(&doc, "kernels")? {
            profile.kernels.push(KernelRow {
                process: process_of(k)?,
                name: text_of(k, "name")?,
                kind: text_of(k, "kind")?,
                nodes: num(k, "nodes")? as usize,
                self_ns: num(k, "self_ns")?,
                cp_ns: num(k, "cp_ns")?,
                cp_share: float(k, "cp_share")?,
            });
        }
        for k in arr_of(&doc, "kinds")? {
            profile.kinds.push(KindRow {
                kind: text_of(k, "kind")?,
                nodes: num(k, "nodes")? as usize,
                self_ns: num(k, "self_ns")?,
                cp_ns: num(k, "cp_ns")?,
                cp_share: float(k, "cp_share")?,
            });
        }
        for s in arr_of(&doc, "critical_path")? {
            profile.critical_path.push(CpStep {
                event: text_of(s, "event")?,
                process: process_of(s)?,
                name: text_of(s, "name")?,
                dur_ns: num(s, "dur_ns")?,
            });
        }
        for w in arr_of(&doc, "workers")? {
            profile.workers.push(WorkerBusy {
                lane: text_of(w, "lane")?,
                nodes: num(w, "nodes")? as usize,
                busy_ns: num(w, "busy_ns")?,
            });
        }
        for s in arr_of(&doc, "stacks")? {
            profile.stacks.push(StackRow {
                event: text_of(s, "event")?,
                kind: text_of(s, "kind")?,
                process: process_of(s)?,
                name: text_of(s, "name")?,
                nodes: num(s, "nodes")? as usize,
                self_ns: num(s, "self_ns")?,
            });
        }
        for c in arr_of(&doc, "what_if")? {
            let mut curve = WhatIfCurve {
                process: process_of(c)?,
                name: text_of(c, "name")?,
                points: Vec::new(),
            };
            for p in arr_of(c, "points")? {
                curve.points.push(WhatIfPoint {
                    speedup: float(p, "speedup")?,
                    predicted_ns: num(p, "predicted_ns")?,
                    saving: float(p, "saving")?,
                    bottleneck: text_of(p, "bottleneck")?,
                });
            }
            profile.what_if.push(curve);
        }
        Ok(profile)
    }

    /// Human-readable attribution tables (the default `arp profile` view).
    pub fn render(&self) -> String {
        let s = |ns: u64| ns as f64 / 1e9;
        let mut out = String::new();
        out.push_str(&format!(
            "profile: {} event(s), {} node(s), wall {:.3}s, workers {}+{}\n",
            self.events.len(),
            self.kernels.iter().map(|k| k.nodes).sum::<usize>(),
            s(self.wall_ns),
            self.threads,
            self.io_threads,
        ));
        out.push_str(&format!(
            "realized critical path: {:.3}s over {} node(s)\n",
            s(self.cp_ns),
            self.critical_path.len()
        ));
        out.push_str(&format!(
            "accounting: Σ self {:.3}s vs Σ worker busy {:.3}s (gap {:.2}%)\n\n",
            s(self.self_total_ns),
            s(self.worker_busy_ns),
            self.accounting_error() * 100.0
        ));
        out.push_str(&format!(
            "{:<44} {:>12} {:>6} {:>10} {:>9}\n",
            "kernel", "kind", "nodes", "self_s", "cp_share"
        ));
        for k in &self.kernels {
            out.push_str(&format!(
                "{:<44} {:>12} {:>6} {:>10.4} {:>8.1}%\n",
                format!("#{:02} {}", k.process, k.name),
                k.kind,
                k.nodes,
                s(k.self_ns),
                k.cp_share * 100.0
            ));
        }
        out.push('\n');
        out.push_str(&format!(
            "{:<16} {:>6} {:>10} {:>9}\n",
            "class", "nodes", "self_s", "cp_share"
        ));
        for k in &self.kinds {
            out.push_str(&format!(
                "{:<16} {:>6} {:>10.4} {:>8.1}%\n",
                k.kind,
                k.nodes,
                s(k.self_ns),
                k.cp_share * 100.0
            ));
        }
        if !self.what_if.is_empty() {
            out.push_str(&format!(
                "\nwhat-if (deterministic replay on {}+{} workers, base {:.3}s):\n",
                self.threads,
                self.io_threads,
                s(self.replay_base_ns)
            ));
            for c in &self.what_if {
                out.push_str(&format!("  #{:02} {}:", c.process, c.name));
                for p in &c.points {
                    out.push_str(&format!(
                        "  {}x → {:.3}s ({:+.1}%)",
                        p.speedup,
                        s(p.predicted_ns),
                        -p.saving * 100.0
                    ));
                }
                if let Some(last) = c.points.last() {
                    out.push_str(&format!("  [bottleneck → {}]", last.bottleneck));
                }
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(event: &str, process: u8, lane: &str, start: u64, dur: u64) -> ProfileNode {
        ProfileNode {
            event: event.into(),
            process,
            name: format!("kernel-{process}"),
            kind: if process.is_multiple_of(2) {
                "heavy-flops".into()
            } else {
                "heavy-io".into()
            },
            lane: lane.into(),
            start_ns: start,
            dur_ns: dur,
        }
    }

    fn diamond() -> (Vec<ProfileNode>, Vec<Vec<usize>>) {
        // 0 (2) -> {1 (4), 2 (6)} -> 3 (1): critical path 0-2-3 = 9.
        let nodes = vec![
            node("ev", 1, "w0", 0, 2),
            node("ev", 2, "w0", 2, 4),
            node("ev", 3, "w1", 2, 6),
            node("ev", 4, "w0", 8, 1),
        ];
        let preds = vec![vec![], vec![0], vec![0], vec![1, 2]];
        (nodes, preds)
    }

    #[test]
    fn empty_profile_is_valid() {
        let p = Profile::build(&[], &[], 4, 2, 0).unwrap();
        assert_eq!(p.cp_ns, 0);
        assert_eq!(p.self_total_ns, 0);
        p.validate(0.0).unwrap();
        assert!(p.folded().is_empty());
    }

    #[test]
    fn diamond_critical_path_and_self_time() {
        let (nodes, preds) = diamond();
        let p = Profile::build(&nodes, &preds, 2, 0, 9).unwrap();
        assert_eq!(p.cp_ns, 9);
        assert_eq!(p.self_total_ns, 13);
        let path: Vec<u8> = p.critical_path.iter().map(|s| s.process).collect();
        assert_eq!(path, vec![1, 3, 4]);
        // Worker busy: w0 runs [0,2)∪[2,6)∪[8,9) = 7; w1 runs [2,8) = 6.
        assert_eq!(p.worker_busy_ns, 13);
        p.validate(0.0).unwrap();
        // Kernel 3 contributes its full 6 ns to the path.
        let k3 = p.kernels.iter().find(|k| k.process == 3).unwrap();
        assert_eq!(k3.cp_ns, 6);
        assert!((k3.cp_share - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn overlapping_spans_fold_to_exclusive_time() {
        // Two nodes overlapping on one worker: each instant goes to the
        // latest-started active span, so the identity stays exact even
        // though the inclusive durations sum past the union.
        let nodes = vec![node("ev", 1, "w0", 0, 10), node("ev", 2, "w0", 5, 10)];
        let preds = vec![vec![], vec![]];
        let p = Profile::build(&nodes, &preds, 1, 0, 15).unwrap();
        assert_eq!(p.self_total_ns, 15);
        assert_eq!(p.worker_busy_ns, 15);
        p.validate(0.0).unwrap();
        // Node 2 started later: it owns [5, 15); node 1 keeps [0, 5).
        let k1 = p.kernels.iter().find(|k| k.process == 1).unwrap();
        let k2 = p.kernels.iter().find(|k| k.process == 2).unwrap();
        assert_eq!((k1.self_ns, k2.self_ns), (5, 10));
    }

    #[test]
    fn nested_spans_attribute_to_the_inner_node() {
        // A worker blocked inside node 1 helped with node 2 (span fully
        // nested): the inner node owns its window, the outer keeps the
        // rest, and the critical path still uses inclusive durations.
        let nodes = vec![node("ev", 1, "w0", 0, 10), node("ev", 2, "w0", 2, 6)];
        let preds = vec![vec![], vec![]];
        let p = Profile::build(&nodes, &preds, 1, 0, 10).unwrap();
        let k1 = p.kernels.iter().find(|k| k.process == 1).unwrap();
        let k2 = p.kernels.iter().find(|k| k.process == 2).unwrap();
        assert_eq!((k1.self_ns, k2.self_ns), (4, 6));
        assert_eq!(p.self_total_ns, 10);
        assert_eq!(p.worker_busy_ns, 10);
        p.validate(0.0).unwrap();
        assert_eq!(p.cp_ns, 10);
    }

    #[test]
    fn cycles_and_bad_edges_are_errors() {
        let (nodes, _) = diamond();
        assert!(Profile::build(&nodes, &vec![vec![]; 3], 1, 0, 0).is_err());
        assert!(Profile::build(&nodes, &[vec![9], vec![], vec![], vec![]], 1, 0, 0).is_err());
        assert!(Profile::build(&nodes, &[vec![0], vec![], vec![], vec![]], 1, 0, 0).is_err());
        let cyclic = vec![vec![3], vec![0], vec![1], vec![2]];
        assert!(Profile::build(&nodes, &cyclic, 1, 0, 0).is_err());
    }

    #[test]
    fn json_round_trips_exactly() {
        let (nodes, preds) = diamond();
        let mut p = Profile::build(&nodes, &preds, 2, 1, 9).unwrap();
        p.replay_base_ns = 9;
        p.what_if = vec![WhatIfCurve {
            process: 3,
            name: "kernel-3".into(),
            points: vec![WhatIfPoint {
                speedup: 2.0,
                predicted_ns: 7,
                saving: 1.0 - 7.0 / 9.0,
                bottleneck: "kernel-2".into(),
            }],
        }];
        let text = p.to_json();
        let back = Profile::parse_json(&text).unwrap();
        assert_eq!(p, back);
        back.validate(0.0).unwrap();
    }

    #[test]
    fn folded_output_has_one_line_per_stack() {
        let (nodes, preds) = diamond();
        let p = Profile::build(&nodes, &preds, 2, 0, 9).unwrap();
        let folded = p.folded();
        assert_eq!(folded.lines().count(), p.stacks.len());
        for line in folded.lines() {
            let (stack, value) = line.rsplit_once(' ').unwrap();
            assert_eq!(stack.split(';').count(), 4, "{line}");
            assert!(value.parse::<u64>().unwrap() > 0, "{line}");
        }
    }

    #[test]
    fn render_mentions_top_kernel() {
        let (nodes, preds) = diamond();
        let p = Profile::build(&nodes, &preds, 2, 0, 9).unwrap();
        let text = p.render();
        assert!(text.contains("kernel-3"));
        assert!(text.contains("realized critical path"));
    }

    #[test]
    fn parse_reports_missing_fields() {
        let err = Profile::parse_json("{\"threads\": 1}").unwrap_err();
        assert!(err.contains("io_threads"), "{err}");
        assert!(Profile::parse_json("[1,2]").is_err());
    }
}
