//! # arp-trace — structured tracing for the parallel pipeline
//!
//! The scheduler in `arp-par` tells us *that* a DAG completed and how many
//! nodes it dispatched; this crate records *which worker ran which node
//! when*. Every unit of scheduled work — a DAG node, a `parallel_for`
//! chunk, a pipeline process — becomes a [`Span`] carrying its process id,
//! event label, worker lane, queue-wait vs execute time, and bytes
//! processed.
//!
//! ## Architecture: thread-local rings, drained at quiesce
//!
//! Recording must not perturb the schedule it observes, so the hot path is
//! lock-cheap by construction:
//!
//! * when tracing is **disabled** (the default), [`begin`] and [`annotate`]
//!   are a single relaxed atomic load — no allocation, no lock;
//! * when **enabled**, each thread records into its own fixed-capacity
//!   [ring buffer](RING_CAPACITY) behind a mutex only that thread touches
//!   while the session runs (uncontended lock, no cross-thread traffic);
//! * the rings are drained once, by [`TraceSession::finish`], after the
//!   pool has quiesced (every `run_dag`/`parallel_for` construct blocks its
//!   caller until completion, so "the run returned" implies "the workers
//!   are idle").
//!
//! A full ring overwrites its oldest spans and counts them in
//! [`Trace::dropped`] — tracing degrades by forgetting history, never by
//! blocking the scheduler.
//!
//! ## Usage
//!
//! The pool and executors call [`begin`]/[`begin_queued`] around each unit
//! of work and [`annotate`] from inside the work body to attach pipeline
//! attribution (process id, event, bytes). A profiling run brackets the
//! workload in a session:
//!
//! ```
//! let session = arp_trace::TraceSession::start();
//! {
//!     let _span = arp_trace::begin(arp_trace::Cat::Process);
//!     arp_trace::annotate(|a| {
//!         a.name = "ev-a/#4".into();
//!         a.process = Some(4);
//!         a.event = "ev-a".into();
//!         a.bytes = 56_832;
//!     });
//!     // ... the work ...
//! }
//! let trace = session.finish();
//! assert_eq!(trace.spans.len(), 1);
//! assert_eq!(trace.spans[0].process, Some(4));
//! let json = trace.to_chrome_json(); // loadable in Perfetto
//! assert!(json.contains("traceEvents"));
//! ```
//!
//! Sessions are process-global and serialize against each other (a second
//! [`TraceSession::start`] blocks until the first finishes); spans recorded
//! while no session is active are discarded at the next session start.

#![warn(missing_docs)]

pub mod chrome;
pub mod json;
pub mod profile;
pub mod stats;

pub use chrome::{from_chrome_json, to_chrome_json, validate_chrome_json, ChromeCheck};
pub use profile::{Profile, ProfileNode, WhatIfCurve, WhatIfPoint};
pub use stats::{LaneLoad, TraceSummary};

use parking_lot::{Mutex, MutexGuard};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// What kind of scheduled work a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cat {
    /// One node of a `run_dag`/`run_dag_prioritized` graph (a pipeline
    /// process of one event, in the DAG and batch super-DAG executors).
    DagNode,
    /// One claimed chunk of a `parallel_for` loop.
    Chunk,
    /// One pipeline process executed outside the DAG scheduler (the
    /// sequential and staged executors, and simulated-timing runs).
    Process,
}

impl Cat {
    /// Stable string form (Chrome-trace `cat` field, CSV column).
    pub fn label(self) -> &'static str {
        match self {
            Cat::DagNode => "dag-node",
            Cat::Chunk => "chunk",
            Cat::Process => "process",
        }
    }

    /// Inverse of [`Cat::label`].
    pub fn parse(s: &str) -> Option<Cat> {
        match s {
            "dag-node" => Some(Cat::DagNode),
            "chunk" => Some(Cat::Chunk),
            "process" => Some(Cat::Process),
            _ => None,
        }
    }
}

/// One recorded unit of work, attributed to a worker lane. Times are
/// nanoseconds relative to the session start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Display name (`"ev-a/#7"` for pipeline nodes, `"for[lo..hi)"` for
    /// loop chunks).
    pub name: String,
    /// Work category.
    pub cat: Cat,
    /// Pipeline process id, when the work is (part of) a process.
    pub process: Option<u8>,
    /// Event label the work belongs to (empty when unknown, e.g. bare
    /// loop chunks).
    pub event: String,
    /// Worker lane index (index into [`Trace::lanes`]).
    pub lane: usize,
    /// Start offset from session start, in nanoseconds.
    pub start_ns: u64,
    /// Execution time in nanoseconds.
    pub dur_ns: u64,
    /// Time spent queued before execution began (dispatch → start), in
    /// nanoseconds; zero for work that never sat in the pool channel.
    pub queue_ns: u64,
    /// Bytes of input the work processed (the event's sample count × 8 for
    /// pipeline nodes — a shape proxy, not an I/O meter).
    pub bytes: u64,
}

impl Span {
    /// End offset from session start, in nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// The annotatable fields of the currently open span. Filled by
/// [`annotate`] from inside the work body, which knows the pipeline-level
/// attribution the scheduler cannot.
#[derive(Debug, Default)]
pub struct SpanFields {
    /// Display name.
    pub name: String,
    /// Pipeline process id.
    pub process: Option<u8>,
    /// Event label.
    pub event: String,
    /// Bytes processed.
    pub bytes: u64,
}

struct OpenSpan {
    fields: SpanFields,
    cat: Cat,
    start: Instant,
    queue_ns: u64,
}

/// Counter tracks the pool emits alongside spans. [`validate_chrome_json`]
/// rejects counter events with names outside this list — a misspelled
/// track would otherwise silently render as a separate empty track in
/// Perfetto.
pub const COUNTER_TRACKS: [&str; 6] = [
    "ready-queue-depth",
    "workers-busy",
    "io-lane-depth",
    "io-workers-busy",
    "deque-depth",
    "steals",
];

/// True when `track` is one of the [`COUNTER_TRACKS`] this crate emits.
pub fn known_counter_track(track: &str) -> bool {
    COUNTER_TRACKS.contains(&track)
}

/// One sample of a time-varying quantity (ready-queue depth, busy
/// workers): a Chrome-trace counter (`"C"`) event. Timestamps are
/// nanoseconds relative to the session start, like [`Span`].
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Track name (one of [`COUNTER_TRACKS`]).
    pub track: String,
    /// Sample time, nanoseconds from session start.
    pub ts_ns: u64,
    /// The sampled value.
    pub value: f64,
}

/// Spans each worker lane retains per session; older spans are overwritten
/// (and counted in [`Trace::dropped`]) once the ring is full.
pub const RING_CAPACITY: usize = 1 << 16;

struct Ring {
    spans: Vec<Span>,
    head: usize,
    dropped: u64,
}

impl Ring {
    const fn new() -> Ring {
        Ring {
            spans: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, span: Span) {
        if self.spans.len() < RING_CAPACITY {
            self.spans.push(span);
        } else {
            self.spans[self.head] = span;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }

    fn clear(&mut self) {
        self.spans.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

/// A recorded counter sample before drain: the track is still a static
/// string (no allocation on the hot path) and the timestamp is absolute
/// (process-epoch based; rebased to session start at drain).
struct CounterEntry {
    track: &'static str,
    ts_ns: u64,
    value: f64,
}

struct CounterRing {
    entries: Vec<CounterEntry>,
    head: usize,
    dropped: u64,
}

impl CounterRing {
    const fn new() -> CounterRing {
        CounterRing {
            entries: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, entry: CounterEntry) {
        if self.entries.len() < RING_CAPACITY {
            self.entries.push(entry);
        } else {
            self.entries[self.head] = entry;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.head = 0;
        self.dropped = 0;
    }
}

struct Lane {
    name: String,
    /// Position in the registry (and the lane id spans carry). Reassigned
    /// when [`TraceSession::start`] prunes lanes of exited threads.
    index: AtomicUsize,
    ring: Mutex<Ring>,
    /// Counter samples recorded by this lane's thread (same single-writer
    /// discipline as `ring`).
    counters: Mutex<CounterRing>,
    /// Set by the owning thread's exit (thread-local destructor). Dead
    /// lanes are kept until the next session start — a pool dropped
    /// *before* [`TraceSession::finish`] must still contribute its spans —
    /// and pruned there, so traces never accumulate stale empty lanes.
    dead: AtomicBool,
}

/// The thread-local owner of a lane registration; marks the lane dead when
/// the thread exits.
struct LaneHandle(Arc<Lane>);

impl Drop for LaneHandle {
    fn drop(&mut self) {
        self.0.dead.store(true, Ordering::SeqCst);
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SESSION_LOCK: Mutex<()> = Mutex::new(());

fn registry() -> &'static Mutex<Vec<Arc<Lane>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Lane>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Fixed time origin all spans are stamped against; sessions rebase their
/// spans to the session start at drain time.
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static LANE: RefCell<Option<LaneHandle>> = const { RefCell::new(None) };
    static STACK: RefCell<Vec<OpenSpan>> = const { RefCell::new(Vec::new()) };
}

/// Registers (once) and returns the calling thread's lane. Named after the
/// thread (`arp-par-3` for pool workers); unnamed threads record as
/// `caller`.
fn lane_for_current_thread() -> Arc<Lane> {
    LANE.with(|cell| {
        let mut slot = cell.borrow_mut();
        if let Some(handle) = slot.as_ref() {
            return handle.0.clone();
        }
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| "caller".to_string());
        let mut reg = registry().lock();
        let lane = Arc::new(Lane {
            name,
            index: AtomicUsize::new(reg.len()),
            ring: Mutex::new(Ring::new()),
            counters: Mutex::new(CounterRing::new()),
            dead: AtomicBool::new(false),
        });
        reg.push(lane.clone());
        *slot = Some(LaneHandle(lane.clone()));
        lane
    })
}

/// True while a [`TraceSession`] is collecting. The disabled fast path of
/// every recording call is this single relaxed load.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// `Some(now)` iff tracing is enabled — used by the pool to stamp dispatch
/// time when a job is *enqueued*, so the span can separate queue wait from
/// execute time without paying for a clock read when disabled.
pub fn stamp() -> Option<Instant> {
    enabled().then(Instant::now)
}

/// Records one sample on a counter track (ready-queue depth after a
/// dispatch, busy workers after a job starts). A single relaxed load when
/// tracing is disabled; when enabled, one clock read and a push into the
/// calling thread's counter ring. `track` should be one of
/// [`COUNTER_TRACKS`] — the export validator enforces it.
pub fn counter(track: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    let ts_ns = Instant::now()
        .saturating_duration_since(process_epoch())
        .as_nanos() as u64;
    let lane = lane_for_current_thread();
    lane.counters.lock().push(CounterEntry {
        track,
        ts_ns,
        value,
    });
}

/// Closes its span when dropped. Inert (and free) when tracing was
/// disabled at [`begin`] time.
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard {
    active: bool,
}

/// Opens a span of category `cat` on the calling thread. The span closes —
/// and is committed to the thread's ring — when the returned guard drops.
/// Spans on one thread nest strictly (guards drop in LIFO order).
pub fn begin(cat: Cat) -> SpanGuard {
    begin_queued(cat, None)
}

/// As [`begin`], for work that waited in a queue: `queued_at` is the
/// dispatch stamp (from [`stamp`]), and the elapsed dispatch → start gap is
/// recorded as the span's queue wait.
pub fn begin_queued(cat: Cat, queued_at: Option<Instant>) -> SpanGuard {
    if !enabled() {
        return SpanGuard { active: false };
    }
    let now = Instant::now();
    let queue_ns = queued_at
        .map(|t| now.saturating_duration_since(t).as_nanos() as u64)
        .unwrap_or(0);
    STACK.with(|stack| {
        stack.borrow_mut().push(OpenSpan {
            fields: SpanFields::default(),
            cat,
            start: now,
            queue_ns,
        })
    });
    SpanGuard { active: true }
}

/// Attaches pipeline attribution to the innermost open span on this
/// thread; a no-op when tracing is disabled or no span is open, so callers
/// never pay for building labels outside a session. The closure must not
/// itself call back into tracing functions.
pub fn annotate(f: impl FnOnce(&mut SpanFields)) {
    if !enabled() {
        return;
    }
    STACK.with(|stack| {
        if let Some(top) = stack.borrow_mut().last_mut() {
            f(&mut top.fields);
        }
    });
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let Some(open) = STACK.with(|stack| stack.borrow_mut().pop()) else {
            return;
        };
        let end = Instant::now();
        let start_ns = open
            .start
            .saturating_duration_since(process_epoch())
            .as_nanos() as u64;
        let dur_ns = end.saturating_duration_since(open.start).as_nanos() as u64;
        let lane = lane_for_current_thread();
        let span = Span {
            name: open.fields.name,
            cat: open.cat,
            process: open.fields.process,
            event: open.fields.event,
            lane: lane.index.load(Ordering::SeqCst),
            start_ns,
            dur_ns,
            queue_ns: open.queue_ns,
            bytes: open.fields.bytes,
        };
        lane.ring.lock().push(span);
    }
}

/// A collection window. Starting a session clears every lane's ring and
/// enables recording; [`TraceSession::finish`] disables recording and
/// drains the rings into a [`Trace`]. Only one session runs at a time —
/// concurrent starts block (never interleave), so traces are never mixed.
pub struct TraceSession {
    start: Instant,
    start_ns: u64,
    _lock: MutexGuard<'static, ()>,
}

impl TraceSession {
    /// Begins collecting. Blocks while another session is active. Lanes
    /// whose threads have exited (previous pools) are pruned — they cannot
    /// record anything this session — and surviving lanes are re-indexed
    /// and their rings cleared.
    pub fn start() -> TraceSession {
        let lock = SESSION_LOCK.lock();
        {
            let mut reg = registry().lock();
            reg.retain(|lane| !lane.dead.load(Ordering::SeqCst));
            for (i, lane) in reg.iter().enumerate() {
                lane.index.store(i, Ordering::SeqCst);
                lane.ring.lock().clear();
                lane.counters.lock().clear();
            }
        }
        let start = Instant::now();
        let start_ns = start.saturating_duration_since(process_epoch()).as_nanos() as u64;
        ACTIVE_START_NS.store(start_ns, Ordering::SeqCst);
        ENABLED.store(true, Ordering::SeqCst);
        TraceSession {
            start,
            start_ns,
            _lock: lock,
        }
    }

    /// Stops collecting and drains every lane's ring. Call after the
    /// traced constructs have returned (the pool is quiescent for this
    /// workload — blocking constructs guarantee it), so every span the
    /// workload produced has been committed.
    pub fn finish(self) -> Trace {
        ENABLED.store(false, Ordering::SeqCst);
        let wall = self.start.elapsed();
        let mut spans = Vec::new();
        let mut lanes = Vec::new();
        let mut counters = Vec::new();
        let mut dropped = 0u64;
        for lane in registry().lock().iter() {
            lanes.push(lane.name.clone());
            let ring = lane.ring.lock();
            dropped += ring.dropped;
            spans.extend(ring.spans.iter().cloned());
            let cring = lane.counters.lock();
            dropped += cring.dropped;
            counters.extend(cring.entries.iter().map(|e| CounterSample {
                track: e.track.to_string(),
                ts_ns: e.ts_ns.saturating_sub(self.start_ns),
                value: e.value,
            }));
        }
        for span in &mut spans {
            span.start_ns = span.start_ns.saturating_sub(self.start_ns);
        }
        spans.sort_by_key(|s| (s.lane, s.start_ns, std::cmp::Reverse(s.end_ns())));
        counters.sort_by(|a, b| (a.track.as_str(), a.ts_ns).cmp(&(b.track.as_str(), b.ts_ns)));
        Trace {
            spans,
            lanes,
            counters,
            wall,
            dropped,
        }
    }
}

impl Drop for TraceSession {
    /// A session abandoned without [`TraceSession::finish`] (an error
    /// path, a panic) still disables recording, so tracing can never leak
    /// into subsequent untraced work.
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
    }
}

/// Session start timestamp (ns since process epoch) of the active session,
/// kept so [`snapshot`] can rebase spans the same way `finish` does.
static ACTIVE_START_NS: AtomicU64 = AtomicU64::new(0);

/// Peeks the active session's rings without draining or stopping it:
/// returns the spans and counters committed so far, rebased like
/// [`TraceSession::finish`]. `None` when no session is running. Used by
/// the flight recorder to freeze a trace tail into a postmortem bundle
/// while the (crashed) session is still formally open.
pub fn snapshot() -> Option<Trace> {
    if !enabled() {
        return None;
    }
    let start_ns = ACTIVE_START_NS.load(Ordering::SeqCst);
    let now_ns = Instant::now()
        .saturating_duration_since(process_epoch())
        .as_nanos() as u64;
    let mut spans = Vec::new();
    let mut lanes = Vec::new();
    let mut counters = Vec::new();
    let mut dropped = 0u64;
    for lane in registry().lock().iter() {
        lanes.push(lane.name.clone());
        let ring = lane.ring.lock();
        dropped += ring.dropped;
        spans.extend(ring.spans.iter().cloned());
        let cring = lane.counters.lock();
        dropped += cring.dropped;
        counters.extend(cring.entries.iter().map(|e| CounterSample {
            track: e.track.to_string(),
            ts_ns: e.ts_ns.saturating_sub(start_ns),
            value: e.value,
        }));
    }
    for span in &mut spans {
        span.start_ns = span.start_ns.saturating_sub(start_ns);
    }
    spans.sort_by_key(|s| (s.lane, s.start_ns, std::cmp::Reverse(s.end_ns())));
    counters.sort_by(|a, b| (a.track.as_str(), a.ts_ns).cmp(&(b.track.as_str(), b.ts_ns)));
    Some(Trace {
        spans,
        lanes,
        counters,
        wall: Duration::from_nanos(now_ns.saturating_sub(start_ns)),
        dropped,
    })
}

/// A drained session: every span, the lane names, and the session wall
/// time. The analysis entry points live here; export sinks are
/// [`Trace::to_chrome_json`] (Perfetto), [`Trace::to_csv`], and
/// `arp_core::worker_timeline_svg` (Gantt).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All spans, sorted by lane then start time (enclosing spans first).
    pub spans: Vec<Span>,
    /// Lane index → worker thread name.
    pub lanes: Vec<String>,
    /// Counter-track samples, sorted by track then time (so each track's
    /// timestamps are monotonic — the exported `"C"` events inherit this).
    pub counters: Vec<CounterSample>,
    /// Wall time of the session (start → finish).
    pub wall: Duration,
    /// Records (spans and counter samples) lost to ring overflow across
    /// all lanes.
    pub dropped: u64,
}

impl Trace {
    /// Spans recorded on one lane, in start order.
    pub fn lane_spans(&self, lane: usize) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.lane == lane)
    }

    /// Spans of one category.
    pub fn spans_of(&self, cat: Cat) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.cat == cat)
    }

    /// Samples of one counter track, in time order.
    pub fn counters_of<'t>(&'t self, track: &'t str) -> impl Iterator<Item = &'t CounterSample> {
        self.counters.iter().filter(move |c| c.track == track)
    }

    /// Distinct counter-track names present in this trace.
    pub fn counter_tracks(&self) -> Vec<&str> {
        let mut tracks: Vec<&str> = self.counters.iter().map(|c| c.track.as_str()).collect();
        tracks.dedup(); // counters are sorted by track
        tracks
    }

    /// Highest sampled value on `track`; `None` when the track is absent
    /// (an empty track has no peak — never a default number).
    pub fn counter_peak(&self, track: &str) -> Option<f64> {
        self.counters_of(track)
            .map(|c| c.value)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Well-formedness check: within a lane, two spans must either be
    /// disjoint or properly nested — a thread executes one unit of work at
    /// a time, so partial overlap means the recorder (or a clock) lied.
    /// Returns one message per violation; an empty vector means the trace
    /// is well formed.
    pub fn lane_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for lane in 0..self.lanes.len() {
            // Enclosing spans sort first (start asc, end desc), so a stack
            // of open end-times detects partial overlap.
            let mut ends: Vec<u64> = Vec::new();
            for span in self.lane_spans(lane) {
                while ends.last().is_some_and(|&top| top <= span.start_ns) {
                    ends.pop();
                }
                if let Some(&top) = ends.last() {
                    if span.end_ns() > top {
                        violations.push(format!(
                            "lane {lane} ({}): span {:?} [{}, {}) partially overlaps \
                             an enclosing span ending at {}",
                            self.lanes[lane],
                            span.name,
                            span.start_ns,
                            span.end_ns(),
                            top
                        ));
                    }
                }
                ends.push(span.end_ns());
            }
        }
        violations
    }

    /// Per-lane utilization and queue-wait percentiles.
    pub fn summary(&self) -> TraceSummary {
        stats::summarize(self)
    }

    /// Flat CSV (one row per span) for the bench crate and spreadsheets.
    pub fn to_csv(&self) -> String {
        stats::to_csv(self)
    }

    /// Chrome Trace Event JSON, loadable in Perfetto / `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sessions are globally exclusive, but spans recorded by *other*
    /// tests' threads while our session is open would still land in our
    /// trace. Serializing the whole test file keeps each test's trace its
    /// own.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_recording_is_inert() {
        let _t = TEST_LOCK.lock();
        assert!(!enabled());
        assert!(stamp().is_none());
        {
            let _span = begin(Cat::Chunk);
            annotate(|a| a.name = "ignored".into());
        }
        let session = TraceSession::start();
        let trace = session.finish();
        assert!(trace.spans.is_empty(), "{:?}", trace.spans);
    }

    #[test]
    fn session_records_annotated_spans() {
        let _t = TEST_LOCK.lock();
        let session = TraceSession::start();
        assert!(enabled());
        {
            let _span = begin(Cat::Process);
            annotate(|a| {
                a.name = "ev/#3".into();
                a.process = Some(3);
                a.event = "ev".into();
                a.bytes = 77;
            });
            std::thread::sleep(Duration::from_millis(1));
        }
        let trace = session.finish();
        assert!(!enabled());
        let span = trace
            .spans
            .iter()
            .find(|s| s.name == "ev/#3")
            .expect("span recorded");
        assert_eq!(span.cat, Cat::Process);
        assert_eq!(span.process, Some(3));
        assert_eq!(span.event, "ev");
        assert_eq!(span.bytes, 77);
        assert!(span.dur_ns >= 1_000_000, "dur {}", span.dur_ns);
        assert!(span.lane < trace.lanes.len());
        assert!(trace.wall >= Duration::from_millis(1));
    }

    #[test]
    fn queue_wait_measures_dispatch_to_start() {
        let _t = TEST_LOCK.lock();
        let session = TraceSession::start();
        let queued = stamp();
        assert!(queued.is_some());
        std::thread::sleep(Duration::from_millis(2));
        {
            let _span = begin_queued(Cat::DagNode, queued);
            annotate(|a| a.name = "queued".into());
        }
        let trace = session.finish();
        let span = trace.spans.iter().find(|s| s.name == "queued").unwrap();
        assert!(span.queue_ns >= 2_000_000, "queue {}", span.queue_ns);
    }

    #[test]
    fn nested_spans_are_well_formed() {
        let _t = TEST_LOCK.lock();
        let session = TraceSession::start();
        {
            let _outer = begin(Cat::DagNode);
            annotate(|a| a.name = "outer".into());
            for i in 0..3 {
                let _inner = begin(Cat::Chunk);
                annotate(|a| a.name = format!("inner-{i}"));
            }
        }
        let trace = session.finish();
        assert_eq!(trace.spans.len(), 4);
        assert!(trace.lane_violations().is_empty());
        let outer = trace.spans.iter().find(|s| s.name == "outer").unwrap();
        for inner in trace.spans.iter().filter(|s| s.cat == Cat::Chunk) {
            assert!(outer.start_ns <= inner.start_ns);
            assert!(inner.end_ns() <= outer.end_ns());
            assert_eq!(inner.lane, outer.lane);
        }
    }

    #[test]
    fn lane_violations_flags_partial_overlap() {
        let fake = |start, dur| Span {
            name: "x".into(),
            cat: Cat::Chunk,
            process: None,
            event: String::new(),
            lane: 0,
            start_ns: start,
            dur_ns: dur,
            queue_ns: 0,
            bytes: 0,
        };
        let clean = Trace {
            spans: vec![fake(0, 100), fake(10, 20), fake(50, 50)],
            lanes: vec!["w".into()],
            counters: Vec::new(),
            wall: Duration::from_nanos(100),
            dropped: 0,
        };
        assert!(clean.lane_violations().is_empty());
        let dirty = Trace {
            spans: vec![fake(0, 100), fake(50, 100)],
            lanes: vec!["w".into()],
            counters: Vec::new(),
            wall: Duration::from_nanos(150),
            dropped: 0,
        };
        assert_eq!(dirty.lane_violations().len(), 1);
    }

    #[test]
    fn spans_from_many_threads_get_distinct_lanes() {
        let _t = TEST_LOCK.lock();
        let session = TraceSession::start();
        std::thread::scope(|scope| {
            for k in 0..3 {
                scope.spawn(move || {
                    let _span = begin(Cat::Process);
                    annotate(|a| a.name = format!("t{k}"));
                });
            }
        });
        let trace = session.finish();
        let mut lanes: Vec<usize> = trace
            .spans
            .iter()
            .filter(|s| s.name.starts_with('t'))
            .map(|s| s.lane)
            .collect();
        lanes.sort_unstable();
        lanes.dedup();
        assert_eq!(lanes.len(), 3, "{:?}", trace.spans);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let mut ring = Ring::new();
        for i in 0..(RING_CAPACITY as u64 + 10) {
            ring.push(Span {
                name: String::new(),
                cat: Cat::Chunk,
                process: None,
                event: String::new(),
                lane: 0,
                start_ns: i,
                dur_ns: 1,
                queue_ns: 0,
                bytes: 0,
            });
        }
        assert_eq!(ring.spans.len(), RING_CAPACITY);
        assert_eq!(ring.dropped, 10);
        // The oldest 10 spans were overwritten.
        assert!(ring.spans.iter().all(|s| s.start_ns >= 10));
    }

    #[test]
    fn counter_samples_record_only_inside_a_session() {
        let _t = TEST_LOCK.lock();
        counter("workers-busy", 9.0); // inert: disabled
        let session = TraceSession::start();
        counter("workers-busy", 1.0);
        counter("ready-queue-depth", 2.0);
        counter("ready-queue-depth", 1.0);
        std::thread::scope(|scope| {
            scope.spawn(|| counter("ready-queue-depth", 3.0));
        });
        let trace = session.finish();
        assert_eq!(trace.counters.len(), 4, "{:?}", trace.counters);
        // Sorted by track then time, so per-track timestamps are monotonic.
        assert!(trace
            .counters
            .windows(2)
            .all(|w| (w[0].track.as_str(), w[0].ts_ns) <= (w[1].track.as_str(), w[1].ts_ns)));
        assert_eq!(trace.counter_peak("ready-queue-depth"), Some(3.0));
        assert_eq!(trace.counter_peak("workers-busy"), Some(1.0));
        assert_eq!(trace.counters_of("ready-queue-depth").count(), 3);
        assert_eq!(
            trace.counter_tracks(),
            vec!["ready-queue-depth", "workers-busy"]
        );

        // The next session starts clean of counter samples too.
        let session = TraceSession::start();
        let trace = session.finish();
        assert!(trace.counters.is_empty());
    }

    #[test]
    fn sessions_do_not_leak_spans_between_each_other() {
        let _t = TEST_LOCK.lock();
        let first = TraceSession::start();
        {
            let _span = begin(Cat::Process);
            annotate(|a| a.name = "first".into());
        }
        let trace1 = first.finish();
        assert!(trace1.spans.iter().any(|s| s.name == "first"));

        let second = TraceSession::start();
        let trace2 = second.finish();
        assert!(
            trace2.spans.iter().all(|s| s.name != "first"),
            "second session must start clean"
        );
    }

    #[test]
    fn lanes_of_exited_threads_are_pruned_at_next_session_start() {
        let _t = TEST_LOCK.lock();
        // A worker thread records a span, then exits before finish: its
        // lane (and span) must survive into this session's trace...
        let session = TraceSession::start();
        std::thread::Builder::new()
            .name("ephemeral".into())
            .spawn(|| {
                let _span = begin(Cat::Chunk);
                annotate(|a| a.name = "dying-work".into());
            })
            .unwrap()
            .join()
            .unwrap();
        let trace = session.finish();
        assert!(trace.lanes.iter().any(|l| l == "ephemeral"));
        assert!(trace.spans.iter().any(|s| s.name == "dying-work"));

        // ...but the dead lane must not linger into the *next* session,
        // and the surviving lanes are re-indexed densely.
        let session = TraceSession::start();
        {
            let _span = begin(Cat::Process);
            annotate(|a| a.name = "alive".into());
        }
        let trace = session.finish();
        assert!(
            trace.lanes.iter().all(|l| l != "ephemeral"),
            "stale lane survived pruning: {:?}",
            trace.lanes
        );
        let alive = trace.spans.iter().find(|s| s.name == "alive").unwrap();
        assert!(alive.lane < trace.lanes.len());
    }
}
