//! Chrome Trace Event export, import, and validation.
//!
//! The export target is the [Trace Event Format] consumed by Perfetto and
//! `chrome://tracing`: a JSON object whose `traceEvents` array holds `"M"`
//! metadata events (process/thread names) and `"X"` complete events (one
//! per [`Span`], `ts`/`dur` in microseconds). Timestamps are written with
//! three decimal places so the underlying nanosecond values survive a
//! round-trip exactly; [`from_chrome_json`] is that inverse, and
//! [`validate_chrome_json`] is the structural check CI runs on CLI output.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
use crate::json::{self, escape, Value};
use crate::{known_counter_track, Cat, CounterSample, Span, Trace};
use std::time::Duration;

/// The `pid` all events carry — the trace covers one process.
const PID: u64 = 1;

/// Nanoseconds → microseconds with three decimals (exact; no float).
pub(crate) fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Microseconds (as parsed JSON number) → nanoseconds.
fn us_to_ns(v: f64) -> u64 {
    (v * 1_000.0).round() as u64
}

/// Serializes a trace as Chrome Trace Event JSON. The output loads in
/// Perfetto / `chrome://tracing`: worker lanes appear as named threads and
/// every span is a complete (`"X"`) event whose `args` carry the pipeline
/// attribution (process id, event label, queue wait, bytes).
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut events =
        Vec::with_capacity(trace.spans.len() + trace.counters.len() + trace.lanes.len() + 1);
    events.push(format!(
        r#"{{"name": "process_name", "ph": "M", "pid": {PID}, "args": {{"name": "arp"}}}}"#
    ));
    for (tid, lane) in trace.lanes.iter().enumerate() {
        events.push(format!(
            r#"{{"name": "thread_name", "ph": "M", "pid": {PID}, "tid": {tid}, "args": {{"name": {}}}}}"#,
            escape(lane)
        ));
    }
    for span in &trace.spans {
        let mut args = String::new();
        if let Some(p) = span.process {
            args.push_str(&format!(r#""process": {p}, "#));
        }
        if !span.event.is_empty() {
            args.push_str(&format!(r#""event": {}, "#, escape(&span.event)));
        }
        args.push_str(&format!(
            r#""queue_wait_us": {}, "bytes": {}"#,
            us(span.queue_ns),
            span.bytes
        ));
        events.push(format!(
            r#"{{"name": {}, "cat": {}, "ph": "X", "pid": {PID}, "tid": {}, "ts": {}, "dur": {}, "args": {{{args}}}}}"#,
            escape(&span.name),
            escape(span.cat.label()),
            span.lane,
            us(span.start_ns),
            us(span.dur_ns),
        ));
    }
    // Counter ("C") events: Perfetto renders each distinct (pid, name) as
    // a counter track above the thread lanes. `Trace::counters` is sorted
    // by track then time, so each track's timestamps arrive monotonic.
    for c in &trace.counters {
        events.push(format!(
            r#"{{"name": {}, "ph": "C", "pid": {PID}, "ts": {}, "args": {{"value": {}}}}}"#,
            escape(&c.track),
            us(c.ts_ns),
            c.value,
        ));
    }
    format!(
        "{{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {{\"wall_us\": {}, \"dropped\": {}}},\n\"traceEvents\": [\n{}\n]\n}}\n",
        us(trace.wall.as_nanos() as u64),
        trace.dropped,
        events.join(",\n")
    )
}

/// Reconstructs a [`Trace`] from Chrome Trace Event JSON produced by
/// [`to_chrome_json`]. Lane names come from `thread_name` metadata events,
/// spans from `"X"` events; the result equals the exported trace exactly
/// (the three-decimal microsecond timestamps preserve nanoseconds).
pub fn from_chrome_json(text: &str) -> Result<Trace, String> {
    let doc = json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut lanes: Vec<String> = Vec::new();
    let mut spans = Vec::new();
    let mut counters = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
        let name = ev.get("name").and_then(Value::as_str).unwrap_or("");
        match ph {
            "M" if name == "thread_name" => {
                let tid = ev
                    .get("tid")
                    .and_then(Value::as_u64)
                    .ok_or("thread_name event without tid")? as usize;
                let lane_name = ev
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .ok_or("thread_name event without args.name")?;
                if lanes.len() <= tid {
                    lanes.resize(tid + 1, String::new());
                }
                lanes[tid] = lane_name.to_string();
            }
            "X" => {
                let num = |key: &str| {
                    ev.get(key)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("X event missing numeric {key:?}"))
                };
                let args = ev.get("args");
                let cat = ev
                    .get("cat")
                    .and_then(Value::as_str)
                    .and_then(Cat::parse)
                    .ok_or("X event with unknown cat")?;
                spans.push(Span {
                    name: name.to_string(),
                    cat,
                    process: args
                        .and_then(|a| a.get("process"))
                        .and_then(Value::as_u64)
                        .map(|p| p as u8),
                    event: args
                        .and_then(|a| a.get("event"))
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                    lane: num("tid")? as usize,
                    start_ns: us_to_ns(num("ts")?),
                    dur_ns: us_to_ns(num("dur")?),
                    queue_ns: args
                        .and_then(|a| a.get("queue_wait_us"))
                        .and_then(Value::as_f64)
                        .map(us_to_ns)
                        .unwrap_or(0),
                    bytes: args
                        .and_then(|a| a.get("bytes"))
                        .and_then(Value::as_u64)
                        .unwrap_or(0),
                });
            }
            "C" => {
                let ts = ev
                    .get("ts")
                    .and_then(Value::as_f64)
                    .ok_or("C event missing numeric ts")?;
                let value = ev
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Value::as_f64)
                    .ok_or("C event missing numeric args.value")?;
                counters.push(CounterSample {
                    track: name.to_string(),
                    ts_ns: us_to_ns(ts),
                    value,
                });
            }
            _ => {}
        }
    }
    spans.sort_by_key(|s| (s.lane, s.start_ns, std::cmp::Reverse(s.end_ns())));
    counters.sort_by(|a, b| (a.track.as_str(), a.ts_ns).cmp(&(b.track.as_str(), b.ts_ns)));
    let other = doc.get("otherData");
    Ok(Trace {
        spans,
        lanes,
        counters,
        wall: Duration::from_nanos(
            other
                .and_then(|o| o.get("wall_us"))
                .and_then(Value::as_f64)
                .map(us_to_ns)
                .unwrap_or(0),
        ),
        dropped: other
            .and_then(|o| o.get("dropped"))
            .and_then(Value::as_u64)
            .unwrap_or(0),
    })
}

/// What [`validate_chrome_json`] found in a structurally valid trace file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeCheck {
    /// Total entries in `traceEvents` (metadata + spans + counters).
    pub events: usize,
    /// Complete (`"X"`) events — the actual spans.
    pub complete: usize,
    /// Distinct worker lanes named by `thread_name` metadata.
    pub lanes: usize,
    /// Counter (`"C"`) samples.
    pub counter_events: usize,
    /// Distinct counter tracks.
    pub counter_tracks: usize,
}

/// Structural validation against the Chrome Trace Event schema: the
/// document must be an object with a `traceEvents` array; every event must
/// be an object with a string `ph` and a `pid`; every `"X"` event must
/// carry `name`, `tid`, and non-negative numeric `ts`/`dur`; every `"C"`
/// event must carry a [known track name](crate::COUNTER_TRACKS), a
/// non-negative `ts` that is monotonic within its track, and a finite
/// numeric `args.value`. Returns counts on success and the first violation
/// on failure. This is what the CI smoke job runs on `arp run --trace`
/// output.
pub fn validate_chrome_json(text: &str) -> Result<ChromeCheck, String> {
    let doc = json::parse(text)?;
    if !doc.is_obj() {
        return Err("top level must be a JSON object".into());
    }
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents key")?
        .as_arr()
        .ok_or("traceEvents must be an array")?;
    let mut complete = 0usize;
    let mut lanes = std::collections::BTreeSet::new();
    let mut counter_events = 0usize;
    // Track name → last timestamp seen, for the per-track monotonicity
    // check ("C" events of one track must arrive in time order, or the
    // counter renders as a sawtooth of artifacts).
    let mut counter_last_ts: std::collections::BTreeMap<String, f64> =
        std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        if !ev.is_obj() {
            return Err(format!("traceEvents[{i}] is not an object"));
        }
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] missing string ph"))?;
        ev.get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("traceEvents[{i}] missing pid"))?;
        if ph == "X" {
            ev.get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("traceEvents[{i}] (X) missing name"))?;
            let tid = ev
                .get("tid")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("traceEvents[{i}] (X) missing tid"))?;
            for key in ["ts", "dur"] {
                let v = ev
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("traceEvents[{i}] (X) missing numeric {key}"))?;
                if !v.is_finite() || v < 0.0 {
                    return Err(format!("traceEvents[{i}] (X) has invalid {key} {v}"));
                }
            }
            lanes.insert(tid);
            complete += 1;
        } else if ph == "C" {
            let name = ev
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("traceEvents[{i}] (C) missing name"))?;
            if !known_counter_track(name) {
                return Err(format!(
                    "traceEvents[{i}] (C) has unknown counter track {name:?}"
                ));
            }
            let ts = ev
                .get("ts")
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("traceEvents[{i}] (C) missing numeric ts"))?;
            if !ts.is_finite() || ts < 0.0 {
                return Err(format!("traceEvents[{i}] (C) has invalid ts {ts}"));
            }
            let value = ev
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("traceEvents[{i}] (C) missing numeric args.value"))?;
            if !value.is_finite() {
                return Err(format!("traceEvents[{i}] (C) has non-finite value {value}"));
            }
            if let Some(&last) = counter_last_ts.get(name) {
                if ts < last {
                    return Err(format!(
                        "traceEvents[{i}] (C) track {name:?} timestamp {ts} goes \
                         backwards (previous {last})"
                    ));
                }
            }
            counter_last_ts.insert(name.to_string(), ts);
            counter_events += 1;
        }
    }
    Ok(ChromeCheck {
        events: events.len(),
        complete,
        lanes: lanes.len(),
        counter_events,
        counter_tracks: counter_last_ts.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        let span = |name: &str, cat, process, event: &str, lane, start_ns, dur_ns| Span {
            name: name.into(),
            cat,
            process,
            event: event.into(),
            lane,
            start_ns,
            dur_ns,
            queue_ns: 1_234_567,
            bytes: 56_832,
        };
        Trace {
            spans: vec![
                span("ev-a/#0", Cat::DagNode, Some(0), "ev-a", 0, 0, 2_500_001),
                span("for[0..8)", Cat::Chunk, None, "", 0, 100, 1_000),
                span(
                    "ev-b/#4",
                    Cat::DagNode,
                    Some(4),
                    "ev-b",
                    1,
                    500,
                    999_999_999,
                ),
            ],
            lanes: vec!["caller".into(), "arp-par-0".into()],
            counters: vec![
                CounterSample {
                    track: "ready-queue-depth".into(),
                    ts_ns: 100,
                    value: 1.0,
                },
                CounterSample {
                    track: "ready-queue-depth".into(),
                    ts_ns: 2_500,
                    value: 3.0,
                },
                CounterSample {
                    track: "workers-busy".into(),
                    ts_ns: 900,
                    value: 2.0,
                },
            ],
            wall: Duration::from_nanos(1_000_000_123),
            dropped: 3,
        }
    }

    #[test]
    fn export_round_trips_exactly() {
        let trace = sample_trace();
        let json = to_chrome_json(&trace);
        let back = from_chrome_json(&json).expect("import");
        assert_eq!(back, trace);
    }

    #[test]
    fn export_passes_validation() {
        let trace = sample_trace();
        let check = validate_chrome_json(&to_chrome_json(&trace)).expect("valid");
        assert_eq!(check.complete, 3);
        // process_name + 2 thread_name + 3 spans + 3 counter samples.
        assert_eq!(check.events, 9);
        assert_eq!(check.lanes, 2);
        assert_eq!(check.counter_events, 3);
        assert_eq!(check.counter_tracks, 2);
    }

    #[test]
    fn counter_events_round_trip_and_query() {
        let trace = sample_trace();
        let back = from_chrome_json(&to_chrome_json(&trace)).expect("import");
        assert_eq!(back.counters, trace.counters);
        assert_eq!(
            back.counter_tracks(),
            vec!["ready-queue-depth", "workers-busy"]
        );
        assert_eq!(back.counter_peak("ready-queue-depth"), Some(3.0));
        assert_eq!(back.counter_peak("workers-busy"), Some(2.0));
        assert_eq!(back.counter_peak("absent-track"), None);
    }

    #[test]
    fn validation_rejects_bad_counter_events() {
        // Unknown track name.
        assert!(validate_chrome_json(
            r#"{"traceEvents": [{"name": "mystery", "ph": "C", "pid": 1, "ts": 1, "args": {"value": 2}}]}"#
        )
        .is_err());
        // Missing value.
        assert!(validate_chrome_json(
            r#"{"traceEvents": [{"name": "workers-busy", "ph": "C", "pid": 1, "ts": 1, "args": {}}]}"#
        )
        .is_err());
        // Negative timestamp.
        assert!(validate_chrome_json(
            r#"{"traceEvents": [{"name": "workers-busy", "ph": "C", "pid": 1, "ts": -1, "args": {"value": 2}}]}"#
        )
        .is_err());
        // Non-monotonic within one track...
        let backwards = r#"{"traceEvents": [
            {"name": "workers-busy", "ph": "C", "pid": 1, "ts": 5, "args": {"value": 2}},
            {"name": "workers-busy", "ph": "C", "pid": 1, "ts": 3, "args": {"value": 1}}
        ]}"#;
        let err = validate_chrome_json(backwards).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
        // ...while interleaved tracks may each advance independently.
        let interleaved = r#"{"traceEvents": [
            {"name": "workers-busy", "ph": "C", "pid": 1, "ts": 5, "args": {"value": 2}},
            {"name": "ready-queue-depth", "ph": "C", "pid": 1, "ts": 1, "args": {"value": 4}},
            {"name": "workers-busy", "ph": "C", "pid": 1, "ts": 6, "args": {"value": 1}}
        ]}"#;
        let ok = validate_chrome_json(interleaved).expect("interleaved tracks are fine");
        assert_eq!(ok.counter_events, 3);
        assert_eq!(ok.counter_tracks, 2);
    }

    #[test]
    fn microsecond_format_is_exact() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(2_500_001), "2500.001");
        assert_eq!(us_to_ns(2500.001), 2_500_001);
        assert_eq!(us_to_ns(0.999), 999);
    }

    #[test]
    fn validation_rejects_malformed_traces() {
        assert!(validate_chrome_json("[]").is_err());
        assert!(validate_chrome_json("{}").is_err());
        assert!(validate_chrome_json(r#"{"traceEvents": {}}"#).is_err());
        assert!(validate_chrome_json(r#"{"traceEvents": [{"ph": "X"}]}"#).is_err());
        assert!(validate_chrome_json(
            r#"{"traceEvents": [{"name": "n", "ph": "X", "pid": 1, "tid": 0, "ts": -1, "dur": 2}]}"#
        )
        .is_err());
        let ok = validate_chrome_json(
            r#"{"traceEvents": [{"name": "n", "ph": "X", "pid": 1, "tid": 0, "ts": 0.5, "dur": 2}]}"#,
        )
        .expect("minimal valid trace");
        assert_eq!(ok.complete, 1);
        assert_eq!(ok.lanes, 1);
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let trace = Trace::default();
        let check = validate_chrome_json(&to_chrome_json(&trace)).expect("valid");
        assert_eq!(check.complete, 0);
        let back = from_chrome_json(&to_chrome_json(&trace)).unwrap();
        assert_eq!(back, trace);
    }
}
