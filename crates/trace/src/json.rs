//! A minimal JSON reader for trace import and validation.
//!
//! The workspace vendors only an API-surface stub of `serde` (the build
//! environment has no registry access), so Chrome-trace files are written
//! by hand and read back through this self-contained recursive-descent
//! parser. It accepts strict JSON — objects, arrays, strings with escapes,
//! numbers, booleans, null — which is exactly what the exporter emits and
//! what Perfetto produces.

/// A parsed JSON value. Object keys keep insertion order (sufficient for
/// lookup; the trace formats never rely on key ordering).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as key/value pairs in document order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True if the value is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Value::Obj(_))
    }
}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let code =
                                    0x10000 + (((hi as u32 - 0xD800) << 10) | (lo as u32 - 0xDC00));
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(ch);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // byte boundaries are valid char boundaries).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(&format!("bad number {s:?}")))
    }
}

/// Escapes a string for JSON output (quotes, backslashes, control chars).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, -2.5, true, null, "x\ny"], "b": {"c": 3e2}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(300.0));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2], Value::Bool(true));
        assert_eq!(arr[3], Value::Null);
        assert_eq!(arr[4].as_str(), Some("x\ny"));
    }

    #[test]
    fn parses_unicode_escapes() {
        let v = parse(r#""café 😀""#).unwrap();
        assert_eq!(v.as_str(), Some("café 😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "truex",
            "\"unterminated",
            "1 2",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips() {
        let original = "a \"quoted\"\nline\twith \\slashes\\ and café";
        let v = parse(&escape(original)).unwrap();
        assert_eq!(v.as_str(), Some(original));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
        assert_eq!(Value::Num(42.0).as_u64(), Some(42));
    }
}
