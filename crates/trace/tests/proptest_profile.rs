//! Property tests over the profile artifact: the JSON writer/parser
//! round-trip exactly, and the accounting identity (Σ per-kernel self-time
//! ≡ Σ per-worker busy time) holds by construction on any recorded trace
//! whose workers run one node at a time.

use arp_trace::profile::{Profile, ProfileNode, WhatIfCurve, WhatIfPoint};
use proptest::prelude::*;

/// Builds a realized trace from generator output: each node is appended to
/// its worker's timeline (never overlapping, as real workers behave), and
/// predecessor edges point only at earlier indices (acyclic by
/// construction).
fn realize(items: Vec<(usize, u64, u64, u8, usize)>) -> (Vec<ProfileNode>, Vec<Vec<usize>>) {
    let mut lane_clock = [0u64; 4];
    let mut nodes = Vec::new();
    for (lane, dur, gap, process, ev) in items {
        let start = lane_clock[lane] + gap;
        lane_clock[lane] = start + dur;
        nodes.push(ProfileNode {
            event: format!("ev-{ev}"),
            process,
            name: format!("kernel-{process}"),
            kind: match process % 3 {
                0 => "heavy-io".into(),
                1 => "heavy-flops".into(),
                _ => "light".into(),
            },
            lane: format!("w{lane}"),
            start_ns: start,
            dur_ns: dur,
        });
    }
    let preds = (0..nodes.len())
        .map(|i| (0..i).filter(|j| (i * 7 + j * 13) % 5 == 0).collect())
        .collect();
    (nodes, preds)
}

proptest! {
    /// Non-overlapping per-worker spans make the accounting identity exact:
    /// the interval union degenerates to the per-worker sum, so both sides
    /// count every nanosecond exactly once.
    #[test]
    fn accounting_identity_is_exact_on_recorded_traces(
        items in proptest::collection::vec(
            (0usize..4, 1u64..1_000_000, 0u64..1_000, 1u8..21, 0usize..3),
            0..40,
        )
    ) {
        let (nodes, preds) = realize(items);
        let wall = nodes.iter().map(|n| n.start_ns + n.dur_ns).max().unwrap_or(0);
        let p = Profile::build(&nodes, &preds, 4, 2, wall).unwrap();
        prop_assert_eq!(p.self_total_ns, p.worker_busy_ns);
        prop_assert!(p.accounting_error() == 0.0);
        p.validate(0.0).unwrap();
        // The realized critical path can never exceed the wall clock the
        // workers realized, nor the total work.
        prop_assert!(p.cp_ns <= p.self_total_ns);
    }

    /// write → parse → write is the identity on the JSON artifact, and the
    /// parsed profile equals the built one field for field.
    #[test]
    fn profile_json_round_trips(
        items in proptest::collection::vec(
            (0usize..4, 1u64..1_000_000, 0u64..1_000, 1u8..21, 0usize..3),
            0..30,
        ),
        speedup in 1.25f64..16.0,
    ) {
        let (nodes, preds) = realize(items);
        let wall = nodes.iter().map(|n| n.start_ns + n.dur_ns).max().unwrap_or(0);
        let mut p = Profile::build(&nodes, &preds, 3, 1, wall).unwrap();
        if let Some(k) = p.kernels.first().cloned() {
            let base = p.cp_ns.max(1);
            let predicted = base - base / 4;
            p.replay_base_ns = base;
            p.what_if = vec![WhatIfCurve {
                process: k.process,
                name: k.name,
                points: vec![WhatIfPoint {
                    speedup,
                    predicted_ns: predicted,
                    saving: 1.0 - predicted as f64 / base as f64,
                    bottleneck: "kernel-1".into(),
                }],
            }];
        }
        let text = p.to_json();
        let back = Profile::parse_json(&text).unwrap();
        prop_assert_eq!(&back, &p);
        prop_assert_eq!(back.to_json(), text);
    }
}
