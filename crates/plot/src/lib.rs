//! # arp-plot — minimal plotting for the seismic pipeline
//!
//! The original pipeline spends three of its twenty processes producing
//! PostScript plots (`<s>.ps`, `<s>f.ps`, `<s>r.ps`). This crate implements
//! that capability from scratch:
//!
//! * [`axis`] — linear/log scales and nice tick generation;
//! * [`backend`] — PostScript and SVG emitters;
//! * [`chart`] — line charts, stacked-panel figures, grouped bar charts;
//! * [`flame`] — flame/icicle graphs from folded stacks (profiling).
//!
//! No external dependencies; output is plain text in both formats.

#![warn(missing_docs)]

pub mod axis;
pub mod backend;
pub mod chart;
pub mod flame;
pub mod histogram;

pub use axis::{Axis, Scale};
pub use backend::{Anchor, Backend, Color, PostScript, Svg};
pub use chart::{Figure, GroupedBarChart, LineChart, Series};
pub use flame::{FlameFrame, FlameGraph};
pub use histogram::Histogram;
