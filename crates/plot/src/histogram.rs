//! Histograms — used by the QA tooling for peak-value and residual
//! distributions across a network of stations.

use crate::axis::{format_tick, Axis, Scale};
use crate::backend::{Anchor, Backend, Color, PostScript, Svg};

/// A binned histogram of scalar samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Left edges of the bins (uniform width), plus the final right edge.
    pub edges: Vec<f64>,
    /// Sample count per bin (`edges.len() - 1` entries).
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Bins `samples` into `bins` uniform bins spanning their range.
    /// Non-finite samples are skipped; an empty input yields one empty bin
    /// over `[0, 1]`.
    pub fn from_samples(
        title: impl Into<String>,
        x_label: impl Into<String>,
        samples: &[f64],
        bins: usize,
    ) -> Self {
        let bins = bins.max(1);
        let finite: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        let (lo, hi) = if finite.is_empty() {
            (0.0, 1.0)
        } else {
            let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if lo == hi {
                (lo - 0.5, hi + 0.5)
            } else {
                (lo, hi)
            }
        };
        let width = (hi - lo) / bins as f64;
        let edges: Vec<f64> = (0..=bins).map(|i| lo + width * i as f64).collect();
        let mut counts = vec![0usize; bins];
        for v in finite {
            let idx = (((v - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        Histogram {
            title: title.into(),
            x_label: x_label.into(),
            edges,
            counts,
        }
    }

    /// Total sample count.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Index and count of the fullest bin.
    pub fn mode_bin(&self) -> (usize, usize) {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, &c)| (i, c))
            .unwrap_or((0, 0))
    }

    fn render_into(&self, be: &mut dyn Backend, width: f64, height: f64) {
        let margin_left = 58.0;
        let margin_right = 14.0;
        let margin_top = 30.0;
        let margin_bottom = 44.0;
        let pw = (width - margin_left - margin_right).max(10.0);
        let ph = (height - margin_top - margin_bottom).max(10.0);

        let max_count = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let ya = Axis::new(0.0, max_count as f64 * 1.05, Scale::Linear);
        let xa = Axis::new(
            *self.edges.first().unwrap_or(&0.0),
            *self.edges.last().unwrap_or(&1.0),
            Scale::Linear,
        );

        be.rect(margin_left, margin_top, pw, ph, Color::BLACK, 1.0);
        be.text(
            width / 2.0,
            margin_top - 10.0,
            12.0,
            Anchor::Middle,
            &self.title,
        );

        for t in ya.ticks() {
            let ty = margin_top + ph - ya.to_unit(t) * ph;
            be.line(margin_left, ty, margin_left + pw, ty, Color::GRAY, 0.3);
            be.text(
                margin_left - 4.0,
                ty + 3.0,
                8.0,
                Anchor::End,
                &format_tick(t),
            );
        }
        for t in xa.ticks() {
            let tx = margin_left + xa.to_unit(t) * pw;
            be.text(
                tx,
                margin_top + ph + 14.0,
                8.0,
                Anchor::Middle,
                &format_tick(t),
            );
        }
        be.text(
            margin_left + pw / 2.0,
            margin_top + ph + 32.0,
            10.0,
            Anchor::Middle,
            &self.x_label,
        );

        for (i, &count) in self.counts.iter().enumerate() {
            let x0 = margin_left + xa.to_unit(self.edges[i]) * pw;
            let x1 = margin_left + xa.to_unit(self.edges[i + 1]) * pw;
            let h = ya.to_unit(count as f64) * ph;
            be.fill_rect(
                x0 + 0.5,
                margin_top + ph - h,
                (x1 - x0 - 1.0).max(0.5),
                h,
                Color::PALETTE[0],
            );
        }
    }

    /// Renders as SVG.
    pub fn to_svg(&self, width: f64, height: f64) -> String {
        let mut be: Box<dyn Backend> = Box::new(Svg::new(width, height));
        self.render_into(be.as_mut(), width, height);
        be.finish()
    }

    /// Renders as PostScript.
    pub fn to_postscript(&self, width: f64, height: f64) -> String {
        let mut be: Box<dyn Backend> = Box::new(PostScript::new(width, height));
        self.render_into(be.as_mut(), width, height);
        be.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_exhaustive_and_correct() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let h = Histogram::from_samples("t", "x", &samples, 10);
        assert_eq!(h.counts.len(), 10);
        assert_eq!(h.total(), 100);
        // Uniform data -> uniform bins.
        assert!(h.counts.iter().all(|&c| c == 10), "{:?}", h.counts);
        assert_eq!(h.edges.len(), 11);
        assert_eq!(h.edges[0], 0.0);
        assert_eq!(h.edges[10], 99.0);
    }

    #[test]
    fn max_value_lands_in_last_bin() {
        // Bins over [0,3] with width 1: [0,1), [1,2), [2,3] — the maximum
        // is clamped into the final closed bin alongside 2.0.
        let h = Histogram::from_samples("t", "x", &[0.0, 1.0, 2.0, 3.0], 3);
        assert_eq!(h.counts, vec![1, 1, 2]);
    }

    #[test]
    fn non_finite_samples_skipped() {
        let h = Histogram::from_samples("t", "x", &[1.0, f64::NAN, 2.0, f64::INFINITY], 2);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Histogram::from_samples("t", "x", &[], 5);
        assert_eq!(empty.total(), 0);
        assert_eq!(empty.counts.len(), 5);

        let constant = Histogram::from_samples("t", "x", &[7.0; 10], 4);
        assert_eq!(constant.total(), 10);
        let (_, mode) = constant.mode_bin();
        assert_eq!(mode, 10);
    }

    #[test]
    fn renders_svg_and_postscript() {
        let samples: Vec<f64> = (0..200).map(|i| ((i * 37) % 100) as f64).collect();
        let h = Histogram::from_samples("PGA distribution", "cm/s2", &samples, 12);
        let svg = h.to_svg(500.0, 320.0);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("PGA distribution"));
        assert!(svg.matches("<rect").count() >= 12);
        let ps = h.to_postscript(500.0, 320.0);
        assert!(ps.starts_with("%!PS-Adobe"));
    }
}
