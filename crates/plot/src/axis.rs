//! Axis scales and tick generation.

/// Scale type for one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear mapping.
    Linear,
    /// Base-10 logarithmic mapping (requires positive data bounds).
    Log10,
}

/// One axis: data range plus scale, mapping data to `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Axis {
    /// Lower data bound.
    pub min: f64,
    /// Upper data bound.
    pub max: f64,
    /// Scale type.
    pub scale: Scale,
}

impl Axis {
    /// Creates an axis, widening degenerate ranges and clamping log axes to
    /// positive bounds.
    pub fn new(mut min: f64, mut max: f64, scale: Scale) -> Self {
        if !min.is_finite() {
            min = 0.0;
        }
        if !max.is_finite() {
            max = 1.0;
        }
        if min > max {
            std::mem::swap(&mut min, &mut max);
        }
        if scale == Scale::Log10 {
            if max <= 0.0 {
                max = 1.0;
            }
            if min <= 0.0 {
                min = max * 1e-6;
            }
        }
        if min == max {
            // widen a degenerate range so mapping is defined
            let pad = if min == 0.0 { 1.0 } else { min.abs() * 0.5 };
            min -= pad;
            max += pad;
            if scale == Scale::Log10 && min <= 0.0 {
                min = max * 1e-3;
            }
        }
        Axis { min, max, scale }
    }

    /// Maps a data value to the unit interval (clamped).
    pub fn to_unit(&self, v: f64) -> f64 {
        let t = match self.scale {
            Scale::Linear => (v - self.min) / (self.max - self.min),
            Scale::Log10 => {
                if v <= 0.0 {
                    return 0.0;
                }
                (v.ln() - self.min.ln()) / (self.max.ln() - self.min.ln())
            }
        };
        t.clamp(0.0, 1.0)
    }

    /// Generates "nice" tick positions within the range.
    pub fn ticks(&self) -> Vec<f64> {
        match self.scale {
            Scale::Linear => linear_ticks(self.min, self.max),
            Scale::Log10 => log_ticks(self.min, self.max),
        }
    }
}

/// Nice linear ticks: step of 1/2/5 × 10^k giving 4–9 ticks.
fn linear_ticks(min: f64, max: f64) -> Vec<f64> {
    let span = max - min;
    if !(span.is_finite()) || span <= 0.0 {
        return vec![min];
    }
    let raw_step = span / 5.0;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm < 1.5 {
        mag
    } else if norm < 3.5 {
        2.0 * mag
    } else if norm < 7.5 {
        5.0 * mag
    } else {
        10.0 * mag
    };
    let first = (min / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut t = first;
    while t <= max + step * 1e-9 {
        // snap tiny float dust to zero
        ticks.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
        t += step;
    }
    ticks
}

/// Decade ticks for log axes (1, 10, 100, ...), including sub-decade 2 and 5
/// when fewer than two decades are spanned.
fn log_ticks(min: f64, max: f64) -> Vec<f64> {
    let lo = min.log10().floor() as i32;
    let hi = max.log10().ceil() as i32;
    let mut ticks = Vec::new();
    let decades = hi - lo;
    for d in lo..=hi {
        let base = 10f64.powi(d);
        for &m in if decades <= 2 {
            &[1.0, 2.0, 5.0][..]
        } else {
            &[1.0][..]
        } {
            let v = base * m;
            if v >= min * (1.0 - 1e-12) && v <= max * (1.0 + 1e-12) {
                ticks.push(v);
            }
        }
    }
    ticks
}

/// Formats a tick label compactly (scientific for very large/small values).
pub fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".to_string();
    }
    let a = v.abs();
    if !(1e-3..1e4).contains(&a) {
        format!("{v:.0e}")
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.4}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_mapping() {
        let a = Axis::new(0.0, 10.0, Scale::Linear);
        assert_eq!(a.to_unit(0.0), 0.0);
        assert_eq!(a.to_unit(10.0), 1.0);
        assert_eq!(a.to_unit(5.0), 0.5);
        assert_eq!(a.to_unit(-5.0), 0.0); // clamped
        assert_eq!(a.to_unit(20.0), 1.0);
    }

    #[test]
    fn log_mapping() {
        let a = Axis::new(0.1, 1000.0, Scale::Log10);
        assert!((a.to_unit(0.1)).abs() < 1e-12);
        assert!((a.to_unit(1000.0) - 1.0).abs() < 1e-12);
        assert!((a.to_unit(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(a.to_unit(-1.0), 0.0);
    }

    #[test]
    fn degenerate_range_widened() {
        let a = Axis::new(5.0, 5.0, Scale::Linear);
        assert!(a.min < 5.0 && a.max > 5.0);
        let z = Axis::new(0.0, 0.0, Scale::Linear);
        assert!(z.min < z.max);
    }

    #[test]
    fn swapped_range_fixed() {
        let a = Axis::new(10.0, 0.0, Scale::Linear);
        assert!(a.min < a.max);
    }

    #[test]
    fn log_axis_clamps_nonpositive() {
        let a = Axis::new(-5.0, 100.0, Scale::Log10);
        assert!(a.min > 0.0);
        let b = Axis::new(-5.0, -1.0, Scale::Log10);
        assert!(b.min > 0.0 && b.max > b.min);
    }

    #[test]
    fn linear_ticks_are_nice() {
        let a = Axis::new(0.0, 10.0, Scale::Linear);
        let t = a.ticks();
        assert!(t.len() >= 4 && t.len() <= 10, "{t:?}");
        assert!(t.contains(&0.0));
        assert!(t.contains(&10.0));
        // evenly spaced
        let step = t[1] - t[0];
        for w in t.windows(2) {
            assert!((w[1] - w[0] - step).abs() < 1e-9);
        }
    }

    #[test]
    fn log_ticks_are_decades() {
        let a = Axis::new(0.01, 100.0, Scale::Log10);
        let t = a.ticks();
        for &v in &[0.01, 0.1, 1.0, 10.0, 100.0] {
            assert!(
                t.iter().any(|&x| (x - v).abs() < 1e-12 * v),
                "missing {v} in {t:?}"
            );
        }
    }

    #[test]
    fn nan_bounds_handled() {
        let a = Axis::new(f64::NAN, f64::NAN, Scale::Linear);
        assert!(a.min.is_finite() && a.max.is_finite() && a.min < a.max);
    }

    #[test]
    fn tick_format() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(1.5), "1.5");
        assert_eq!(format_tick(2.0), "2");
        assert_eq!(format_tick(0.25), "0.25");
        assert_eq!(format_tick(1e6), "1e6");
        assert_eq!(format_tick(1e-5), "1e-5");
        assert_eq!(format_tick(250.0), "250");
    }
}
