//! Flame/icicle graphs from folded stacks.
//!
//! Consumes the standard collapsed format (`frame;frame;frame value`, one
//! line per aggregated stack) and renders an icicle layout — root row on
//! top, each frame's width proportional to its inclusive value — through
//! the [`crate::backend::Svg`] backend. The profile layer emits
//! `batch;<event>;<class>;<kernel> µs` stacks, so the picture reads
//! top-down as *batch → event → workload class → kernel*.

use crate::backend::{Anchor, Backend, Color, Svg};

/// One frame of the merged stack tree. `value` is inclusive: the sum of
/// every folded line passing through this frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FlameFrame {
    /// Frame label.
    pub name: String,
    /// Inclusive value (sum over the subtree's folded lines).
    pub value: u64,
    /// Child frames, in first-appearance order.
    pub children: Vec<FlameFrame>,
}

impl FlameFrame {
    fn child(&mut self, name: &str) -> &mut FlameFrame {
        // Two-phase lookup keeps the borrow checker happy on stable.
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(FlameFrame {
            name: name.to_string(),
            value: 0,
            children: Vec::new(),
        });
        self.children.last_mut().expect("just pushed")
    }

    fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(FlameFrame::depth)
            .max()
            .unwrap_or(0)
    }
}

/// A merged folded-stack tree, ready to render.
#[derive(Debug, Clone, PartialEq)]
pub struct FlameGraph {
    roots: Vec<FlameFrame>,
}

impl FlameGraph {
    /// Parses collapsed folded-stack text: one `frame;…;frame value` line
    /// per stack. Blank lines are skipped; a line without a positive
    /// integer value or with an empty frame is an error.
    pub fn from_folded(text: &str) -> Result<FlameGraph, String> {
        let mut holder = FlameFrame {
            name: String::new(),
            value: 0,
            children: Vec::new(),
        };
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (stack, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("folded line {}: no value field", lineno + 1))?;
            let value: u64 = value
                .parse()
                .map_err(|_| format!("folded line {}: bad value {value:?}", lineno + 1))?;
            let mut cursor = &mut holder;
            cursor.value += value;
            for frame in stack.split(';') {
                let frame = frame.trim();
                if frame.is_empty() {
                    return Err(format!("folded line {}: empty frame", lineno + 1));
                }
                cursor = cursor.child(frame);
                cursor.value += value;
            }
        }
        Ok(FlameGraph {
            roots: holder.children,
        })
    }

    /// Sum over all stacks (the width of the root row).
    pub fn total(&self) -> u64 {
        self.roots.iter().map(|r| r.value).sum()
    }

    /// Depth of the deepest stack.
    pub fn depth(&self) -> usize {
        self.roots.iter().map(FlameFrame::depth).max().unwrap_or(0)
    }

    /// Renders the icicle SVG: root frames on top, children below, width
    /// proportional to inclusive value. `width` is the canvas width in
    /// pixels; the height follows from the stack depth.
    pub fn to_svg(&self, width: f64, title: &str) -> String {
        const ROW: f64 = 18.0;
        const PAD: f64 = 4.0;
        const HEADER: f64 = 24.0;
        let depth = self.depth().max(1);
        let height = HEADER + depth as f64 * ROW + PAD;
        let mut svg = Box::new(Svg::new(width, height));
        svg.text(PAD, HEADER - 8.0, 12.0, Anchor::Start, title);
        let total = self.total();
        if total > 0 {
            let inner = width - 2.0 * PAD;
            let mut x = PAD;
            for root in &self.roots {
                let w = inner * root.value as f64 / total as f64;
                draw_frame(svg.as_mut(), root, x, HEADER, w, ROW, 0);
                x += w;
            }
        }
        svg.finish()
    }
}

/// Deterministic per-label palette color, darkened slightly with depth so
/// adjacent rows never blur together.
fn frame_color(name: &str, depth: usize) -> Color {
    let hash = name
        .bytes()
        .fold(0usize, |h, b| h.wrapping_mul(131).wrapping_add(b as usize));
    let base = Color::PALETTE[hash % Color::PALETTE.len()];
    let fade = 1.0 - 0.08 * (depth % 4) as f64;
    Color {
        r: base.r * fade,
        g: base.g * fade,
        b: base.b * fade,
    }
}

fn draw_frame(svg: &mut Svg, frame: &FlameFrame, x: f64, y: f64, w: f64, row: f64, depth: usize) {
    if w <= 0.0 {
        return;
    }
    svg.fill_rect(x, y, w, row - 1.0, frame_color(&frame.name, depth));
    svg.rect(x, y, w, row - 1.0, Color::BLACK, 0.3);
    // Label if it fits (≈6.5px per glyph at 11px Helvetica); truncate with
    // an ellipsis rather than spilling into the neighbour frame.
    let fit = ((w - 4.0) / 6.5) as usize;
    if fit >= 2 {
        let label: String = if frame.name.chars().count() <= fit {
            frame.name.clone()
        } else {
            frame
                .name
                .chars()
                .take(fit.saturating_sub(1))
                .chain(std::iter::once('…'))
                .collect()
        };
        svg.text(x + 2.0, y + row - 6.0, 11.0, Anchor::Start, &label);
    }
    if frame.value == 0 {
        return;
    }
    let mut cx = x;
    for child in &frame.children {
        let cw = w * child.value as f64 / frame.value as f64;
        draw_frame(svg, child, cx, y + row, cw, row, depth + 1);
        cx += cw;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FOLDED: &str = "batch;ev-a;heavy-io;#01 Gather 120\n\
                          batch;ev-a;heavy-flops;#04 Filters 300\n\
                          batch;ev-b;heavy-flops;#04 Filters 180\n\
                          batch;ev-b;plotting;#09 Plots 60\n";

    #[test]
    fn folded_lines_merge_into_a_tree() {
        let g = FlameGraph::from_folded(FOLDED).unwrap();
        assert_eq!(g.total(), 660);
        assert_eq!(g.depth(), 4);
        assert_eq!(g.roots.len(), 1);
        let batch = &g.roots[0];
        assert_eq!(batch.name, "batch");
        assert_eq!(batch.value, 660);
        assert_eq!(batch.children.len(), 2);
        let ev_a = &batch.children[0];
        assert_eq!((ev_a.name.as_str(), ev_a.value), ("ev-a", 420));
    }

    #[test]
    fn svg_contains_a_rect_per_frame_and_the_title() {
        let g = FlameGraph::from_folded(FOLDED).unwrap();
        let svg = g.to_svg(800.0, "batch profile");
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("batch profile"));
        // 1 root + 2 events + 4 classes (heavy-flops under both events) +
        // 4 kernels = 11 frames, one fill and one outline rect each, plus
        // the white background.
        assert_eq!(svg.matches("<rect").count(), 2 * 11 + 1);
    }

    #[test]
    fn empty_and_malformed_inputs() {
        let empty = FlameGraph::from_folded("").unwrap();
        assert_eq!(empty.total(), 0);
        assert!(empty.to_svg(400.0, "empty").starts_with("<svg"));
        assert!(FlameGraph::from_folded("no-value-here").is_err());
        assert!(FlameGraph::from_folded("a;b notanumber").is_err());
        assert!(FlameGraph::from_folded(";; 5").is_err());
    }

    #[test]
    fn rendering_is_deterministic() {
        let g = FlameGraph::from_folded(FOLDED).unwrap();
        assert_eq!(g.to_svg(640.0, "t"), g.to_svg(640.0, "t"));
    }
}
