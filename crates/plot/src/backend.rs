//! Rendering backends: PostScript (the pipeline's native `.ps` output) and
//! SVG (for the report figures). Both emit text; no external libraries.

/// RGB color with components in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Color {
    /// Red component.
    pub r: f64,
    /// Green component.
    pub g: f64,
    /// Blue component.
    pub b: f64,
}

impl Color {
    /// Black.
    pub const BLACK: Color = Color {
        r: 0.0,
        g: 0.0,
        b: 0.0,
    };
    /// Medium gray used for grid lines.
    pub const GRAY: Color = Color {
        r: 0.6,
        g: 0.6,
        b: 0.6,
    };
    /// Series palette (blue, red, green, orange, purple).
    pub const PALETTE: [Color; 5] = [
        Color {
            r: 0.12,
            g: 0.34,
            b: 0.66,
        },
        Color {
            r: 0.77,
            g: 0.18,
            b: 0.16,
        },
        Color {
            r: 0.18,
            g: 0.55,
            b: 0.24,
        },
        Color {
            r: 0.90,
            g: 0.56,
            b: 0.11,
        },
        Color {
            r: 0.48,
            g: 0.25,
            b: 0.60,
        },
    ];

    fn to_svg(self) -> String {
        format!(
            "rgb({},{},{})",
            (self.r * 255.0).round() as u8,
            (self.g * 255.0).round() as u8,
            (self.b * 255.0).round() as u8
        )
    }
}

/// Text anchor for label placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Anchor {
    /// Anchor at the left edge of the text.
    Start,
    /// Anchor at the text center.
    Middle,
    /// Anchor at the right edge.
    End,
}

/// A drawing surface in page coordinates: x grows right, y grows **down**,
/// origin at the top-left, units are points/pixels.
pub trait Backend {
    /// Draws a polyline.
    fn polyline(&mut self, points: &[(f64, f64)], color: Color, width: f64);
    /// Draws a straight line segment.
    fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, color: Color, width: f64) {
        self.polyline(&[(x1, y1), (x2, y2)], color, width);
    }
    /// Draws a text label at `(x, y)` (baseline position).
    fn text(&mut self, x: f64, y: f64, size: f64, anchor: Anchor, content: &str);
    /// Draws an axis-aligned rectangle outline.
    fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, color: Color, width: f64);
    /// Draws a filled axis-aligned rectangle.
    fn fill_rect(&mut self, x: f64, y: f64, w: f64, h: f64, color: Color);
    /// Finalizes and returns the document text.
    fn finish(self: Box<Self>) -> String;
}

/// PostScript backend (Level 1, self-contained EPS-style document).
pub struct PostScript {
    width: f64,
    height: f64,
    body: String,
}

impl PostScript {
    /// Creates a PostScript page of the given size (points).
    pub fn new(width: f64, height: f64) -> Self {
        PostScript {
            width,
            height,
            body: String::new(),
        }
    }

    /// Flips page-coordinate y (down) to PostScript y (up).
    fn fy(&self, y: f64) -> f64 {
        self.height - y
    }
}

impl Backend for PostScript {
    fn polyline(&mut self, points: &[(f64, f64)], color: Color, width: f64) {
        if points.len() < 2 {
            return;
        }
        self.body.push_str(&format!(
            "{:.3} {:.3} {:.3} setrgbcolor {width:.2} setlinewidth\nnewpath\n",
            color.r, color.g, color.b
        ));
        let (x0, y0) = points[0];
        self.body
            .push_str(&format!("{x0:.2} {:.2} moveto\n", self.fy(y0)));
        for &(x, y) in &points[1..] {
            self.body
                .push_str(&format!("{x:.2} {:.2} lineto\n", self.fy(y)));
        }
        self.body.push_str("stroke\n");
    }

    fn text(&mut self, x: f64, y: f64, size: f64, anchor: Anchor, content: &str) {
        let escaped = content
            .replace('\\', "\\\\")
            .replace('(', "\\(")
            .replace(')', "\\)");
        self.body.push_str(&format!(
            "0 0 0 setrgbcolor /Helvetica findfont {size:.1} scalefont setfont\n"
        ));
        let show = match anchor {
            Anchor::Start => format!("{x:.2} {:.2} moveto ({escaped}) show\n", self.fy(y)),
            Anchor::Middle => format!(
                "({escaped}) stringwidth pop 2 div neg {x:.2} add {:.2} moveto ({escaped}) show\n",
                self.fy(y)
            ),
            Anchor::End => format!(
                "({escaped}) stringwidth pop neg {x:.2} add {:.2} moveto ({escaped}) show\n",
                self.fy(y)
            ),
        };
        self.body.push_str(&show);
    }

    fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, color: Color, width: f64) {
        let pts = [(x, y), (x + w, y), (x + w, y + h), (x, y + h), (x, y)];
        self.polyline(&pts, color, width);
    }

    fn fill_rect(&mut self, x: f64, y: f64, w: f64, h: f64, color: Color) {
        self.body.push_str(&format!(
            "{:.3} {:.3} {:.3} setrgbcolor newpath {x:.2} {:.2} moveto {:.2} {:.2} lineto {:.2} {:.2} lineto {:.2} {:.2} lineto closepath fill\n",
            color.r,
            color.g,
            color.b,
            self.fy(y),
            x + w,
            self.fy(y),
            x + w,
            self.fy(y + h),
            x,
            self.fy(y + h),
        ));
    }

    fn finish(self: Box<Self>) -> String {
        format!(
            "%!PS-Adobe-3.0 EPSF-3.0\n%%BoundingBox: 0 0 {} {}\n%%Creator: arp-plot\n%%EndComments\n{}showpage\n%%EOF\n",
            self.width.ceil() as i64,
            self.height.ceil() as i64,
            self.body
        )
    }
}

/// SVG backend.
pub struct Svg {
    width: f64,
    height: f64,
    body: String,
}

impl Svg {
    /// Creates an SVG canvas of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        Svg {
            width,
            height,
            body: String::new(),
        }
    }
}

impl Backend for Svg {
    fn polyline(&mut self, points: &[(f64, f64)], color: Color, width: f64) {
        if points.len() < 2 {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|&(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        self.body.push_str(&format!(
            "<polyline fill=\"none\" stroke=\"{}\" stroke-width=\"{width:.2}\" points=\"{}\"/>\n",
            color.to_svg(),
            pts.join(" ")
        ));
    }

    fn text(&mut self, x: f64, y: f64, size: f64, anchor: Anchor, content: &str) {
        let a = match anchor {
            Anchor::Start => "start",
            Anchor::Middle => "middle",
            Anchor::End => "end",
        };
        let escaped = content
            .replace('&', "&amp;")
            .replace('<', "&lt;")
            .replace('>', "&gt;");
        self.body.push_str(&format!(
            "<text x=\"{x:.2}\" y=\"{y:.2}\" font-size=\"{size:.1}\" font-family=\"Helvetica,sans-serif\" text-anchor=\"{a}\">{escaped}</text>\n"
        ));
    }

    fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, color: Color, width: f64) {
        self.body.push_str(&format!(
            "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{width:.2}\"/>\n",
            color.to_svg()
        ));
    }

    fn fill_rect(&mut self, x: f64, y: f64, w: f64, h: f64, color: Color) {
        self.body.push_str(&format!(
            "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"{}\"/>\n",
            color.to_svg()
        ));
    }

    fn finish(self: Box<Self>) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" viewBox=\"0 0 {} {}\">\n<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postscript_document_structure() {
        let mut ps = Box::new(PostScript::new(400.0, 300.0));
        ps.polyline(&[(0.0, 0.0), (100.0, 50.0)], Color::BLACK, 1.0);
        ps.text(10.0, 20.0, 12.0, Anchor::Start, "hello (world)");
        ps.rect(5.0, 5.0, 50.0, 40.0, Color::GRAY, 0.5);
        let doc = ps.finish();
        assert!(doc.starts_with("%!PS-Adobe"));
        assert!(doc.contains("BoundingBox: 0 0 400 300"));
        assert!(doc.contains("lineto"));
        assert!(doc.contains("\\(world\\)")); // parens escaped
        assert!(doc.ends_with("%%EOF\n"));
    }

    #[test]
    fn postscript_flips_y() {
        let mut ps = Box::new(PostScript::new(100.0, 100.0));
        ps.polyline(&[(0.0, 0.0), (10.0, 0.0)], Color::BLACK, 1.0);
        let doc = ps.finish();
        // Page y=0 (top) maps to PS y=100 (up-positive).
        assert!(doc.contains("0.00 100.00 moveto"));
    }

    #[test]
    fn svg_document_structure() {
        let mut svg = Box::new(Svg::new(640.0, 480.0));
        svg.polyline(
            &[(0.0, 0.0), (10.0, 10.0), (20.0, 5.0)],
            Color::PALETTE[0],
            1.5,
        );
        svg.text(5.0, 5.0, 10.0, Anchor::Middle, "a < b & c");
        svg.fill_rect(1.0, 2.0, 3.0, 4.0, Color::GRAY);
        let doc = svg.finish();
        assert!(doc.starts_with("<svg"));
        assert!(doc.contains("polyline"));
        assert!(doc.contains("a &lt; b &amp; c"));
        assert!(doc.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn single_point_polyline_is_skipped() {
        let mut svg = Box::new(Svg::new(10.0, 10.0));
        svg.polyline(&[(1.0, 1.0)], Color::BLACK, 1.0);
        let doc = svg.finish();
        assert!(!doc.contains("polyline"));
    }

    #[test]
    fn color_conversion() {
        assert_eq!(Color::BLACK.to_svg(), "rgb(0,0,0)");
        let c = Color {
            r: 1.0,
            g: 0.5,
            b: 0.0,
        };
        assert_eq!(c.to_svg(), "rgb(255,128,0)");
    }
}
