//! Chart composition: line charts, stacked panels, grouped bar charts.

use crate::axis::{format_tick, Axis, Scale};
use crate::backend::{Anchor, Backend, Color, PostScript, Svg};

/// One plotted series: `(x, y)` samples and a legend label.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Sample points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a series from separate x and y slices (zipped to the shorter).
    pub fn from_xy(label: impl Into<String>, xs: &[f64], ys: &[f64]) -> Self {
        Series {
            label: label.into(),
            points: xs.iter().copied().zip(ys.iter().copied()).collect(),
        }
    }
}

/// A single-panel line chart.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Panel title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X scale.
    pub x_scale: Scale,
    /// Y scale.
    pub y_scale: Scale,
    /// The series to draw.
    pub series: Vec<Series>,
}

impl LineChart {
    /// Creates an empty linear-linear chart.
    pub fn new(title: impl Into<String>) -> Self {
        LineChart {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: Vec::new(),
        }
    }

    /// Sets axis labels (builder style).
    pub fn labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Sets axis scales (builder style).
    pub fn scales(mut self, x: Scale, y: Scale) -> Self {
        self.x_scale = x;
        self.y_scale = y;
        self
    }

    /// Adds a series (builder style).
    pub fn with_series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    /// Computes the data bounds across all series, ignoring non-finite
    /// points (and non-positive ones on log axes).
    fn bounds(&self) -> (Axis, Axis) {
        let mut xmin = f64::INFINITY;
        let mut xmax = f64::NEG_INFINITY;
        let mut ymin = f64::INFINITY;
        let mut ymax = f64::NEG_INFINITY;
        for s in &self.series {
            for &(x, y) in &s.points {
                if !x.is_finite() || !y.is_finite() {
                    continue;
                }
                if self.x_scale == Scale::Log10 && x <= 0.0 {
                    continue;
                }
                if self.y_scale == Scale::Log10 && y <= 0.0 {
                    continue;
                }
                xmin = xmin.min(x);
                xmax = xmax.max(x);
                ymin = ymin.min(y);
                ymax = ymax.max(y);
            }
        }
        if xmin > xmax {
            xmin = 0.0;
            xmax = 1.0;
        }
        if ymin > ymax {
            ymin = 0.0;
            ymax = 1.0;
        }
        (
            Axis::new(xmin, xmax, self.x_scale),
            Axis::new(ymin, ymax, self.y_scale),
        )
    }

    /// Renders into a rectangular region of a backend.
    pub fn render_into(&self, be: &mut dyn Backend, x0: f64, y0: f64, width: f64, height: f64) {
        let margin_left = 58.0;
        let margin_right = 12.0;
        let margin_top = 24.0;
        let margin_bottom = 40.0;
        let px0 = x0 + margin_left;
        let py0 = y0 + margin_top;
        let pw = (width - margin_left - margin_right).max(10.0);
        let ph = (height - margin_top - margin_bottom).max(10.0);

        let (xa, ya) = self.bounds();

        // Frame and title.
        be.rect(px0, py0, pw, ph, Color::BLACK, 1.0);
        be.text(
            x0 + width / 2.0,
            y0 + margin_top - 8.0,
            11.0,
            Anchor::Middle,
            &self.title,
        );

        // Ticks + grid.
        for t in xa.ticks() {
            let tx = px0 + xa.to_unit(t) * pw;
            be.line(tx, py0, tx, py0 + ph, Color::GRAY, 0.3);
            be.text(tx, py0 + ph + 14.0, 8.0, Anchor::Middle, &format_tick(t));
        }
        for t in ya.ticks() {
            let ty = py0 + ph - ya.to_unit(t) * ph;
            be.line(px0, ty, px0 + pw, ty, Color::GRAY, 0.3);
            be.text(px0 - 4.0, ty + 3.0, 8.0, Anchor::End, &format_tick(t));
        }
        be.text(
            px0 + pw / 2.0,
            py0 + ph + 30.0,
            10.0,
            Anchor::Middle,
            &self.x_label,
        );
        be.text(x0 + 12.0, py0 - 8.0, 10.0, Anchor::Start, &self.y_label);

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = Color::PALETTE[i % Color::PALETTE.len()];
            let pts: Vec<(f64, f64)> = s
                .points
                .iter()
                .filter(|(x, y)| {
                    x.is_finite()
                        && y.is_finite()
                        && (self.x_scale != Scale::Log10 || *x > 0.0)
                        && (self.y_scale != Scale::Log10 || *y > 0.0)
                })
                .map(|&(x, y)| (px0 + xa.to_unit(x) * pw, py0 + ph - ya.to_unit(y) * ph))
                .collect();
            be.polyline(&pts, color, 1.2);
            // Legend entry.
            if !s.label.is_empty() {
                let lx = px0 + 8.0;
                let ly = py0 + 12.0 + i as f64 * 12.0;
                be.line(lx, ly - 3.0, lx + 16.0, ly - 3.0, color, 2.0);
                be.text(lx + 20.0, ly, 8.0, Anchor::Start, &s.label);
            }
        }
    }
}

/// A figure: one or more charts stacked vertically on one page.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Page width (points/pixels).
    pub width: f64,
    /// Height per panel.
    pub panel_height: f64,
    /// The stacked panels.
    pub panels: Vec<LineChart>,
}

impl Figure {
    /// Creates a figure with default page metrics (560 × 240 per panel).
    pub fn new(panels: Vec<LineChart>) -> Self {
        Figure {
            width: 560.0,
            panel_height: 240.0,
            panels,
        }
    }

    fn render(&self, mut be: Box<dyn Backend>) -> String {
        for (i, p) in self.panels.iter().enumerate() {
            p.render_into(
                be.as_mut(),
                0.0,
                i as f64 * self.panel_height,
                self.width,
                self.panel_height,
            );
        }
        be.finish()
    }

    /// Renders the figure as a PostScript document.
    pub fn to_postscript(&self) -> String {
        let h = self.panel_height * self.panels.len().max(1) as f64;
        self.render(Box::new(PostScript::new(self.width, h)))
    }

    /// Renders the figure as an SVG document.
    pub fn to_svg(&self) -> String {
        let h = self.panel_height * self.panels.len().max(1) as f64;
        self.render(Box::new(Svg::new(self.width, h)))
    }
}

/// A grouped bar chart (used for the per-event comparison figure).
#[derive(Debug, Clone)]
pub struct GroupedBarChart {
    /// Chart title.
    pub title: String,
    /// Y-axis label.
    pub y_label: String,
    /// Category labels along x (one group each).
    pub groups: Vec<String>,
    /// One entry per series: `(label, per-group values)`.
    pub series: Vec<(String, Vec<f64>)>,
}

impl GroupedBarChart {
    /// Renders as SVG.
    pub fn to_svg(&self, width: f64, height: f64) -> String {
        let mut be: Box<dyn Backend> = Box::new(Svg::new(width, height));
        self.render_into(be.as_mut(), width, height);
        be.finish()
    }

    /// Renders as PostScript.
    pub fn to_postscript(&self, width: f64, height: f64) -> String {
        let mut be: Box<dyn Backend> = Box::new(PostScript::new(width, height));
        self.render_into(be.as_mut(), width, height);
        be.finish()
    }

    fn render_into(&self, be: &mut dyn Backend, width: f64, height: f64) {
        let margin_left = 58.0;
        let margin_right = 12.0;
        let margin_top = 28.0;
        let margin_bottom = 46.0;
        let pw = (width - margin_left - margin_right).max(10.0);
        let ph = (height - margin_top - margin_bottom).max(10.0);
        let px0 = margin_left;
        let py0 = margin_top;

        let max_val = self
            .series
            .iter()
            .flat_map(|(_, v)| v.iter())
            .copied()
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let ya = Axis::new(0.0, max_val * 1.05, Scale::Linear);

        be.rect(px0, py0, pw, ph, Color::BLACK, 1.0);
        be.text(width / 2.0, py0 - 10.0, 12.0, Anchor::Middle, &self.title);
        be.text(8.0, py0 - 10.0, 9.0, Anchor::Start, &self.y_label);

        for t in ya.ticks() {
            let ty = py0 + ph - ya.to_unit(t) * ph;
            be.line(px0, ty, px0 + pw, ty, Color::GRAY, 0.3);
            be.text(px0 - 4.0, ty + 3.0, 8.0, Anchor::End, &format_tick(t));
        }

        let ngroups = self.groups.len().max(1);
        let nseries = self.series.len().max(1);
        let group_w = pw / ngroups as f64;
        let bar_w = group_w * 0.8 / nseries as f64;

        for (gi, gname) in self.groups.iter().enumerate() {
            let gx = px0 + gi as f64 * group_w;
            be.text(
                gx + group_w / 2.0,
                py0 + ph + 16.0,
                8.0,
                Anchor::Middle,
                gname,
            );
            for (si, (_, values)) in self.series.iter().enumerate() {
                let v = values.get(gi).copied().unwrap_or(0.0);
                let h = ya.to_unit(v) * ph;
                let bx = gx + group_w * 0.1 + si as f64 * bar_w;
                be.fill_rect(
                    bx,
                    py0 + ph - h,
                    bar_w * 0.92,
                    h,
                    Color::PALETTE[si % Color::PALETTE.len()],
                );
            }
        }

        // Legend row.
        let mut lx = px0;
        let ly = py0 + ph + 34.0;
        for (si, (label, _)) in self.series.iter().enumerate() {
            be.fill_rect(
                lx,
                ly - 8.0,
                10.0,
                10.0,
                Color::PALETTE[si % Color::PALETTE.len()],
            );
            be.text(lx + 14.0, ly, 8.0, Anchor::Start, label);
            lx += 14.0 + 7.0 * label.len() as f64 + 18.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_chart() -> LineChart {
        LineChart::new("Accelerogram")
            .labels("Time (s)", "cm/s2")
            .with_series(Series::from_xy(
                "acc",
                &[0.0, 1.0, 2.0, 3.0],
                &[0.0, 5.0, -3.0, 1.0],
            ))
    }

    #[test]
    fn svg_render_contains_series_and_labels() {
        let fig = Figure::new(vec![sample_chart()]);
        let svg = fig.to_svg();
        assert!(svg.contains("Accelerogram"));
        assert!(svg.contains("Time (s)"));
        assert!(svg.contains("polyline"));
    }

    #[test]
    fn postscript_render_is_valid_document() {
        let fig = Figure::new(vec![sample_chart(), sample_chart()]);
        let ps = fig.to_postscript();
        assert!(ps.starts_with("%!PS-Adobe"));
        // two panels => taller page
        assert!(ps.contains("BoundingBox: 0 0 560 480"));
    }

    #[test]
    fn log_chart_skips_nonpositive_points() {
        let chart = LineChart::new("spec")
            .scales(Scale::Log10, Scale::Log10)
            .with_series(Series::from_xy(
                "s",
                &[0.0, 0.1, 1.0, 10.0],
                &[-1.0, 1.0, 10.0, 100.0],
            ));
        let fig = Figure::new(vec![chart]);
        let svg = fig.to_svg();
        assert!(svg.contains("polyline"));
    }

    #[test]
    fn empty_chart_renders_without_panic() {
        let fig = Figure::new(vec![LineChart::new("empty")]);
        let svg = fig.to_svg();
        assert!(svg.contains("empty"));
    }

    #[test]
    fn nan_points_skipped() {
        let chart = LineChart::new("nan").with_series(Series::from_xy(
            "s",
            &[0.0, 1.0, 2.0],
            &[f64::NAN, 1.0, 2.0],
        ));
        let svg = Figure::new(vec![chart]).to_svg();
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn grouped_bars_render() {
        let chart = GroupedBarChart {
            title: "Per event".into(),
            y_label: "Time (s)".into(),
            groups: vec!["Nov18".into(), "Apr18".into()],
            series: vec![
                ("Seq".into(), vec![76.6, 149.6]),
                ("Par".into(), vec![32.1, 56.5]),
            ],
        };
        let svg = chart.to_svg(640.0, 360.0);
        assert!(svg.contains("Per event"));
        assert!(svg.contains("Nov18"));
        // 2 groups x 2 series = 4 bars + legend swatches
        assert!(svg.matches("<rect").count() >= 6);
        let ps = chart.to_postscript(640.0, 360.0);
        assert!(ps.starts_with("%!PS-Adobe"));
    }

    #[test]
    fn series_from_xy_zips_to_shorter() {
        let s = Series::from_xy("z", &[1.0, 2.0, 3.0], &[4.0, 5.0]);
        assert_eq!(s.points.len(), 2);
    }
}
