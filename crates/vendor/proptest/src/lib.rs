//! API-compatible subset of `proptest`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest it uses: the [`strategy::Strategy`] trait
//! with `prop_map` / `prop_filter` / `prop_flat_map`, range and
//! regex-literal strategies, tuples, [`collection::vec`],
//! [`sample::select`], `prop_oneof!`, and the `proptest!` test macro.
//!
//! Generation is deterministic: each test case draws from an RNG seeded
//! from the test's module path, name, and case index, so failures
//! reproduce run-to-run. There is no shrinking — a failing case reports
//! its inputs via the panic message from `prop_assert!`.

pub mod test_runner {
    //! Deterministic case generation.

    use std::hash::{Hash, Hasher};

    /// Per-run configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Builds a config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// Deterministic generator (SplitMix64) used for all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator for one test case, deterministically from
        /// the test identity and case index.
        pub fn for_case(module: &str, test: &str, case: u32) -> Self {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            module.hash(&mut h);
            test.hash(&mut h);
            case.hash(&mut h);
            TestRng {
                state: h.finish() | 1,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `0..n` (`n > 0`).
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of type `Value`.
    ///
    /// Object-safe: only `generate` is required; combinators are
    /// `Self: Sized`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }

        /// Rejects values failing `f`, retrying generation.
        fn prop_filter<R, F>(self, whence: R, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            R: std::fmt::Display,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                base: self,
                whence: whence.to_string(),
                f,
            }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy yielding a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Adapter for [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Adapter for [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        base: S,
        whence: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.base.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
        }
    }

    /// Adapter for [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        /// The alternatives to choose between.
        pub options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    /// Boxes a strategy for [`Union`] (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "prop_oneof! of zero options");
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f64, f32);

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) % span) as i128;
                    (self.start as i128 + v) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `&str` is a strategy: the string is a regex literal over the
    /// supported subset `[class]{m,n}` (character classes with ranges,
    /// and `{m}`, `{m,n}` or no quantifier).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>, pattern: &str) -> Vec<char> {
        let mut set = Vec::new();
        loop {
            let c = chars
                .next()
                .unwrap_or_else(|| panic!("unterminated [..] in pattern {pattern:?}"));
            if c == ']' {
                break;
            }
            if chars.peek() == Some(&'-') {
                // Lookahead: `a-z` range unless `-` is last before `]`.
                let mut ahead = chars.clone();
                ahead.next();
                if ahead.peek().is_some_and(|&n| n != ']') {
                    chars.next();
                    let end = chars.next().unwrap();
                    assert!(c <= end, "bad class range {c}-{end} in {pattern:?}");
                    set.extend(c..=end);
                    continue;
                }
            }
            set.push(c);
        }
        assert!(!set.is_empty(), "empty character class in {pattern:?}");
        set
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars>,
        pattern: &str,
    ) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        loop {
            match chars.next() {
                Some('}') => break,
                Some(c) => spec.push(c),
                None => panic!("unterminated {{..}} in pattern {pattern:?}"),
            }
        }
        let (lo, hi) = match spec.split_once(',') {
            Some((a, b)) => (a, b),
            None => (spec.as_str(), spec.as_str()),
        };
        let lo: usize = lo.trim().parse().expect("bad quantifier lower bound");
        let hi: usize = hi.trim().parse().expect("bad quantifier upper bound");
        assert!(lo <= hi, "bad quantifier {{{spec}}} in {pattern:?}");
        (lo, hi)
    }

    /// Generates a string from the supported regex subset.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(&c) = chars.peek() {
            let class = if c == '[' {
                chars.next();
                parse_class(&mut chars, pattern)
            } else {
                assert!(
                    !"(){}|*+?^$\\.".contains(c),
                    "unsupported regex construct {c:?} in pattern {pattern:?}"
                );
                chars.next();
                vec![c]
            };
            let (lo, hi) = parse_quantifier(&mut chars, pattern);
            let count = if lo == hi { lo } else { lo + rng.index(hi - lo + 1) };
            for _ in 0..count {
                out.push(class[rng.index(class.len())]);
            }
        }
        out
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range.
            let m = rng.next_f64() * 2.0 - 1.0;
            let e = (rng.index(41) as i32) - 20;
            m * 2f64.powi(e)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Sizes accepted by [`vec`]: an exact length or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.index(self.end - self.start)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }
}

pub mod sample {
    //! Sampling from explicit value sets.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "select of empty list");
            self.options[rng.index(self.options.len())].clone()
        }
    }

    /// Chooses uniformly from `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for a fair coin flip.
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! Mirrors proptest's `prop` namespace (`prop::collection::vec`,
        //! `prop::sample::select`, `prop::bool::ANY`).
        pub use crate::{bool, collection, sample};
    }
}

/// Asserts a condition inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union {
            options: vec![$($crate::strategy::boxed($strategy)),+],
        }
    };
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    module_path!(),
                    stringify!($name),
                    case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                $body
            }
        }
        $crate::__proptest_items!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_generation_respects_shape() {
        let mut rng = TestRng::for_case("m", "t", 0);
        for _ in 0..200 {
            let s = crate::strategy::generate_from_pattern("[A-Z]{2,5}[0-9]{0,2}", &mut rng);
            assert!(s.len() >= 2 && s.len() <= 7, "{s:?}");
            assert!(s.chars().take(2).all(|c| c.is_ascii_uppercase()));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("m", "r", 1);
        for _ in 0..500 {
            let f = Strategy::generate(&(-4.0f64..4.0), &mut rng);
            assert!((-4.0..4.0).contains(&f));
            let u = Strategy::generate(&(3usize..17), &mut rng);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn oneof_and_combinators_compose() {
        let strat = prop_oneof![
            Just(0usize),
            (1usize..5).prop_map(|v| v * 10),
        ];
        let mut rng = TestRng::for_case("m", "o", 2);
        let mut saw_zero = false;
        let mut saw_mapped = false;
        for _ in 0..200 {
            match Strategy::generate(&strat, &mut rng) {
                0 => saw_zero = true,
                v => {
                    assert!(v >= 10 && v < 50 && v % 10 == 0);
                    saw_mapped = true;
                }
            }
        }
        assert!(saw_zero && saw_mapped);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_tuple_patterns((a, b) in (0usize..10, 10usize..20), flag in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            let _ = flag;
        }

        #[test]
        fn vec_sizes_respected(xs in prop::collection::vec(0u64..100, 1..8)) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            prop_assert!(xs.iter().all(|&v| v < 100));
        }
    }

    #[test]
    fn filter_and_flat_map() {
        let strat = (1usize..6).prop_flat_map(|n| {
            prop::collection::vec(0u64..10, n..n + 1).prop_filter("nonempty", |v| !v.is_empty())
        });
        let mut rng = TestRng::for_case("m", "ff", 3);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(!v.is_empty() && v.len() < 6);
        }
    }
}
