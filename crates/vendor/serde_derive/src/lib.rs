//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace derives serde traits on its data types for downstream
//! consumers, but never serializes anything itself, and the build
//! environment has no access to crates.io. These derives accept the same
//! syntax (including `#[serde(...)]` helper attributes) and expand to
//! nothing; the marker traits live in the sibling vendored `serde` crate
//! with blanket implementations.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
