//! API-compatible subset of `rayon`, backed by `std::thread::scope`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of rayon it uses: `into_par_iter()` on ranges,
//! `par_iter()` on slices, `map` / `for_each` / `reduce` / ordered
//! `collect`, and [`scope`] with `spawn`. Work is split into contiguous
//! chunks across `available_parallelism` OS threads — genuinely parallel,
//! though without rayon's work stealing.

use std::ops::Range;

pub mod prelude {
    //! Glob-import surface mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

fn worker_count(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n)
        .max(1)
}

/// Runs `f(i)` for every index in `0..n`, in parallel, collecting outputs
/// in index order.
fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = worker_count(n);
    if n == 0 {
        return Vec::new();
    }
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for (k, slots) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            s.spawn(move || {
                let base = k * chunk;
                for (j, slot) in slots.iter_mut().enumerate() {
                    *slot = Some(f(base + j));
                }
            });
        }
    });
    out.into_iter()
        .map(|v| v.expect("every index visited"))
        .collect()
}

/// Conversion into a parallel iterator (rayon's entry-point trait).
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type produced.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` on shared references (rayon's by-ref entry point).
pub trait IntoParallelRefIterator<'data> {
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type produced (a shared reference).
    type Item: Send + 'data;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

/// The subset of rayon's `ParallelIterator` the workspace uses.
pub trait ParallelIterator: Sized {
    /// Item type produced.
    type Item: Send;

    /// Internal driver: materialize all items in order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f` in parallel.
    fn map<T, F>(self, f: F) -> Map<Self, F>
    where
        T: Send,
        F: Fn(Self::Item) -> T + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Runs `f` on every item in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        self.map(f).drive();
    }

    /// Reduces items with `op`, seeding each chunk with `identity()`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        self.drive().into_iter().fold(identity(), &op)
    }

    /// Collects items in index order into any `FromIterator` container
    /// (e.g. `Vec<T>` or `Result<Vec<T>, E>`).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.drive().into_iter().collect()
    }
}

/// Parallel iterator over a `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    type Item = usize;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl ParallelIterator for ParRange {
    type Item = usize;
    fn drive(self) -> Vec<usize> {
        self.range.collect()
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(usize) + Sync + Send,
    {
        let start = self.range.start;
        let n = self.range.len();
        par_map_indexed(n, |i| f(start + i));
    }
}

/// Parallel iterator over slice elements.
pub struct ParSlice<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Iter = ParSlice<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Iter = ParSlice<'data, T>;
    type Item = &'data T;
    fn par_iter(&'data self) -> ParSlice<'data, T> {
        ParSlice { slice: self }
    }
}

impl<'data, T: Sync> ParallelIterator for ParSlice<'data, T> {
    type Item = &'data T;
    fn drive(self) -> Vec<&'data T> {
        self.slice.iter().collect()
    }
}

/// Adapter produced by [`ParallelIterator::map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, T, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    T: Send,
    F: Fn(B::Item) -> T + Sync + Send,
{
    type Item = T;
    fn drive(self) -> Vec<T> {
        let items = self.base.drive();
        let f = self.f;
        par_map_indexed(items.len(), {
            let slots: Vec<std::sync::Mutex<Option<B::Item>>> =
                items.into_iter().map(|v| std::sync::Mutex::new(Some(v))).collect();
            move |i| {
                let item = slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("each index driven once");
                f(item)
            }
        })
    }
}

/// Task scope mirroring `rayon::scope`: spawned tasks (including nested
/// spawns) all complete before `scope` returns.
pub struct Scope<'scope> {
    tasks: std::sync::Mutex<Vec<Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>>>,
}

impl<'scope> Scope<'scope> {
    /// Registers a task to run within the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.tasks
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Box::new(f));
    }
}

/// Creates a scope, runs `op`, then executes every spawned task (in
/// parallel batches) until none remain.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let sc = Scope {
        tasks: std::sync::Mutex::new(Vec::new()),
    };
    let result = op(&sc);
    loop {
        let batch: Vec<_> = std::mem::take(
            &mut *sc
                .tasks
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        if batch.is_empty() {
            break;
        }
        std::thread::scope(|ts| {
            for task in batch {
                let sc = &sc;
                ts.spawn(move || task(sc));
            }
        });
    }
    result
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn range_for_each_visits_all() {
        let counts: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        (0..500).into_par_iter().for_each(|i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_reduce_matches_sequential() {
        let total = (0..1000)
            .into_par_iter()
            .map(|i| i as u64 * 3)
            .reduce(|| 0u64, u64::wrapping_add);
        assert_eq!(total, (0..1000u64).map(|i| i * 3).sum::<u64>());
    }

    #[test]
    fn slice_map_collect_preserves_order() {
        let xs: Vec<i64> = (0..300).collect();
        let doubled: Vec<i64> = xs.par_iter().map(|&v| v * 2).collect();
        assert_eq!(doubled, (0..300).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_value() {
        let xs: Vec<i64> = (0..50).collect();
        let ok: Result<Vec<i64>, String> = xs.par_iter().map(|&v| Ok(v)).collect();
        assert_eq!(ok.unwrap().len(), 50);
        let err: Result<Vec<i64>, String> = xs
            .par_iter()
            .map(|&v| if v == 25 { Err("boom".to_string()) } else { Ok(v) })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn scope_runs_nested_spawns() {
        let count = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..10 {
                let count = &count;
                s.spawn(move |inner| {
                    count.fetch_add(1, Ordering::Relaxed);
                    inner.spawn(move |_| {
                        count.fetch_add(1, Ordering::Relaxed);
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 20);
    }
}
