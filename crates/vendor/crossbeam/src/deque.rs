//! Chase-Lev-style work-stealing deques, API-compatible with
//! `crossbeam-deque`.
//!
//! Three views over two kinds of queue:
//!
//! * [`Worker`] — the owner's end of a per-worker deque. The owner pushes
//!   and pops at the *back* (LIFO), which keeps recently-spawned work hot
//!   in cache and lets a worker run its own continuations first.
//! * [`Stealer`] — a cloneable handle other threads use to take work from
//!   the *front* of a worker's deque (FIFO), so thieves get the oldest —
//!   typically largest — piece of work and leave the owner's tail alone.
//! * [`Injector`] — a shared FIFO queue for work submitted from outside
//!   the pool (or overflowed from a worker); everyone steals from it.
//!
//! The build environment has no crates.io access, so like the [`channel`]
//! sibling this is a lock-backed reimplementation of the crossbeam API
//! rather than the lock-free original: each queue is a `Mutex<VecDeque>`,
//! and [`Stealer::steal`]/[`Injector::steal`] translate lock contention
//! into [`Steal::Retry`] (via `try_lock`) exactly where the lock-free
//! algorithm would observe a lost race. Tasks here are coarse (whole DAG
//! nodes, multi-iteration chunks), so queue operations are nowhere near
//! the scalability bottleneck the original optimizes for.
//!
//! [`channel`]: crate::channel

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex, PoisonError};

/// Outcome of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was observed empty.
    Empty,
    /// A task was stolen.
    Success(T),
    /// The attempt lost a race (here: the queue lock was contended) and
    /// should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// True when the attempt observed an empty queue.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True when a task was stolen.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// True when the attempt should be retried.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// The stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

struct Buffer<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Buffer<T> {
    fn new() -> Arc<Self> {
        Arc::new(Buffer {
            queue: Mutex::new(VecDeque::new()),
        })
    }

    fn len(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Front removal with contention reported as [`Steal::Retry`].
    fn steal_front(&self) -> Steal<T> {
        match self.queue.try_lock() {
            Ok(mut q) => match q.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
            Err(std::sync::TryLockError::WouldBlock) => Steal::Retry,
            Err(std::sync::TryLockError::Poisoned(p)) => match p.into_inner().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
        }
    }
}

/// The owner's end of a work-stealing deque: LIFO push/pop at the back.
///
/// Not `Sync` — exactly one thread owns it (matching `crossbeam-deque`);
/// hand [`Worker::stealer`] handles to everyone else.
pub struct Worker<T> {
    buf: Arc<Buffer<T>>,
    /// Owner-only marker: keeps the type `Send` but not `Sync`.
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

// SAFETY: the buffer is internally synchronized; the marker only removes
// `Sync` to enforce the single-owner discipline at compile time.
unsafe impl<T: Send> Send for Worker<T> {}

impl<T> Worker<T> {
    /// Creates a new LIFO worker deque.
    pub fn new_lifo() -> Self {
        Worker {
            buf: Buffer::new(),
            _not_sync: PhantomData,
        }
    }

    /// Creates a [`Stealer`] view of this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            buf: self.buf.clone(),
        }
    }

    /// Pushes a task onto the back of the deque.
    pub fn push(&self, task: T) {
        self.buf
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(task);
    }

    /// Pops the most recently pushed task (LIFO).
    pub fn pop(&self) -> Option<T> {
        self.buf
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_back()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A thief's view of a [`Worker`] deque: FIFO steal from the front.
pub struct Stealer<T> {
    buf: Arc<Buffer<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            buf: self.buf.clone(),
        }
    }
}

// SAFETY: all access goes through the internal lock.
unsafe impl<T: Send> Send for Stealer<T> {}
unsafe impl<T: Send> Sync for Stealer<T> {}

impl<T> Stealer<T> {
    /// Steals the oldest task from the deque (FIFO).
    pub fn steal(&self) -> Steal<T> {
        self.buf.steal_front()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A shared FIFO injector queue: push from anywhere, steal from anywhere.
pub struct Injector<T> {
    buf: Arc<Buffer<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: all access goes through the internal lock.
unsafe impl<T: Send> Send for Injector<T> {}
unsafe impl<T: Send> Sync for Injector<T> {}

impl<T> Injector<T> {
    /// Creates an empty injector queue.
    pub fn new() -> Self {
        Injector { buf: Buffer::new() }
    }

    /// Pushes a task onto the back of the queue.
    pub fn push(&self, task: T) {
        self.buf
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(task);
    }

    /// Steals the oldest task from the queue (FIFO).
    pub fn steal(&self) -> Steal<T> {
        self.buf.steal_front()
    }

    /// Number of tasks currently queued.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no tasks are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn owner_pop_is_lifo() {
        let w = Worker::new_lifo();
        for i in 0..5 {
            w.push(i);
        }
        for i in (0..5).rev() {
            assert_eq!(w.pop(), Some(i));
        }
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn steal_is_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        for i in 0..5 {
            w.push(i);
        }
        for i in 0..5 {
            assert_eq!(s.steal(), Steal::Success(i));
        }
        assert!(s.steal().is_empty());
    }

    #[test]
    fn owner_and_stealer_take_opposite_ends() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        for i in 0..4 {
            w.push(i);
        }
        assert_eq!(w.pop(), Some(3), "owner takes the newest");
        assert_eq!(s.steal(), Steal::Success(0), "thief takes the oldest");
        assert_eq!(w.len(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        for i in 0..5 {
            inj.push(i);
        }
        for i in 0..5 {
            assert_eq!(inj.steal(), Steal::Success(i));
        }
        assert!(inj.steal().is_empty());
    }

    #[test]
    fn steal_result_accessors() {
        assert!(Steal::<u8>::Empty.is_empty());
        assert!(Steal::Success(1u8).is_success());
        assert!(Steal::<u8>::Retry.is_retry());
        assert_eq!(Steal::Success(7u8).success(), Some(7));
        assert_eq!(Steal::<u8>::Empty.success(), None);
    }

    #[test]
    fn concurrent_stealers_consume_everything_exactly_once() {
        let w = Worker::new_lifo();
        let n = 10_000;
        let counters: Arc<Vec<AtomicUsize>> =
            Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
        for i in 0..n {
            w.push(i);
        }
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = w.stealer();
            let counters = counters.clone();
            let done = done.clone();
            handles.push(std::thread::spawn(move || loop {
                match s.steal() {
                    Steal::Success(i) => {
                        counters[i].fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => std::hint::spin_loop(),
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            }));
        }
        // The owner pops concurrently with the thieves.
        while let Some(i) = w.pop() {
            counters[i].fetch_add(1, Ordering::Relaxed);
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "task {i}");
        }
    }
}
