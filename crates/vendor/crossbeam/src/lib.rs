//! API-compatible subset of `crossbeam`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of crossbeam it uses: an unbounded MPMC
//! [`channel`] with cloneable senders *and* receivers, and the
//! work-stealing [`deque`] (`Worker`/`Stealer`/`Injector`) the pool's
//! scheduler is built on.

pub mod deque;

pub mod channel {
    //! Unbounded multi-producer multi-consumer FIFO channel.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Channel stayed empty for the whole timeout.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on an empty channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel (cloneable: MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a value, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake everyone so blocked receivers observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks until a value is available, every sender is dropped, or
        /// `timeout` elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let Some(left) = deadline.checked_duration_since(std::time::Instant::now()) else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, result) = self
                    .shared
                    .ready
                    .wait_timeout(queue, left)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
                if result.timed_out() && queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Pops a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// True if no values are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_wakes_blocked_receiver() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn mpmc_consumes_everything_exactly_once() {
            let (tx, rx) = unbounded::<usize>();
            let n = 1000;
            let counters: Arc<Vec<AtomicUsize>> =
                Arc::new((0..n).map(|_| AtomicUsize::new(0)).collect());
            let mut handles = Vec::new();
            for _ in 0..4 {
                let rx = rx.clone();
                let counters = counters.clone();
                handles.push(std::thread::spawn(move || {
                    while let Ok(i) = rx.recv() {
                        counters[i].fetch_add(1, Ordering::Relaxed);
                    }
                }));
            }
            for i in 0..n {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            for h in handles {
                h.join().unwrap();
            }
            for c in counters.iter() {
                assert_eq!(c.load(Ordering::Relaxed), 1);
            }
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            use std::time::Duration;
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
