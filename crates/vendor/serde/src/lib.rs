//! Offline facade over the `serde` surface this workspace uses.
//!
//! The workspace only *derives* `Serialize` / `Deserialize` (for
//! downstream consumers of its types); it never drives an actual
//! serializer, and the build environment has no access to crates.io. This
//! facade provides blanket marker traits and re-exports the sibling no-op
//! derives so `#[derive(Serialize, Deserialize)]` and `use serde::{...}`
//! compile unchanged.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker standing in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
