//! API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `parking_lot` surface it actually uses:
//! [`Mutex`] / [`RwLock`] with non-poisoning guards. Lock poisoning is
//! ignored (a panicking critical section yields the data as-is), matching
//! parking_lot semantics closely enough for this workspace.

use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's non-poisoning `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A condition variable with parking_lot's `&mut guard` waiting API.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard; bridge to parking_lot's &mut
        // signature by moving it out and back. No unwind can occur in
        // between: poisoned results are unwrapped, not propagated.
        unsafe {
            let owned = std::ptr::read(guard);
            let owned = self.0.wait(owned).unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, owned);
        }
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) {
        unsafe {
            let owned = std::ptr::read(guard);
            let (owned, _timed_out) = self
                .0
                .wait_timeout(owned, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            std::ptr::write(guard, owned);
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug + ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicking_section() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
