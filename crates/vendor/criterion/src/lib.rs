//! API-compatible subset of `criterion`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion its benches use: `benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a simple wall-clock mean over `sample_size` samples
//! (after one warm-up), printed to stdout. Benchmarks only execute when
//! the harness is invoked with `--bench` (as `cargo bench` does); under
//! `cargo test` the bench binaries exit immediately, keeping the tier-1
//! test run fast.

use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_name/parameter`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from just a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Mean duration of one routine call, filled in by [`Bencher::iter`].
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean over the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets a minimum measurement budget (accepted for API parity; the
    /// sample count alone governs this harness).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<S: std::fmt::Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.criterion.enabled {
            return self;
        }
        let mut b = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.to_string(), b.mean);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<S: std::fmt::Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        if !self.criterion.enabled {
            return self;
        }
        let mut b = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.mean);
        self
    }

    fn report(&self, id: &str, mean: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:.3e} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:.3e} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{}  time: {:>12.3?}{}", self.name, id, mean, rate);
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench`; `cargo test` does not. Skipping
        // when absent keeps bench binaries instant under `cargo test`.
        let enabled = std::env::args().any(|a| a == "--bench");
        Criterion { enabled }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<S: std::fmt::Display, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.benchmark_group(id.clone()).bench_function("", f);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("vendor/self");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &k| {
            b.iter(|| (0..100u64).map(|v| v * k).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_without_bench_flag() {
        // Without --bench in argv, groups are skipped but everything
        // still type-checks and runs through.
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    #[test]
    fn bencher_measures_nonzero_mean_when_enabled() {
        let mut c = Criterion { enabled: true };
        let mut group = c.benchmark_group("vendor/enabled");
        group.sample_size(2);
        group.bench_function("spin", |b| {
            b.iter(|| std::thread::sleep(std::time::Duration::from_micros(50)))
        });
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("radix2", 64).to_string(), "radix2/64");
        assert_eq!(BenchmarkId::from_parameter("SeqOpt").to_string(), "SeqOpt");
    }
}
