//! API-compatible subset of `rand` 0.8.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `rand` it uses: a seedable deterministic generator
//! ([`rngs::StdRng`], here SplitMix64 — high-quality enough for synthetic
//! test records), the [`Rng`] extension trait with `gen` / `gen_range`,
//! and [`SeedableRng`]. Streams are deterministic per seed, which is all
//! the synthetic-event generator requires.

use std::ops::Range;

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&v));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn values_spread_over_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = 0usize;
        let mut hi = 0usize;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            if v < 0.25 {
                lo += 1;
            } else if v > 0.75 {
                hi += 1;
            }
        }
        assert!(lo > 150 && hi > 150, "lo={lo} hi={hi}");
    }
}
