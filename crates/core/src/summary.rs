//! Event-level summary export.
//!
//! The paper closes its pipeline description with "This information ... is
//! of considerable significance to structural engineers": the per-station
//! scalar measures engineers actually consume. This module aggregates a
//! completed run into one table — peaks, intensity measures, filter
//! corners, and spectral ordinates at standard periods — exported as CSV.

use crate::context::RunContext;
use crate::error::Result;
use arp_dsp::peaks::intensity_measures;
use arp_formats::{names, Component, RFile, V2File};

/// Spectral ordinate periods engineers quote (s).
pub const SUMMARY_PERIODS: [f64; 3] = [0.3, 1.0, 3.0];

/// One station-component row of the event summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Station code.
    pub station: String,
    /// Component code.
    pub component: Component,
    /// Peak ground acceleration (cm/s²).
    pub pga: f64,
    /// Peak ground velocity (cm/s).
    pub pgv: f64,
    /// Peak ground displacement (cm).
    pub pgd: f64,
    /// Arias intensity (cm/s).
    pub arias: f64,
    /// 5–95% significant duration (s).
    pub duration_595: f64,
    /// 5%-damped SA at [`SUMMARY_PERIODS`] (cm/s²).
    pub sa: [f64; 3],
    /// Definitive low-side corners `(fsl, fpl)` (Hz).
    pub corners: (f64, f64),
}

/// Builds the summary for a completed run.
pub fn event_summary(ctx: &RunContext) -> Result<Vec<SummaryRow>> {
    let stations = ctx.stations()?;
    let mut rows = Vec::with_capacity(stations.len() * 3);
    for station in &stations {
        for comp in Component::ALL {
            let v2 = V2File::read(&ctx.artifact(&names::v2_component(station, comp)))?;
            let r = RFile::read(&ctx.artifact(&names::r_component(station, comp)))?;
            let spec = r
                .at_damping(0.05)
                .expect("validated RFile has at least one damping");
            let im = intensity_measures(&v2.data.acc, v2.header.dt)?;

            let mut sa = [0.0; 3];
            for (k, &target) in SUMMARY_PERIODS.iter().enumerate() {
                // Nearest archived period.
                let idx = spec
                    .periods
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        (a.1 - target)
                            .abs()
                            .partial_cmp(&(b.1 - target).abs())
                            .unwrap()
                    })
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                sa[k] = spec.sa[idx];
            }

            rows.push(SummaryRow {
                station: station.clone(),
                component: comp,
                pga: v2.peaks.pga,
                pgv: v2.peaks.pgv,
                pgd: v2.peaks.pgd,
                arias: im.arias,
                duration_595: im.duration_595,
                sa,
                corners: (v2.band.fsl, v2.band.fpl),
            });
        }
    }
    Ok(rows)
}

/// Renders the summary as CSV.
pub fn summary_csv(rows: &[SummaryRow]) -> String {
    let mut out = String::from(
        "station,component,pga_cm_s2,pgv_cm_s,pgd_cm,arias_cm_s,d595_s,sa_0.3s,sa_1.0s,sa_3.0s,fsl_hz,fpl_hz\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{:.5},{:.6},{:.6},{:.6},{:.3},{:.5},{:.5},{:.5},{:.4},{:.4}\n",
            r.station,
            r.component.code(),
            r.pga,
            r.pgv,
            r.pgd,
            r.arias,
            r.duration_595,
            r.sa[0],
            r.sa[1],
            r.sa[2],
            r.corners.0,
            r.corners.1
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::executor::run_pipeline;
    use crate::report::ImplKind;

    #[test]
    fn summary_covers_every_component_with_sane_values() {
        let base = std::env::temp_dir().join(format!("arp-summary-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        arp_synth::write_event_inputs(&arp_synth::paper_event(0, 0.003), &input).unwrap();
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        run_pipeline(&ctx, ImplKind::FullyParallel).unwrap();

        let rows = event_summary(&ctx).unwrap();
        let stations = ctx.stations().unwrap();
        assert_eq!(rows.len(), stations.len() * 3);
        for r in &rows {
            assert!(r.pga > 0.0, "{r:?}");
            assert!(r.pgv > 0.0);
            assert!(r.arias >= 0.0);
            assert!(r.sa.iter().all(|&v| v >= 0.0));
            assert!(r.corners.0 < r.corners.1);
        }

        let csv = summary_csv(&rows);
        assert_eq!(csv.lines().count(), rows.len() + 1);
        assert!(csv.starts_with("station,component"));
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn summary_requires_completed_run() {
        let base = std::env::temp_dir().join(format!("arp-summary2-{}", std::process::id()));
        let ctx = RunContext::new(base.join("in"), base.join("w"), PipelineConfig::fast()).unwrap();
        assert!(event_summary(&ctx).is_err());
        std::fs::remove_dir_all(&base).unwrap();
    }
}
