//! Run context: directories, discovered stations, and parallel dispatch.

use crate::config::{ParallelBackend, PipelineConfig, TimingModel};
use crate::error::{PipelineError, Result};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Default disk-contention fraction for loops whose cost the caller does
/// not characterize (used by [`RunContext::par_for`]).
pub const DEFAULT_SERIAL_FRACTION: f64 = 0.3;

/// Everything a process needs to run: where the inputs live, where artifacts
/// go, and the configuration.
#[derive(Debug)]
pub struct RunContext {
    /// Directory containing the raw `<station>.v1` files.
    pub input_dir: PathBuf,
    /// Directory where all intermediate and final artifacts are written.
    pub work_dir: PathBuf,
    /// Pipeline configuration.
    pub config: PipelineConfig,
    /// Virtual time saved by the simulated schedule relative to the real
    /// sequential execution (zero in [`TimingModel::Measured`] mode).
    saved: Mutex<Duration>,
}

impl RunContext {
    /// Creates a context, validating the config and creating `work_dir`.
    pub fn new(
        input_dir: impl Into<PathBuf>,
        work_dir: impl Into<PathBuf>,
        config: PipelineConfig,
    ) -> Result<Self> {
        config.validate()?;
        let input_dir = input_dir.into();
        let work_dir = work_dir.into();
        std::fs::create_dir_all(&work_dir).map_err(|e| PipelineError::io(&work_dir, e))?;
        Ok(RunContext {
            input_dir,
            work_dir,
            config,
            saved: Mutex::new(Duration::ZERO),
        })
    }

    /// Total virtual time saved so far by simulated scheduling. The
    /// executors subtract deltas of this from measured wall times to obtain
    /// simulated stage/pipeline times.
    pub fn saved_snapshot(&self) -> Duration {
        *self.saved.lock()
    }

    pub(crate) fn credit_saving(&self, real: Duration, simulated: Duration) {
        *self.saved.lock() += real.saturating_sub(simulated);
    }

    /// The schedule the simulator replays (rayon behaves like dynamic
    /// self-scheduling with small chunks).
    fn sim_schedule(&self) -> arp_par::Schedule {
        match self.config.backend {
            ParallelBackend::Rayon => arp_par::Schedule::Dynamic(1),
            ParallelBackend::OmpStyle(s) => s,
        }
    }

    /// Path of an artifact in the work directory.
    pub fn artifact(&self, name: &str) -> PathBuf {
        self.work_dir.join(name)
    }

    /// Reads the station list (the `v1list` metadata produced by process
    /// #1), i.e. the dependency every downstream process shares.
    pub fn stations(&self) -> Result<Vec<String>> {
        let list = arp_formats::FileList::read(&self.artifact(crate::process::gather::V1LIST))
            .map_err(|_| PipelineError::MissingArtifact {
                process: "downstream",
                artifact: crate::process::gather::V1LIST.into(),
            })?;
        Ok(list
            .entries
            .iter()
            .map(|f| f.trim_end_matches(".v1").to_string())
            .collect())
    }

    /// Runs `body(i)` for `i in 0..n` on the configured parallel backend,
    /// with the default I/O-contention profile. Errors from iterations are
    /// collected; the first (by index) is returned.
    pub fn par_for<F>(&self, n: usize, body: F) -> Result<()>
    where
        F: Fn(usize) -> Result<()> + Sync,
    {
        self.par_for_profiled(n, DEFAULT_SERIAL_FRACTION, body)
    }

    /// As [`RunContext::par_for`] with an explicit `serial_fraction`: the
    /// fraction of each unit's time spent on the shared disk, which bounds
    /// the loop's scalability in [`TimingModel::Simulated`] mode (ignored in
    /// measured mode).
    pub fn par_for_profiled<F>(&self, n: usize, serial_fraction: f64, body: F) -> Result<()>
    where
        F: Fn(usize) -> Result<()> + Sync,
    {
        if let TimingModel::Simulated { threads } = self.config.timing {
            let mut durations = Vec::with_capacity(n);
            let t_all = Instant::now();
            for i in 0..n {
                let t0 = Instant::now();
                body(i)?;
                durations.push(t0.elapsed());
            }
            let real = t_all.elapsed();
            let simulated = arp_par::resource_bounded_makespan(
                &durations,
                serial_fraction,
                threads,
                self.sim_schedule(),
            );
            self.credit_saving(real, simulated);
            return Ok(());
        }

        let errors: Mutex<Vec<(usize, PipelineError)>> = Mutex::new(Vec::new());
        let wrapped = |i: usize| {
            if let Err(e) = body(i) {
                errors.lock().push((i, e));
            }
        };
        match self.config.backend {
            ParallelBackend::Rayon => (0..n).into_par_iter().for_each(wrapped),
            ParallelBackend::OmpStyle(schedule) => {
                arp_par::ThreadPool::global().parallel_for(0..n, schedule, wrapped)
            }
        }
        let mut errs = errors.into_inner();
        errs.sort_by_key(|(i, _)| *i);
        match errs.into_iter().next() {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// Runs `body(i)` for `i in 0..n` sequentially (used by the sequential
    /// executors so both paths share process code).
    pub fn seq_for<F>(&self, n: usize, body: F) -> Result<()>
    where
        F: Fn(usize) -> Result<()> + Sync,
    {
        for i in 0..n {
            body(i)?;
        }
        Ok(())
    }

    /// Runs a set of heterogeneous tasks in parallel on the configured
    /// backend (OpenMP `task`/`taskwait`), collecting errors.
    pub fn tasks(&self, tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send + '_>>) -> Result<()> {
        if let TimingModel::Simulated { threads } = self.config.timing {
            let mut durations = Vec::with_capacity(tasks.len());
            let t_all = Instant::now();
            for task in tasks {
                let t0 = Instant::now();
                task()?;
                durations.push(t0.elapsed());
            }
            let real = t_all.elapsed();
            let simulated = arp_par::tasks_makespan(&durations, threads);
            self.credit_saving(real, simulated);
            return Ok(());
        }

        let errors: Mutex<Vec<PipelineError>> = Mutex::new(Vec::new());
        match self.config.backend {
            ParallelBackend::Rayon => {
                rayon::scope(|s| {
                    for t in tasks {
                        let errors = &errors;
                        s.spawn(move |_| {
                            if let Err(e) = t() {
                                errors.lock().push(e);
                            }
                        });
                    }
                });
            }
            ParallelBackend::OmpStyle(_) => {
                let wrapped: Vec<Box<dyn FnOnce() + Send + '_>> = tasks
                    .into_iter()
                    .map(|t| {
                        let errors = &errors;
                        Box::new(move || {
                            if let Err(e) = t() {
                                errors.lock().push(e);
                            }
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                arp_par::ThreadPool::global().run_tasks(wrapped);
            }
        }
        match errors.into_inner().into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Lists `*.v1` files (station files only, not per-component splits) in a
/// directory, sorted by name for determinism.
pub fn list_v1_station_files(dir: &Path) -> Result<Vec<String>> {
    let mut names = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| PipelineError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PipelineError::io(dir, e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".v1") {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("arp-ctx-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn context_creates_work_dir() {
        let base = temp_dir("create");
        let work = base.join("deep/work");
        let ctx = RunContext::new(&base, &work, PipelineConfig::fast()).unwrap();
        assert!(work.is_dir());
        assert_eq!(ctx.artifact("x.txt"), work.join("x.txt"));
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn par_for_runs_everything_on_both_backends() {
        let base = temp_dir("parfor");
        for backend in [
            ParallelBackend::Rayon,
            ParallelBackend::OmpStyle(arp_par::Schedule::Dynamic(1)),
        ] {
            let mut cfg = PipelineConfig::fast();
            cfg.backend = backend;
            let ctx = RunContext::new(&base, base.join("w"), cfg).unwrap();
            let count = AtomicUsize::new(0);
            ctx.par_for(100, |_| {
                count.fetch_add(1, Ordering::Relaxed);
                Ok(())
            })
            .unwrap();
            assert_eq!(count.load(Ordering::Relaxed), 100);
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn par_for_reports_first_error_by_index() {
        let base = temp_dir("parerr");
        let ctx = RunContext::new(&base, base.join("w"), PipelineConfig::fast()).unwrap();
        let err = ctx
            .par_for(50, |i| {
                if i == 13 || i == 31 {
                    Err(PipelineError::Config(format!("fail {i}")))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(err.to_string().contains("fail 13"), "{err}");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn tasks_run_on_both_backends() {
        let base = temp_dir("tasks");
        for backend in [
            ParallelBackend::Rayon,
            ParallelBackend::OmpStyle(arp_par::Schedule::Static),
        ] {
            let mut cfg = PipelineConfig::fast();
            cfg.backend = backend;
            let ctx = RunContext::new(&base, base.join("w"), cfg).unwrap();
            let count = AtomicUsize::new(0);
            let tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send + '_>> = (0..7)
                .map(|_| {
                    let count = &count;
                    Box::new(move || {
                        count.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    }) as Box<dyn FnOnce() -> Result<()> + Send + '_>
                })
                .collect();
            ctx.tasks(tasks).unwrap();
            assert_eq!(count.load(Ordering::Relaxed), 7);
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn tasks_propagate_errors() {
        let base = temp_dir("taskerr");
        let ctx = RunContext::new(&base, base.join("w"), PipelineConfig::fast()).unwrap();
        let tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send + '_>> = vec![
            Box::new(|| Ok(())),
            Box::new(|| Err(PipelineError::Config("task died".into()))),
        ];
        assert!(ctx.tasks(tasks).is_err());
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn simulated_par_for_credits_savings() {
        use crate::config::TimingModel;
        let base = temp_dir("sim");
        let mut cfg = PipelineConfig::fast();
        cfg.timing = TimingModel::Simulated { threads: 8 };
        let ctx = RunContext::new(&base, base.join("w"), cfg).unwrap();
        let count = AtomicUsize::new(0);
        ctx.par_for_profiled(16, 0.0, |_| {
            // Measurable per-unit work.
            std::thread::sleep(std::time::Duration::from_millis(2));
            count.fetch_add(1, Ordering::Relaxed);
            Ok(())
        })
        .unwrap();
        assert_eq!(count.load(Ordering::Relaxed), 16);
        // 16 units of ~2ms on 8 virtual threads: ~7/8 of the time credited.
        let saved = ctx.saved_snapshot();
        assert!(
            saved >= std::time::Duration::from_millis(20),
            "saved only {saved:?}"
        );
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn simulated_tasks_credit_savings() {
        use crate::config::TimingModel;
        let base = temp_dir("simtask");
        let mut cfg = PipelineConfig::fast();
        cfg.timing = TimingModel::Simulated { threads: 4 };
        let ctx = RunContext::new(&base, base.join("w"), cfg).unwrap();
        let tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send + '_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    std::thread::sleep(std::time::Duration::from_millis(3));
                    Ok(())
                }) as Box<dyn FnOnce() -> Result<()> + Send + '_>
            })
            .collect();
        ctx.tasks(tasks).unwrap();
        // 4 tasks of 3ms on 4 threads: makespan ~3ms, real ~12ms.
        assert!(ctx.saved_snapshot() >= std::time::Duration::from_millis(6));
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn simulated_errors_still_propagate() {
        use crate::config::TimingModel;
        let base = temp_dir("simerr");
        let mut cfg = PipelineConfig::fast();
        cfg.timing = TimingModel::Simulated { threads: 8 };
        let ctx = RunContext::new(&base, base.join("w"), cfg).unwrap();
        let err = ctx
            .par_for_profiled(10, 0.5, |i| {
                if i == 3 {
                    Err(PipelineError::Config("sim fail".into()))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(err.to_string().contains("sim fail"));
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn list_v1_files_sorted_and_filtered() {
        let base = temp_dir("list");
        for f in ["b.v1", "a.v1", "c.v2", "notes.txt"] {
            std::fs::write(base.join(f), "x").unwrap();
        }
        let names = list_v1_station_files(&base).unwrap();
        assert_eq!(names, vec!["a.v1", "b.v1"]);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn list_v1_missing_dir_errors() {
        assert!(list_v1_station_files(Path::new("/nonexistent/arp")).is_err());
    }
}
