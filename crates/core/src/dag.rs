//! Artifact-dependency DAG over the pipeline processes.
//!
//! The eleven-stage plan of Fig. 9 is a *barrier* schedule: every stage
//! waits for the previous stage to finish completely, even when only one of
//! its processes is actually needed. This module derives the underlying
//! dependency graph directly from the declared artifact tables of
//! [`crate::plan::process_reads`] / [`crate::plan::process_writes`], so a
//! scheduler can start each process the moment its true predecessors
//! complete.
//!
//! Edges are derived with the classic data-hazard rules over the original
//! numeric process order (the order of Fig. 5):
//!
//! * **RAW** (read-after-write): a reader depends on the latest effective
//!   writer of each artifact it reads.
//! * **WAW** (write-after-write): consecutive effective writers of the same
//!   artifact are ordered.
//! * **WAR** (write-after-read): a reader must finish before the next
//!   effective writer of that artifact overwrites it.
//!
//! "Effective" writers exclude the redundant processes #6, #12 and #14:
//! each one either recreates an artifact identical to an earlier producer's
//! (#12 repeats #3's component separation, #14 repeats #5's metadata) or
//! produces output that is unconditionally overwritten before anyone reads
//! it (#6's uncorrected plot is replaced by #15). The DAG therefore models
//! the *optimized* semantics; when the redundant processes are included
//! (see [`ProcessDag::full`]) they attach as pure leaves, which is exactly
//! the property that justifies deleting them.
//!
//! Because every derived edge points from a lower process number to a
//! higher one, the original sequential order is trivially a linearization;
//! [`ProcessDag::validate_stage_plan`] additionally checks that the eleven-
//! stage plan is one too (and that no stage contains an internal edge, so
//! its `Tasks` stages really may run their processes concurrently).

use crate::plan::{process_reads, process_writes, STAGE_TABLE};
use crate::process::{ProcessId, ProcessKind, PROCESS_TABLE};
use std::time::Duration;

/// The data-hazard class that induced an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Read-after-write: `to` reads an artifact `from` produced.
    Raw,
    /// Write-after-write: `to` overwrites an artifact `from` produced.
    Waw,
    /// Write-after-read: `to` overwrites an artifact `from` read.
    War,
}

/// One dependency edge, labeled with the artifact that induced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DagEdge {
    /// The predecessor process.
    pub from: ProcessId,
    /// The dependent process.
    pub to: ProcessId,
    /// The artifact family creating the hazard.
    pub artifact: &'static str,
    /// The hazard class.
    pub kind: EdgeKind,
}

/// The longest weighted path through the DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The processes on the path, in execution order.
    pub nodes: Vec<ProcessId>,
    /// Total weight of the path — the lower bound on any schedule's
    /// makespan, however many threads are available.
    pub length: Duration,
}

/// Dependency graph over the pipeline processes.
#[derive(Debug, Clone)]
pub struct ProcessDag {
    nodes: Vec<u8>,
    edges: Vec<DagEdge>,
    preds: Vec<Vec<u8>>,
    succs: Vec<Vec<u8>>,
}

impl ProcessDag {
    /// The DAG over the 17 processes of the optimized pipeline (the set the
    /// stage plan schedules).
    ///
    /// The graph is derived, not hand-written: edges come from the declared
    /// artifact tables via the RAW/WAW/WAR hazard rules (see the module
    /// docs).
    ///
    /// ```
    /// use arp_core::ProcessDag;
    ///
    /// let dag = ProcessDag::optimized();
    /// assert_eq!(dag.nodes().len(), 17);
    /// // #4 (default filtering) waits for the gather (#1), the filter
    /// // parameters (#2) and the component separation (#3):
    /// assert_eq!(dag.preds(4), &[1, 2, 3]);
    /// // The original numeric order is one valid linearization...
    /// assert!(dag.is_linearization(dag.nodes()));
    /// // ...and so is the eleven-stage plan of Fig. 9.
    /// assert!(dag.validate_stage_plan().is_empty());
    /// ```
    pub fn optimized() -> Self {
        Self::build(false)
    }

    /// The DAG over all 20 original processes. The redundant processes
    /// appear as leaves: they have predecessors but no dependents.
    pub fn full() -> Self {
        Self::build(true)
    }

    fn build(include_redundant: bool) -> Self {
        let nodes: Vec<u8> = PROCESS_TABLE
            .iter()
            .filter(|p| include_redundant || !p.redundant)
            .map(|p| p.id.0)
            .collect();

        // Collect the artifact families any included process touches.
        let mut artifacts: Vec<&'static str> = Vec::new();
        for &p in &nodes {
            for &a in process_reads(p).iter().chain(process_writes(p)) {
                if !artifacts.contains(&a) {
                    artifacts.push(a);
                }
            }
        }

        let mut edges: Vec<DagEdge> = Vec::new();
        let mut push = |from: u8, to: u8, artifact: &'static str, kind: EdgeKind| {
            debug_assert!(from < to, "hazard edges follow the numeric order");
            let e = DagEdge {
                from: ProcessId(from),
                to: ProcessId(to),
                artifact,
                kind,
            };
            if !edges.contains(&e) {
                edges.push(e);
            }
        };

        for &artifact in &artifacts {
            // Effective producers: non-redundant writers in numeric order.
            let writers: Vec<u8> = nodes
                .iter()
                .copied()
                .filter(|&p| {
                    !PROCESS_TABLE[p as usize].redundant && process_writes(p).contains(&artifact)
                })
                .collect();
            let readers: Vec<u8> = nodes
                .iter()
                .copied()
                .filter(|&p| process_reads(p).contains(&artifact))
                .collect();

            for w in writers.windows(2) {
                push(w[0], w[1], artifact, EdgeKind::Waw);
            }
            for &r in &readers {
                if let Some(&w) = writers.iter().rfind(|&&w| w < r) {
                    push(w, r, artifact, EdgeKind::Raw);
                }
                if let Some(&w) = writers.iter().find(|&&w| w > r) {
                    push(r, w, artifact, EdgeKind::War);
                }
            }
        }

        let mut preds = vec![Vec::new(); 20];
        let mut succs = vec![Vec::new(); 20];
        for e in &edges {
            let (f, t) = (e.from.0, e.to.0);
            if !preds[t as usize].contains(&f) {
                preds[t as usize].push(f);
            }
            if !succs[f as usize].contains(&t) {
                succs[f as usize].push(t);
            }
        }
        for adj in preds.iter_mut().chain(succs.iter_mut()) {
            adj.sort_unstable();
        }

        ProcessDag {
            nodes,
            edges,
            preds,
            succs,
        }
    }

    /// The processes in the graph, in numeric order.
    pub fn nodes(&self) -> &[u8] {
        &self.nodes
    }

    /// Per-node I/O-lane hints for `arp_par::ThreadPool::run_dag_lanes`,
    /// aligned with [`ProcessDag::nodes`]: `true` for processes whose time
    /// is dominated by the shared disk ([`ProcessKind::HeavyIo`]) or by
    /// plot emission ([`ProcessKind::Plotting`]), `false` for the
    /// compute-bound and light processes.
    pub fn io_lanes(&self) -> Vec<bool> {
        self.nodes
            .iter()
            .map(|&p| {
                matches!(
                    PROCESS_TABLE[p as usize].kind,
                    ProcessKind::HeavyIo | ProcessKind::Plotting
                )
            })
            .collect()
    }

    /// Whether process `p` is a node of this graph.
    pub fn contains(&self, p: u8) -> bool {
        self.nodes.contains(&p)
    }

    /// Every labeled edge (one entry per artifact/hazard pair, so a
    /// process pair may appear more than once).
    pub fn edges(&self) -> &[DagEdge] {
        &self.edges
    }

    /// Direct predecessors of `p`, in numeric order.
    pub fn preds(&self, p: u8) -> &[u8] {
        &self.preds[p as usize]
    }

    /// Direct successors of `p`, in numeric order.
    pub fn succs(&self, p: u8) -> &[u8] {
        &self.succs[p as usize]
    }

    /// Nodes with no predecessors.
    pub fn roots(&self) -> Vec<u8> {
        self.nodes
            .iter()
            .copied()
            .filter(|&p| self.preds(p).is_empty())
            .collect()
    }

    /// Nodes with no successors.
    pub fn leaves(&self) -> Vec<u8> {
        self.nodes
            .iter()
            .copied()
            .filter(|&p| self.succs(p).is_empty())
            .collect()
    }

    /// A topological order (Kahn's algorithm, smallest process number
    /// first), or an error naming the processes stuck on a cycle.
    pub fn topological_order(&self) -> Result<Vec<u8>, String> {
        let mut indegree = [0usize; 20];
        for &p in &self.nodes {
            indegree[p as usize] = self.preds(p).len();
        }
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut ready: Vec<u8> = self
            .nodes
            .iter()
            .copied()
            .filter(|&p| indegree[p as usize] == 0)
            .collect();
        while let Some(p) = ready.iter().copied().min() {
            ready.retain(|&q| q != p);
            order.push(p);
            for &s in self.succs(p) {
                indegree[s as usize] -= 1;
                if indegree[s as usize] == 0 {
                    ready.push(s);
                }
            }
        }
        if order.len() == self.nodes.len() {
            Ok(order)
        } else {
            let stuck: Vec<u8> = self
                .nodes
                .iter()
                .copied()
                .filter(|p| !order.contains(p))
                .collect();
            Err(format!("dependency cycle through processes {stuck:?}"))
        }
    }

    /// Problems that make `order` an invalid execution of this graph:
    /// missing/duplicated/foreign processes, or an edge it runs backwards.
    pub fn linearization_violations(&self, order: &[u8]) -> Vec<String> {
        let mut violations = Vec::new();
        let mut position = [usize::MAX; 20];
        for (i, &p) in order.iter().enumerate() {
            if !self.contains(p) {
                violations.push(format!("process #{p} is not a node of the graph"));
            } else if position[p as usize] != usize::MAX {
                violations.push(format!("process #{p} appears twice"));
            } else {
                position[p as usize] = i;
            }
        }
        for &p in &self.nodes {
            if position[p as usize] == usize::MAX {
                violations.push(format!("process #{p} is missing from the order"));
            }
        }
        if !violations.is_empty() {
            return violations;
        }
        for e in &self.edges {
            if position[e.from.0 as usize] > position[e.to.0 as usize] {
                violations.push(format!(
                    "#{} must run before #{} ({} on {:?})",
                    e.from.0,
                    e.to.0,
                    match e.kind {
                        EdgeKind::Raw => "read-after-write",
                        EdgeKind::Waw => "write-after-write",
                        EdgeKind::War => "write-after-read",
                    },
                    e.artifact,
                ));
            }
        }
        violations
    }

    /// Whether `order` runs every node exactly once and respects all edges.
    pub fn is_linearization(&self, order: &[u8]) -> bool {
        self.linearization_violations(order).is_empty()
    }

    /// Checks the eleven-stage plan of Fig. 9 against this graph: its
    /// flattened process order must be a linearization, and no stage may
    /// contain an internal edge (stages run their processes as concurrent
    /// tasks). Only meaningful for the optimized 17-process graph.
    pub fn validate_stage_plan(&self) -> Vec<String> {
        let order: Vec<u8> = STAGE_TABLE
            .iter()
            .flat_map(|s| s.processes.iter().copied())
            .collect();
        let mut violations = self.linearization_violations(&order);
        for stage in &STAGE_TABLE {
            for e in &self.edges {
                if stage.processes.contains(&e.from.0) && stage.processes.contains(&e.to.0) {
                    violations.push(format!(
                        "stage {} contains internal edge #{} -> #{} on {:?}",
                        stage.id.label(),
                        e.from.0,
                        e.to.0,
                        e.artifact,
                    ));
                }
            }
        }
        violations
    }

    /// The longest weighted path through the graph, with per-node weights
    /// given by `weight`. No schedule can beat this, no matter how many
    /// threads it uses.
    pub fn critical_path<F: Fn(ProcessId) -> Duration>(&self, weight: F) -> CriticalPath {
        // Nodes in numeric order form a topological order by construction.
        let mut dist = [Duration::ZERO; 20];
        let mut via: [Option<u8>; 20] = [None; 20];
        let mut best_end: Option<u8> = None;
        for &p in &self.nodes {
            let (up, from) = self
                .preds(p)
                .iter()
                .map(|&q| (dist[q as usize], Some(q)))
                .max_by_key(|&(d, _)| d)
                .unwrap_or((Duration::ZERO, None));
            dist[p as usize] = up + weight(ProcessId(p));
            via[p as usize] = from;
            if best_end.is_none_or(|b| dist[p as usize] > dist[b as usize]) {
                best_end = Some(p);
            }
        }
        let mut nodes = Vec::new();
        let mut cursor = best_end;
        while let Some(p) = cursor {
            nodes.push(ProcessId(p));
            cursor = via[p as usize];
        }
        nodes.reverse();
        let length = best_end.map_or(Duration::ZERO, |p| dist[p as usize]);
        CriticalPath { nodes, length }
    }
}

/// One node of a [`SuperDag`]: a pipeline process belonging to one event of
/// a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperNode {
    /// Index of the event within the batch (into [`SuperDag::labels`]).
    pub event: usize,
    /// The pipeline process this node runs.
    pub process: ProcessId,
}

/// The union of N per-event [`ProcessDag`]s, flattened into one schedulable
/// graph.
///
/// Every event contributes a full copy of the per-event graph; nodes are
/// namespaced by event (see [`SuperDag::node_label`]) and **no edges cross
/// events** — each event writes into its own work directory, so there are
/// no inter-event hazards by construction. Flat node indices are
/// `event * per_event_len + position`, ready for direct submission to
/// `arp_par::ThreadPool::run_dag`. Scheduling the union in one call lets
/// small events fill the idle tails of big ones instead of waiting for
/// them to drain completely.
///
/// ```
/// use arp_core::SuperDag;
///
/// let batch = SuperDag::union(&["ev-a".into(), "ev-b".into()]);
/// assert_eq!(batch.len(), 2 * 17);
/// assert_eq!(batch.node_label(17), "ev-b/#0");
/// // No cross-event edges: every predecessor index stays in its event's
/// // own index range.
/// for (i, preds) in batch.preds().iter().enumerate() {
///     assert!(preds.iter().all(|&p| p / 17 == i / 17));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SuperDag {
    labels: Vec<String>,
    per_event: ProcessDag,
    nodes: Vec<SuperNode>,
    preds: Vec<Vec<usize>>,
}

impl SuperDag {
    /// Unions one optimized per-event graph per label. Labels are kept in
    /// submission order; an empty batch is a valid (empty) graph.
    pub fn union(labels: &[String]) -> Self {
        Self::union_of(labels, ProcessDag::optimized())
    }

    /// As [`SuperDag::union`], with an explicit per-event graph (the full
    /// 20-process graph, or a test graph).
    pub fn union_of(labels: &[String], per_event: ProcessDag) -> Self {
        let event_nodes = per_event.nodes().to_vec();
        let index_of = |p: u8| {
            event_nodes
                .iter()
                .position(|&q| q == p)
                .expect("node in dag")
        };
        let mut nodes = Vec::with_capacity(labels.len() * event_nodes.len());
        let mut preds = Vec::with_capacity(labels.len() * event_nodes.len());
        for event in 0..labels.len() {
            let offset = event * event_nodes.len();
            for &p in &event_nodes {
                nodes.push(SuperNode {
                    event,
                    process: ProcessId(p),
                });
                preds.push(
                    per_event
                        .preds(p)
                        .iter()
                        .map(|&q| offset + index_of(q))
                        .collect(),
                );
            }
        }
        SuperDag {
            labels: labels.to_vec(),
            per_event,
            nodes,
            preds,
        }
    }

    /// The event labels, in batch order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// The shared per-event graph every event replicates.
    pub fn per_event(&self) -> &ProcessDag {
        &self.per_event
    }

    /// Total node count (`events * per-event nodes`).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the batch graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes in flat index order (event-major).
    pub fn nodes(&self) -> &[SuperNode] {
        &self.nodes
    }

    /// Flat predecessor lists, indexable by `arp_par::ThreadPool::run_dag`.
    pub fn preds(&self) -> &[Vec<usize>] {
        &self.preds
    }

    /// First flat index of an event's nodes.
    pub fn event_offset(&self, event: usize) -> usize {
        event * self.per_event.nodes().len()
    }

    /// Flat per-node I/O-lane hints (event-major, aligned with
    /// [`SuperDag::nodes`]): every event replicates the per-event graph's
    /// [`ProcessDag::io_lanes`] classification.
    pub fn io_lanes(&self) -> Vec<bool> {
        let per = self.per_event.io_lanes();
        (0..self.labels.len()).flat_map(|_| per.clone()).collect()
    }

    /// Namespaced display name of a node: `<event label>/#<process>`.
    pub fn node_label(&self, i: usize) -> String {
        let node = self.nodes[i];
        format!("{}/#{}", self.labels[node.event], node.process.0)
    }

    /// A topological order of the flat graph (each event's per-event
    /// topological order, event-major), or an error if the per-event graph
    /// has a cycle.
    pub fn topological_order(&self) -> Result<Vec<usize>, String> {
        let per_event = self.per_event.topological_order()?;
        let event_nodes = self.per_event.nodes();
        let index_of = |p: u8| {
            event_nodes
                .iter()
                .position(|&q| q == p)
                .expect("node in dag")
        };
        Ok((0..self.labels.len())
            .flat_map(|event| {
                let offset = self.event_offset(event);
                per_event.iter().map(move |&p| offset + index_of(p))
            })
            .collect())
    }

    /// Problems that make `order` an invalid execution of the super-graph:
    /// missing/duplicated/out-of-range indices, or a per-event dependency it
    /// runs backwards. An empty result means `order` respects every event's
    /// stage-plan-validated dependency structure.
    pub fn linearization_violations(&self, order: &[usize]) -> Vec<String> {
        let n = self.nodes.len();
        let mut violations = Vec::new();
        let mut position = vec![usize::MAX; n];
        for (at, &i) in order.iter().enumerate() {
            if i >= n {
                violations.push(format!("index {i} is out of range (graph has {n} nodes)"));
            } else if position[i] != usize::MAX {
                violations.push(format!("{} appears twice", self.node_label(i)));
            } else {
                position[i] = at;
            }
        }
        for (i, &at) in position.iter().enumerate() {
            if at == usize::MAX {
                violations.push(format!("{} is missing from the order", self.node_label(i)));
            }
        }
        if !violations.is_empty() {
            return violations;
        }
        for (i, preds) in self.preds.iter().enumerate() {
            for &p in preds {
                if position[p] > position[i] {
                    violations.push(format!(
                        "{} must run before {}",
                        self.node_label(p),
                        self.node_label(i)
                    ));
                }
            }
        }
        violations
    }

    /// Whether `order` runs every node exactly once and respects every
    /// per-event dependency.
    pub fn is_linearization(&self, order: &[usize]) -> bool {
        self.linearization_violations(order).is_empty()
    }

    /// Downward rank of every node: its weight plus the longest weighted
    /// path to an exit *within its own event* (there are no cross-event
    /// edges to follow). Used as the dispatch priority for critical-path
    /// ordering: scheduling the highest-rank ready node first starts long
    /// chains early, so one huge event cannot starve the rest of the batch
    /// — its nodes outrank others only while its remaining work is
    /// actually longer.
    pub fn downward_ranks<F>(&self, weight: F) -> Vec<Duration>
    where
        F: Fn(usize, ProcessId) -> Duration,
    {
        let event_nodes = self.per_event.nodes();
        let index_of = |p: u8| {
            event_nodes
                .iter()
                .position(|&q| q == p)
                .expect("node in dag")
        };
        let mut ranks = vec![Duration::ZERO; self.nodes.len()];
        for event in 0..self.labels.len() {
            let offset = self.event_offset(event);
            // Numeric order is topological (edges ascend), so the reverse
            // visits successors before their predecessors.
            for (k, &p) in event_nodes.iter().enumerate().rev() {
                let down = self
                    .per_event
                    .succs(p)
                    .iter()
                    .map(|&s| ranks[offset + index_of(s)])
                    .max()
                    .unwrap_or(Duration::ZERO);
                ranks[offset + k] = weight(event, ProcessId(p)) + down;
            }
        }
        ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-derived predecessor table (see module docs for the rules).
    fn expected_preds(p: u8) -> &'static [u8] {
        match p {
            0..=2 => &[],
            3 | 5 | 8 | 17 => &[1],
            6 | 12 | 14 => &[1],
            4 => &[1, 2, 3],
            7 => &[1, 4],
            9 => &[1, 7],
            10 => &[1, 2, 4, 7],
            11 => &[0],
            13 => &[1, 3, 4, 7, 10],
            15 | 16 => &[1, 13],
            18 => &[1, 16],
            19 => &[1, 13, 16],
            _ => unreachable!(),
        }
    }

    #[test]
    fn optimized_dag_matches_hand_derivation() {
        let dag = ProcessDag::optimized();
        assert_eq!(dag.nodes().len(), 17);
        for &p in dag.nodes() {
            assert_eq!(dag.preds(p), expected_preds(p), "preds of #{p}");
        }
    }

    #[test]
    fn full_dag_adds_redundant_processes_as_leaves() {
        let full = ProcessDag::full();
        let opt = ProcessDag::optimized();
        assert_eq!(full.nodes().len(), 20);
        for p in [6u8, 12, 14] {
            assert_eq!(
                full.preds(p),
                &[1],
                "redundant #{p} depends only on the gather"
            );
            assert!(full.succs(p).is_empty(), "redundant #{p} must be a leaf");
        }
        // Removing the leaves changes no other node's dependencies: preds
        // are untouched, and succs only lose the redundant leaves.
        for &p in opt.nodes() {
            assert_eq!(full.preds(p), opt.preds(p), "preds of #{p}");
            let full_succs: Vec<u8> = full
                .succs(p)
                .iter()
                .copied()
                .filter(|&s| ![6, 12, 14].contains(&s))
                .collect();
            assert_eq!(full_succs, opt.succs(p), "succs of #{p}");
        }
    }

    #[test]
    fn both_graphs_are_acyclic_and_numeric_order_linearizes() {
        for dag in [ProcessDag::optimized(), ProcessDag::full()] {
            let topo = dag.topological_order().unwrap();
            assert_eq!(topo.len(), dag.nodes().len());
            // Kahn's smallest-first order over ascending edges is exactly
            // the numeric order.
            assert_eq!(topo, dag.nodes());
            assert!(dag.is_linearization(dag.nodes()));
        }
    }

    #[test]
    fn stage_plan_is_a_valid_linearization_without_intra_stage_edges() {
        let v = ProcessDag::optimized().validate_stage_plan();
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn linearization_violations_are_reported() {
        let dag = ProcessDag::optimized();
        // Reversed order breaks edges.
        let mut rev: Vec<u8> = dag.nodes().to_vec();
        rev.reverse();
        assert!(!dag.is_linearization(&rev));
        // A redundant process is not a node of the optimized graph.
        let mut with_foreign = dag.nodes().to_vec();
        with_foreign.push(6);
        assert!(dag
            .linearization_violations(&with_foreign)
            .iter()
            .any(|v| v.contains("not a node")));
        // A missing process is reported.
        let missing = &dag.nodes()[1..];
        assert!(dag
            .linearization_violations(missing)
            .iter()
            .any(|v| v.contains("missing")));
    }

    #[test]
    fn critical_path_with_unit_weights_is_the_deep_chain() {
        let dag = ProcessDag::optimized();
        let cp = dag.critical_path(|_| Duration::from_secs(1));
        let ids: Vec<u8> = cp.nodes.iter().map(|p| p.0).collect();
        // Two unit-weight paths tie at depth 8 (…16→18 and …16→19); the DP
        // deterministically keeps the lowest-numbered terminal.
        assert_eq!(ids, vec![1, 3, 4, 7, 10, 13, 16, 18]);
        assert_eq!(cp.length, Duration::from_secs(8));
    }

    #[test]
    fn critical_path_follows_the_weights() {
        let dag = ProcessDag::optimized();
        let cp = dag.critical_path(|p| {
            if p.0 == 11 || p.0 == 0 {
                Duration::from_secs(100)
            } else {
                Duration::from_millis(1)
            }
        });
        let ids: Vec<u8> = cp.nodes.iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![0, 11]);
        assert_eq!(cp.length, Duration::from_secs(200));
    }

    #[test]
    fn roots_and_leaves() {
        let dag = ProcessDag::optimized();
        assert_eq!(dag.roots(), vec![0, 1, 2]);
        // Terminal artifacts: plots, metadata graphs, GEM files, flags.
        assert_eq!(dag.leaves(), vec![5, 8, 9, 11, 15, 17, 18, 19]);
    }

    #[test]
    fn super_dag_unions_disjoint_copies() {
        let labels: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let sd = SuperDag::union(&labels);
        assert_eq!(sd.len(), 3 * 17);
        assert!(!sd.is_empty());
        assert_eq!(sd.labels(), &labels[..]);
        let per = sd.per_event().nodes().len();
        for (i, node) in sd.nodes().iter().enumerate() {
            assert_eq!(node.event, i / per);
            for &p in &sd.preds()[i] {
                assert_eq!(p / per, i / per, "no cross-event edges at node {i}");
                assert!(p < i, "edges ascend within an event");
            }
        }
        assert_eq!(sd.node_label(0), "a/#0");
        assert_eq!(sd.event_offset(2), 2 * per);
        let topo = sd.topological_order().unwrap();
        assert!(sd.is_linearization(&topo));
    }

    #[test]
    fn super_dag_empty_batch() {
        let sd = SuperDag::union(&[]);
        assert!(sd.is_empty());
        assert_eq!(sd.topological_order().unwrap(), Vec::<usize>::new());
        assert!(sd.is_linearization(&[]));
    }

    #[test]
    fn super_dag_linearization_violations_are_reported() {
        let sd = SuperDag::union(&["a".into(), "b".into()]);
        let mut topo = sd.topological_order().unwrap();
        let mut rev = topo.clone();
        rev.reverse();
        assert!(!sd.is_linearization(&rev));
        assert!(sd
            .linearization_violations(&topo[1..])
            .iter()
            .any(|v| v.contains("missing")));
        assert!(sd
            .linearization_violations(&[sd.len() + 7])
            .iter()
            .any(|v| v.contains("out of range")));
        topo.push(topo[0]);
        assert!(sd
            .linearization_violations(&topo)
            .iter()
            .any(|v| v.contains("twice")));
    }

    #[test]
    fn super_dag_ranks_scale_with_event_weights() {
        let sd = SuperDag::union(&["big".into(), "small".into()]);
        let per = sd.per_event().nodes().len();
        let ranks =
            sd.downward_ranks(|event, _| Duration::from_secs(if event == 0 { 10 } else { 1 }));
        // Uniform per-event weights: event 0's copy of every node ranks
        // exactly 10x event 1's copy.
        for k in 0..per {
            assert_eq!(ranks[k], ranks[per + k] * 10, "node {k}");
        }
        // Process #1 heads the depth-8 unit-weight critical path, so its
        // rank is the whole chain.
        let cp = ProcessDag::optimized().critical_path(|_| Duration::from_secs(1));
        let idx1 = sd.per_event().nodes().iter().position(|&p| p == 1).unwrap();
        assert_eq!(ranks[per + idx1], cp.length);
    }

    #[test]
    fn io_lanes_follow_process_kinds() {
        let dag = ProcessDag::optimized();
        let lanes = dag.io_lanes();
        assert_eq!(lanes.len(), dag.nodes().len());
        let io_nodes: Vec<u8> = dag
            .nodes()
            .iter()
            .zip(&lanes)
            .filter(|(_, &io)| io)
            .map(|(&p, _)| p)
            .collect();
        // HeavyIo (#1, #3, #19) and Plotting (#9, #15, #18) within the
        // optimized 17-node graph.
        assert_eq!(io_nodes, vec![1, 3, 9, 15, 18, 19]);

        let sd = SuperDag::union(&["a".into(), "b".into()]);
        let flat = sd.io_lanes();
        assert_eq!(flat.len(), sd.len());
        let per = sd.per_event().nodes().len();
        assert_eq!(&flat[..per], &flat[per..], "events replicate the hints");
        assert_eq!(&flat[..per], &lanes[..]);
    }

    #[test]
    fn edges_are_labeled_with_hazards() {
        let dag = ProcessDag::optimized();
        // The WAR edge that forces default filtering before the FPL/FSL
        // analysis rewrites the filter parameters.
        assert!(dag.edges().iter().any(|e| e.from.0 == 4
            && e.to.0 == 10
            && e.artifact == "filter-params"
            && e.kind == EdgeKind::War));
        // The WAW chain on the run flags.
        assert!(dag
            .edges()
            .iter()
            .any(|e| e.from.0 == 0 && e.to.0 == 11 && e.kind == EdgeKind::Waw));
    }
}
