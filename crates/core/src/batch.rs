//! Multi-event batch processing.
//!
//! The observatory does not process one event in isolation: records arrive
//! in batches (the Salvadoran repository logged 241 events in a single
//! month). [`run_batch`] drives the pipeline over many event input
//! directories, each into its own work directory, and aggregates the
//! reports — the unit the paper's "scaling our approach to larger
//! experimental accelerographic datasets" future work asks about.

use crate::config::PipelineConfig;
use crate::context::RunContext;
use crate::error::{PipelineError, Result};
use crate::executor::run_pipeline_labeled;
use crate::report::{ImplKind, RunReport};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// One event to process: an input directory of `<station>.v1` files.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Event label used in reports.
    pub label: String,
    /// Input directory.
    pub input_dir: PathBuf,
}

/// Aggregated result of a batch run.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-event reports, in input order.
    pub events: Vec<RunReport>,
    /// Total wall time of the whole batch.
    pub total: Duration,
}

impl BatchReport {
    /// Total data points processed.
    pub fn data_points(&self) -> usize {
        self.events.iter().map(|r| r.data_points).sum()
    }

    /// Aggregate throughput (points per second of batch wall time).
    pub fn throughput(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.data_points() as f64 / self.total.as_secs_f64()
    }

    /// Formats a per-event summary table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{:<16} {:>8} {:>10} {:>10}\n",
            "event", "files", "points", "time (s)"
        );
        for r in &self.events {
            out.push_str(&format!(
                "{:<16} {:>8} {:>10} {:>10.3}\n",
                r.event,
                r.v1_files,
                r.data_points,
                r.total.as_secs_f64()
            ));
        }
        out.push_str(&format!(
            "batch total: {:.3}s, {:.0} points/s\n",
            self.total.as_secs_f64(),
            self.throughput()
        ));
        out
    }
}

/// Processes every event in order with the chosen implementation. Each
/// event gets `work_root/<label>/` as its work directory. Fails fast on the
/// first event error (a malformed event must not silently vanish from the
/// batch).
pub fn run_batch(
    items: &[BatchItem],
    work_root: &Path,
    config: &PipelineConfig,
    kind: ImplKind,
) -> Result<BatchReport> {
    let mut events = Vec::with_capacity(items.len());
    let mut total = Duration::ZERO;
    for item in items {
        if item.label.is_empty() || item.label.contains(['/', '\\']) {
            return Err(PipelineError::Config(format!(
                "bad batch label {:?}",
                item.label
            )));
        }
        let work = work_root.join(&item.label);
        let ctx = RunContext::new(&item.input_dir, &work, config.clone())?;
        let report = run_pipeline_labeled(&ctx, kind, &item.label)?;
        total += report.total;
        events.push(report);
    }
    Ok(BatchReport { events, total })
}

/// Discovers batch items under a root directory: every subdirectory that
/// contains at least one `.v1` file becomes an item (sorted by name).
pub fn discover_batch(root: &Path) -> Result<Vec<BatchItem>> {
    let mut items = Vec::new();
    let entries = std::fs::read_dir(root).map_err(|e| PipelineError::io(root, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PipelineError::io(root, e))?;
        if !entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
            continue;
        }
        let dir = entry.path();
        let has_v1 = std::fs::read_dir(&dir)
            .map_err(|e| PipelineError::io(&dir, e))?
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".v1"));
        if has_v1 {
            items.push(BatchItem {
                label: entry.file_name().to_string_lossy().into_owned(),
                input_dir: dir,
            });
        }
    }
    items.sort_by(|a, b| a.label.cmp(&b.label));
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage_two_events(base: &Path) -> Vec<BatchItem> {
        let mut items = Vec::new();
        for (i, label) in ["ev-a", "ev-b"].iter().enumerate() {
            let dir = base.join("batch").join(label);
            std::fs::create_dir_all(&dir).unwrap();
            let event = arp_synth::paper_event(i, 0.002);
            arp_synth::write_event_inputs(&event, &dir).unwrap();
            items.push(BatchItem {
                label: label.to_string(),
                input_dir: dir,
            });
        }
        items
    }

    #[test]
    fn batch_processes_every_event() {
        let base = std::env::temp_dir().join(format!("arp-batch-{}", std::process::id()));
        let items = stage_two_events(&base);
        let report = run_batch(
            &items,
            &base.join("work"),
            &PipelineConfig::fast(),
            ImplKind::FullyParallel,
        )
        .unwrap();
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events[0].event, "ev-a");
        assert!(report.data_points() > 0);
        assert!(report.throughput() > 0.0);
        let table = report.to_table();
        assert!(table.contains("ev-b"));
        // Both work dirs exist with products.
        assert!(base.join("work/ev-a").join("max-values.txt").exists());
        assert!(base.join("work/ev-b").join("max-values.txt").exists());
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn discover_finds_only_event_dirs() {
        let base = std::env::temp_dir().join(format!("arp-batch-disc-{}", std::process::id()));
        let items_in = stage_two_events(&base);
        // A distractor directory without .v1 files and a stray file.
        std::fs::create_dir_all(base.join("batch/not-an-event")).unwrap();
        std::fs::write(base.join("batch/README.txt"), "hi").unwrap();

        let found = discover_batch(&base.join("batch")).unwrap();
        assert_eq!(found.len(), items_in.len());
        assert_eq!(found[0].label, "ev-a");
        assert_eq!(found[1].label, "ev-b");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn batch_fails_fast_on_bad_event() {
        let base = std::env::temp_dir().join(format!("arp-batch-bad-{}", std::process::id()));
        let mut items = stage_two_events(&base);
        // Corrupt the second event.
        let victim_dir = &items[1].input_dir;
        let victim = std::fs::read_dir(victim_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".v1"))
            .unwrap()
            .path();
        std::fs::write(&victim, "garbage").unwrap();
        items.rotate_left(0);
        let err = run_batch(
            &items,
            &base.join("work"),
            &PipelineConfig::fast(),
            ImplKind::SequentialOptimized,
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Format(_)), "{err}");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn bad_labels_rejected() {
        let items = vec![BatchItem {
            label: "has/slash".into(),
            input_dir: PathBuf::from("/tmp"),
        }];
        let base = std::env::temp_dir().join("arp-batch-label");
        let err = run_batch(
            &items,
            &base,
            &PipelineConfig::fast(),
            ImplKind::FullyParallel,
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)));
    }

    #[test]
    fn missing_root_errors() {
        assert!(discover_batch(Path::new("/nonexistent/arp-batch")).is_err());
    }
}
