//! Multi-event batch processing.
//!
//! The observatory does not process one event in isolation: records arrive
//! in batches (the Salvadoran repository logged 241 events in a single
//! month). [`run_batch`] drives the pipeline over many event input
//! directories, each into its own work directory, and aggregates the
//! reports — the unit the paper's "scaling our approach to larger
//! experimental accelerographic datasets" future work asks about.
//!
//! Two batch schedules are available:
//!
//! * the **per-event loop** — every [`ImplKind`] except
//!   [`ImplKind::BatchDag`] processes events strictly one at a time, so
//!   the pool idles in the tail of each event;
//! * the **cross-event super-DAG** ([`run_batch_dag`], selected by
//!   [`ImplKind::BatchDag`]) — the per-event dependency graphs are unioned
//!   into one [`SuperDag`] and submitted to the worker pool in a single
//!   call, so small events fill the idle tails of big ones. The
//!   [`BatchDagReport`] decomposes the win into intra-event parallelism
//!   vs cross-event overlap.

use crate::config::{PipelineConfig, TimingModel};
use crate::context::RunContext;
use crate::dag::SuperDag;
use crate::error::{PipelineError, Result};
use crate::executor::{
    dag_node_mode, dag_schedule_report, measure_input_shape, run_pipeline_labeled, run_process,
};
use crate::process;
use crate::report::{ImplKind, ProcessTiming, RunReport};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Live super-DAG frontier: per-node execution state for the batch run in
/// flight, published so `/statusz` and postmortem bundles can render
/// per-event progress while (or at the instant) the batch runs.
pub(crate) mod progress {
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::Arc;

    pub(crate) const PENDING: u8 = 0;
    pub(crate) const RUNNING: u8 = 1;
    pub(crate) const COMPLETED: u8 = 2;
    pub(crate) const FAILED: u8 = 3;
    pub(crate) const SKIPPED: u8 = 4;

    /// Node states of one batch run (event-major flat indexing, aligned
    /// with [`crate::dag::SuperDag::nodes`]).
    pub(crate) struct BatchProgress {
        labels: Vec<String>,
        node_event: Vec<usize>,
        states: Vec<AtomicU8>,
    }

    impl BatchProgress {
        pub(crate) fn set(&self, node: usize, state: u8) {
            self.states[node].store(state, Ordering::Relaxed);
        }
    }

    static CURRENT: Mutex<Option<Arc<BatchProgress>>> = Mutex::new(None);

    /// Publishes a fresh all-pending frontier for a starting batch.
    pub(crate) fn install(labels: Vec<String>, node_event: Vec<usize>) -> Arc<BatchProgress> {
        let p = Arc::new(BatchProgress {
            states: (0..node_event.len())
                .map(|_| AtomicU8::new(PENDING))
                .collect(),
            labels,
            node_event,
        });
        *CURRENT.lock() = Some(p.clone());
        p
    }

    /// Retires the published frontier (batch finished or unwound).
    pub(crate) fn clear() {
        *CURRENT.lock() = None;
    }

    /// Drop guard so the frontier is retired on every exit path.
    pub(crate) struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            clear();
        }
    }

    /// JSON snapshot of the live frontier — per-event pending / running /
    /// completed / failed / skipped node counts — or `None` when no batch
    /// is in flight.
    pub fn frontier_json() -> Option<String> {
        let guard = CURRENT.lock();
        let p = guard.as_ref()?;
        let mut counts = vec![[0u64; 5]; p.labels.len()];
        for (i, st) in p.states.iter().enumerate() {
            let s = st.load(Ordering::Relaxed).min(SKIPPED) as usize;
            counts[p.node_event[i]][s] += 1;
        }
        let mut out = String::from("{\"events\":[");
        for (e, label) in p.labels.iter().enumerate() {
            if e > 0 {
                out.push(',');
            }
            let c = counts[e];
            out.push_str(&format!(
                "{{\"label\":{},\"pending\":{},\"running\":{},\"completed\":{},\"failed\":{},\"skipped\":{}}}",
                arp_trace::json::escape(label),
                c[PENDING as usize],
                c[RUNNING as usize],
                c[COMPLETED as usize],
                c[FAILED as usize],
                c[SKIPPED as usize],
            ));
        }
        out.push_str("]}");
        Some(out)
    }
}

pub use progress::frontier_json;

/// Extracts the message from a caught panic payload so it survives into
/// [`PipelineError::Panic`] instead of being dropped at the unwind boundary.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Fault injection for the flight-recorder test path: when the
/// `ARP_INJECT_PANIC` environment variable names this node's label
/// (`<event>/#<process>`), the node panics mid-batch. Read freshly per
/// node so a harness can target any node without rebuilding.
fn injected_panic(node_label: &str) -> bool {
    std::env::var("ARP_INJECT_PANIC").is_ok_and(|v| v == node_label)
}

/// One event to process: an input directory of `<station>.v1` files.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Event label used in reports.
    pub label: String,
    /// Input directory.
    pub input_dir: PathBuf,
}

/// How the super-DAG scheduler orders simultaneously-ready nodes — the
/// batch's fairness knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReadyOrder {
    /// Critical-path weight: whenever several nodes are ready at once they
    /// are dispatched longest-remaining-work first (downward rank weighted
    /// by event size). Long chains start early, and one huge event cannot
    /// starve the rest — its nodes outrank others only while its remaining
    /// work genuinely is longer.
    #[default]
    CriticalPath,
    /// Flat submission (event-major index) order: the first event's ready
    /// nodes always queue ahead of later events'. The unfair baseline the
    /// critical-path knob is measured against.
    Submission,
}

impl ReadyOrder {
    /// Display name (batch report tables).
    pub fn label(self) -> &'static str {
        match self {
            ReadyOrder::CriticalPath => "critical-path",
            ReadyOrder::Submission => "submission",
        }
    }
}

/// Schedule analysis of a cross-event super-DAG batch run, decomposing the
/// batch speedup into its two independent sources.
///
/// All makespans are computed from the *same* per-node durations by the
/// deterministic scheduling simulator, so the comparison is free of
/// measurement noise:
///
/// * `node_total` — every node of every event, back to back;
/// * `Σ event_makespans` — the **sequential-per-event DAG baseline**: each
///   event scheduled as its own DAG (intra-event parallelism only), events
///   run one after another — what `run_batch --impl dag` did before the
///   super-DAG;
/// * `batch_makespan` — the whole super-graph scheduled in one call.
///
/// `node_total − Σ event_makespans` is the intra-event saving;
/// `Σ event_makespans − batch_makespan` is the cross-event overlap the
/// super-DAG adds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchDagReport {
    /// Per-event DAG makespans (same order as [`BatchReport::events`]):
    /// what each event costs scheduled alone on the same threads.
    pub event_makespans: Vec<Duration>,
    /// Makespan of the unioned super-graph on the same threads, clamped to
    /// the sequential-per-event baseline (running events back to back is
    /// always a valid schedule, so the union can never report a slowdown).
    pub batch_makespan: Duration,
    /// Sum of all node durations across all events.
    pub node_total: Duration,
    /// The longest per-event critical path — the floor no schedule beats.
    pub critical_path_len: Duration,
    /// Thread count the schedules were computed for.
    pub threads: usize,
    /// Ready-queue ordering the run used.
    pub order: ReadyOrder,
    /// I/O-lane width the lane comparison was computed for (0 = lane off).
    #[serde(default)]
    pub io_threads: usize,
    /// Makespan of the same super-graph with the pure-I/O nodes routed to
    /// a dedicated `io_threads`-wide lane ([`BatchDagReport::batch_makespan`]
    /// is the lane-off figure computed from the same durations). Equal to
    /// `batch_makespan` when `io_threads` is 0.
    #[serde(default)]
    pub lane_makespan: Duration,
}

impl BatchDagReport {
    /// The sequential-per-event DAG baseline: Σ of per-event makespans.
    pub fn sequential_baseline(&self) -> Duration {
        self.event_makespans.iter().sum()
    }

    /// Virtual time recovered by overlapping events in one super-graph
    /// (what the batch scheduler buys beyond a per-event DAG loop).
    pub fn cross_event_overlap(&self) -> Duration {
        self.sequential_baseline()
            .saturating_sub(self.batch_makespan)
    }

    /// Virtual time recovered by each event's own DAG parallelism relative
    /// to running every node back to back.
    pub fn intra_event_saving(&self) -> Duration {
        self.node_total.saturating_sub(self.sequential_baseline())
    }

    /// Speedup of the super-graph schedule over the sequential-per-event
    /// baseline (1.0 = no cross-event overlap).
    pub fn overlap_speedup(&self) -> f64 {
        if self.batch_makespan.is_zero() {
            return 0.0;
        }
        self.sequential_baseline().as_secs_f64() / self.batch_makespan.as_secs_f64()
    }

    /// Speedup of the super-graph schedule over the fully serialized batch.
    pub fn batch_speedup(&self) -> f64 {
        if self.batch_makespan.is_zero() {
            return 0.0;
        }
        self.node_total.as_secs_f64() / self.batch_makespan.as_secs_f64()
    }

    /// Virtual time the dedicated I/O lane recovers over the lane-off
    /// super-graph schedule (zero when the lane is disabled or buys
    /// nothing).
    pub fn lane_saving(&self) -> Duration {
        self.batch_makespan.saturating_sub(self.lane_makespan)
    }

    /// Formats the speedup decomposition.
    pub fn to_table(&self) -> String {
        format!(
            "super-DAG schedule on {} threads ({} ready order):\n\
             \x20 serialized nodes   {:>10.3}s\n\
             \x20 per-event DAG loop {:>10.3}s  (intra-event parallelism saves {:.3}s)\n\
             \x20 super-DAG batch    {:>10.3}s  (cross-event overlap saves {:.3}s)\n\
             \x20 with I/O lane ({:>2}) {:>10.3}s  (lane-on vs lane-off saves {:.3}s)\n\
             \x20 critical-path floor{:>10.3}s\n\
             \x20 batch speedup {:.2}x serialized, {:.2}x per-event loop\n",
            self.threads,
            self.order.label(),
            self.node_total.as_secs_f64(),
            self.sequential_baseline().as_secs_f64(),
            self.intra_event_saving().as_secs_f64(),
            self.batch_makespan.as_secs_f64(),
            self.cross_event_overlap().as_secs_f64(),
            self.io_threads,
            self.lane_makespan.as_secs_f64(),
            self.lane_saving().as_secs_f64(),
            self.critical_path_len.as_secs_f64(),
            self.batch_speedup(),
            self.overlap_speedup(),
        )
    }
}

/// Aggregated result of a batch run.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-event reports, in input order.
    pub events: Vec<RunReport>,
    /// Total wall time of the whole batch. For the per-event loop this is
    /// the sum of event times; for [`run_batch_dag`] it is the batch
    /// makespan (events overlap, so no per-event wall times exist).
    pub total: Duration,
    /// Super-DAG schedule analysis ([`ImplKind::BatchDag`] runs only).
    pub dag: Option<BatchDagReport>,
}

impl BatchReport {
    /// Total data points processed.
    pub fn data_points(&self) -> usize {
        self.events.iter().map(|r| r.data_points).sum()
    }

    /// Aggregate throughput (points per second of batch wall time).
    pub fn throughput(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.data_points() as f64 / self.total.as_secs_f64()
    }

    /// Speedup of the batch wall time over the sum of per-event times:
    /// 1.0 for the per-event loop (the batch *is* the sum), and the
    /// cross-event overlap factor for a super-DAG run.
    pub fn speedup(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        let event_sum: Duration = self.events.iter().map(|r| r.total).sum();
        event_sum.as_secs_f64() / self.total.as_secs_f64()
    }

    /// Formats a per-event summary table, closed by the aggregate row
    /// (total shape, batch wall time, throughput and speedup over the
    /// per-event sum) and, for super-DAG runs, the schedule decomposition.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{:<16} {:>8} {:>10} {:>10}\n",
            "event", "files", "points", "time (s)"
        );
        for r in &self.events {
            out.push_str(&format!(
                "{:<16} {:>8} {:>10} {:>10.3}\n",
                r.event,
                r.v1_files,
                r.data_points,
                r.total.as_secs_f64()
            ));
        }
        let files: usize = self.events.iter().map(|r| r.v1_files).sum();
        out.push_str(&format!(
            "{:<16} {:>8} {:>10} {:>10.3}\n",
            "batch",
            files,
            self.data_points(),
            self.total.as_secs_f64()
        ));
        out.push_str(&format!(
            "aggregate: {:.0} points/s, {:.2}x vs per-event sum\n",
            self.throughput(),
            self.speedup()
        ));
        if let Some(dag) = &self.dag {
            out.push_str(&dag.to_table());
        }
        out
    }
}

/// Rejects labels that would escape or collide inside the work root: every
/// event's work directory is `work_root/<label>/`, so labels must be
/// non-empty, path-separator-free, and unique.
fn validate_labels(items: &[BatchItem]) -> Result<()> {
    for (i, item) in items.iter().enumerate() {
        if item.label.is_empty() || item.label.contains(['/', '\\']) {
            return Err(PipelineError::Config(format!(
                "bad batch label {:?}",
                item.label
            )));
        }
        if items[..i].iter().any(|other| other.label == item.label) {
            return Err(PipelineError::Config(format!(
                "duplicate batch label {:?}",
                item.label
            )));
        }
    }
    Ok(())
}

/// Processes every event with the chosen implementation. Each event gets
/// `work_root/<label>/` as its work directory. Fails fast on the first
/// event error (a malformed event must not silently vanish from the
/// batch).
///
/// [`ImplKind::BatchDag`] routes to [`run_batch_dag`] (one cross-event
/// super-graph, default fairness); every other kind runs the per-event
/// loop.
pub fn run_batch(
    items: &[BatchItem],
    work_root: &Path,
    config: &PipelineConfig,
    kind: ImplKind,
) -> Result<BatchReport> {
    validate_labels(items)?;
    if kind == ImplKind::BatchDag {
        return run_batch_dag(items, work_root, config, ReadyOrder::default());
    }
    let mut events = Vec::with_capacity(items.len());
    let mut total = Duration::ZERO;
    for item in items {
        let work = work_root.join(&item.label);
        let ctx = RunContext::new(&item.input_dir, &work, config.clone())?;
        let report = run_pipeline_labeled(&ctx, kind, &item.label)?;
        total += report.total;
        events.push(report);
    }
    Ok(BatchReport {
        events,
        total,
        dag: None,
    })
}

/// Processes a whole batch as **one cross-event super-DAG**: the per-event
/// dependency graphs are unioned ([`SuperDag::union`], nodes namespaced by
/// event label, no cross-event edges, one work directory per event) and
/// submitted to the shared worker pool in a single scheduler call, so small
/// events fill the idle tails of big ones.
///
/// In measured timing mode the nodes of *all* events genuinely run
/// concurrently, dispatched by `order` (critical-path priority by
/// default). In simulated mode every node executes sequentially — so its
/// virtual duration can be measured cleanly — and the super-graph schedule
/// is replayed in virtual time on the configured thread count. Either way
/// the attached [`BatchDagReport`] decomposes the batch speedup
/// deterministically from the same per-node durations.
///
/// Products are byte-identical to a per-event sequential run: the schedule
/// changes *when* each process runs, never what it writes.
pub fn run_batch_dag(
    items: &[BatchItem],
    work_root: &Path,
    config: &PipelineConfig,
    order: ReadyOrder,
) -> Result<BatchReport> {
    validate_labels(items)?;
    let started = Instant::now();
    let mut ctxs = Vec::with_capacity(items.len());
    let mut shapes = Vec::with_capacity(items.len());
    for item in items {
        let ctx = RunContext::new(&item.input_dir, work_root.join(&item.label), config.clone())?;
        shapes.push(measure_input_shape(&ctx)?);
        ctxs.push(ctx);
    }
    let labels: Vec<String> = items.iter().map(|i| i.label.clone()).collect();
    let super_dag = SuperDag::union(&labels);
    let per = super_dag.per_event().nodes().len();

    // Publish the live frontier for /statusz and postmortem capture; the
    // guard retires it on every exit path, including unwinds.
    let node_event: Vec<usize> = super_dag.nodes().iter().map(|n| n.event).collect();
    let progress = progress::install(labels.clone(), node_event);
    let _progress_guard = progress::Guard;
    arp_diag::info(|| {
        format!(
            "batch start: {} events, {} super-DAG nodes, {} order",
            items.len(),
            super_dag.len(),
            order.label()
        )
    });

    // Super-DAG node-state accounting: admitted up front, pending drains
    // node by node, an event retires when its last node completes. The
    // enabled flag is sampled once so admission and retirement stay
    // balanced even if collection is toggled mid-run.
    let metrics_on = arp_metrics::enabled();
    if metrics_on {
        crate::metrics::events_admitted().add(items.len() as u64);
        crate::metrics::nodes_pending().add(super_dag.len() as i64);
    }
    let node_done = |event_remaining: &AtomicUsize| {
        crate::metrics::nodes_completed().inc();
        crate::metrics::nodes_pending().sub(1);
        if event_remaining.fetch_sub(1, Ordering::Relaxed) == 1 {
            crate::metrics::events_retired().inc();
        }
    };
    let remaining: Vec<AtomicUsize> = items.iter().map(|_| AtomicUsize::new(per)).collect();

    let (durations, threads) = match config.timing {
        TimingModel::Simulated { threads } => {
            // Sequential execution in per-event topological (numeric)
            // order; durations are net of already-credited inner savings.
            let mut durations = vec![Duration::ZERO; super_dag.len()];
            for (e, ctx) in ctxs.iter().enumerate() {
                for (k, &p) in super_dag.per_event().nodes().iter().enumerate() {
                    let flat = super_dag.event_offset(e) + k;
                    let (parallel, staged) = dag_node_mode(p);
                    let saved0 = ctx.saved_snapshot();
                    let t0 = Instant::now();
                    progress.set(flat, progress::RUNNING);
                    crate::executor::run_process_span(
                        ctx,
                        p,
                        parallel,
                        staged,
                        &labels[e],
                        shapes[e].1 as u64 * 8,
                    )
                    .map_err(|err| {
                        progress.set(flat, progress::FAILED);
                        PipelineError::Node {
                            label: super_dag.node_label(flat),
                            source: Box::new(err),
                        }
                    })?;
                    progress.set(flat, progress::COMPLETED);
                    durations[flat] = t0.elapsed().saturating_sub(ctx.saved_snapshot() - saved0);
                    if metrics_on {
                        node_done(&remaining[e]);
                    }
                }
            }
            (durations, threads)
        }
        TimingModel::Measured => {
            // Node weight for the fairness knob: an event's data points, a
            // static proxy for its per-node cost, so ranks measure
            // remaining *work*, not just remaining depth.
            let priority: Vec<u64> = match order {
                ReadyOrder::CriticalPath => super_dag
                    .downward_ranks(|e, _| Duration::from_nanos(shapes[e].1.max(1) as u64))
                    .iter()
                    .map(|d| d.as_nanos() as u64)
                    .collect(),
                ReadyOrder::Submission => Vec::new(),
            };
            let timings: Mutex<Vec<(usize, Duration)>> =
                Mutex::new(Vec::with_capacity(super_dag.len()));
            let failures: Mutex<Vec<(usize, PipelineError)>> = Mutex::new(Vec::new());
            let tasks: Vec<arp_par::BorrowedTask<'_>> = super_dag
                .nodes()
                .iter()
                .enumerate()
                .map(|(i, node)| {
                    let ctx = &ctxs[node.event];
                    let timings = &timings;
                    let failures = &failures;
                    let label = &labels[node.event];
                    let bytes = shapes[node.event].1 as u64 * 8;
                    let p = node.process.0;
                    let event_remaining = &remaining[node.event];
                    let node_done = &node_done;
                    let progress = &progress;
                    let node_label = super_dag.node_label(i);
                    Box::new(move || {
                        // After any failure the rest of the batch is
                        // skipped: the failing event's artifacts cannot be
                        // trusted, and fail-fast batches must not bury an
                        // error under five more events of work. A skipped
                        // node still reaches a terminal state, so the
                        // pending gauge drains either way.
                        if !failures.lock().is_empty() {
                            progress.set(i, progress::SKIPPED);
                            if metrics_on {
                                node_done(event_remaining);
                            }
                            return;
                        }
                        progress.set(i, progress::RUNNING);
                        crate::executor::annotate_node(p, label, bytes);
                        arp_diag::workers::node_started(&node_label, label, p);
                        let (parallel, staged) = dag_node_mode(p);
                        let t0 = Instant::now();
                        // The unwind boundary preserves the panic payload:
                        // a panicking kernel becomes a fail-fast
                        // `PipelineError::Panic` that names the message,
                        // instead of poisoning the pool's DAG run. The
                        // process-global panic hook (flight recorder) has
                        // already captured the bundle by the time the
                        // payload lands here.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                if injected_panic(&node_label) {
                                    panic!("injected panic at {node_label} (ARP_INJECT_PANIC)");
                                }
                                run_process(ctx, p, parallel, staged)
                            }))
                            .unwrap_or_else(|payload| {
                                Err(PipelineError::Panic(panic_message(&*payload)))
                            });
                        arp_diag::workers::node_finished();
                        arp_diag::clear_context();
                        match outcome {
                            Ok(()) => {
                                progress.set(i, progress::COMPLETED);
                                timings.lock().push((i, t0.elapsed()));
                            }
                            Err(e) => {
                                arp_diag::error(|| format!("node {node_label} failed: {e}"));
                                progress.set(i, progress::FAILED);
                                failures.lock().push((i, e));
                            }
                        }
                        if metrics_on {
                            node_done(event_remaining);
                        }
                    }) as arp_par::BorrowedTask<'_>
                })
                .collect();
            // Pure-I/O nodes carry a lane hint so the shared pool can keep
            // disk-bound work off the compute workers; with `--io-threads 0`
            // the hints are inert and this is exactly `run_dag_prioritized`.
            arp_par::ThreadPool::global().run_dag_lanes(
                tasks,
                super_dag.preds(),
                &priority,
                &super_dag.io_lanes(),
            );

            let mut fails = failures.into_inner();
            fails.sort_by_key(|(i, _)| *i);
            if let Some((i, e)) = fails.into_iter().next() {
                return Err(PipelineError::Node {
                    label: super_dag.node_label(i),
                    source: Box::new(e),
                });
            }
            let mut durations = vec![Duration::ZERO; super_dag.len()];
            for (i, d) in timings.into_inner() {
                durations[i] = d;
            }
            (durations, arp_par::ThreadPool::global().threads())
        }
    };

    if config.emit_rotd {
        for ctx in &ctxs {
            process::rotdgen::generate_rotd(ctx, true)?;
        }
    }

    // Per-event schedule analysis from the shared durations.
    let mut events = Vec::with_capacity(items.len());
    let mut event_makespans = Vec::with_capacity(items.len());
    let mut per_event_durations = Vec::with_capacity(items.len());
    for (e, _) in ctxs.iter().enumerate() {
        let offset = super_dag.event_offset(e);
        let ds: Vec<Duration> = durations[offset..offset + per].to_vec();
        let dag = dag_schedule_report(super_dag.per_event(), &ds, threads);
        event_makespans.push(dag.dag_makespan);
        let processes: Vec<ProcessTiming> = super_dag
            .per_event()
            .nodes()
            .iter()
            .zip(&ds)
            .map(|(&p, &elapsed)| ProcessTiming {
                process: crate::process::ProcessId(p),
                elapsed,
            })
            .collect();
        events.push(RunReport {
            implementation: ImplKind::BatchDag,
            event: labels[e].clone(),
            v1_files: shapes[e].0,
            data_points: shapes[e].1,
            // No per-event wall time exists when events overlap; report
            // what the event costs scheduled alone on the same threads.
            total: dag.dag_makespan,
            processes,
            stages: Vec::new(),
            dag: Some(dag),
            pool: None,
            dsp_backend: config.dsp_backend.to_string(),
        });
        per_event_durations.push(ds);
    }

    let baseline: Duration = event_makespans.iter().sum();
    // Event 0's block of the flat predecessor table is the per-event
    // index-based graph every event replicates.
    let per_event_preds: Vec<Vec<Vec<usize>>> =
        vec![super_dag.preds()[..per].to_vec(); items.len()];
    // Clamp like `dag_schedule_report`: back-to-back events are always a
    // valid schedule, so the union must never report a slowdown.
    let batch_makespan =
        arp_par::super_dag_makespan(&per_event_durations, &per_event_preds, threads).min(baseline);
    // Lane comparison: same durations and graph, but the pure-I/O nodes are
    // restricted to a dedicated `io_threads`-wide lane while the compute
    // lane keeps its full width.
    let io_threads = match config.timing {
        TimingModel::Simulated { .. } => arp_par::default_io_threads(threads),
        TimingModel::Measured => arp_par::ThreadPool::global().io_threads(),
    };
    let per_event_lanes: Vec<Vec<bool>> = vec![super_dag.per_event().io_lanes(); items.len()];
    let lane_makespan = arp_par::super_dag_makespan_lanes(
        &per_event_durations,
        &per_event_preds,
        threads,
        io_threads,
        &per_event_lanes,
    )
    .min(baseline);
    let critical_path_len = events
        .iter()
        .filter_map(|r| r.dag.as_ref())
        .map(|d| d.critical_path_len)
        .max()
        .unwrap_or(Duration::ZERO);
    let dag = BatchDagReport {
        event_makespans,
        batch_makespan,
        node_total: durations.iter().sum(),
        critical_path_len,
        threads,
        order,
        io_threads,
        lane_makespan,
    };
    // Simulated runs report the virtual batch makespan (that is the whole
    // point of the mode); measured runs report the real wall time.
    let total = match config.timing {
        TimingModel::Simulated { .. } => dag.batch_makespan,
        TimingModel::Measured => started.elapsed(),
    };
    Ok(BatchReport {
        events,
        total,
        dag: Some(dag),
    })
}

/// Discovers batch items under a root directory: every subdirectory that
/// contains at least one `.v1` file becomes an item (sorted by name).
pub fn discover_batch(root: &Path) -> Result<Vec<BatchItem>> {
    let mut items = Vec::new();
    let entries = std::fs::read_dir(root).map_err(|e| PipelineError::io(root, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PipelineError::io(root, e))?;
        if !entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
            continue;
        }
        let dir = entry.path();
        let has_v1 = std::fs::read_dir(&dir)
            .map_err(|e| PipelineError::io(&dir, e))?
            .filter_map(|e| e.ok())
            .any(|e| e.file_name().to_string_lossy().ends_with(".v1"));
        if has_v1 {
            items.push(BatchItem {
                label: entry.file_name().to_string_lossy().into_owned(),
                input_dir: dir,
            });
        }
    }
    items.sort_by(|a, b| a.label.cmp(&b.label));
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage_two_events(base: &Path) -> Vec<BatchItem> {
        let mut items = Vec::new();
        for (i, label) in ["ev-a", "ev-b"].iter().enumerate() {
            let dir = base.join("batch").join(label);
            std::fs::create_dir_all(&dir).unwrap();
            let event = arp_synth::paper_event(i, 0.002);
            arp_synth::write_event_inputs(&event, &dir).unwrap();
            items.push(BatchItem {
                label: label.to_string(),
                input_dir: dir,
            });
        }
        items
    }

    #[test]
    fn batch_processes_every_event() {
        let base = std::env::temp_dir().join(format!("arp-batch-{}", std::process::id()));
        let items = stage_two_events(&base);
        let report = run_batch(
            &items,
            &base.join("work"),
            &PipelineConfig::fast(),
            ImplKind::FullyParallel,
        )
        .unwrap();
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.events[0].event, "ev-a");
        assert!(report.data_points() > 0);
        assert!(report.throughput() > 0.0);
        let table = report.to_table();
        assert!(table.contains("ev-b"));
        // Both work dirs exist with products.
        assert!(base.join("work/ev-a").join("max-values.txt").exists());
        assert!(base.join("work/ev-b").join("max-values.txt").exists());
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn discover_finds_only_event_dirs() {
        let base = std::env::temp_dir().join(format!("arp-batch-disc-{}", std::process::id()));
        let items_in = stage_two_events(&base);
        // A distractor directory without .v1 files and a stray file.
        std::fs::create_dir_all(base.join("batch/not-an-event")).unwrap();
        std::fs::write(base.join("batch/README.txt"), "hi").unwrap();

        let found = discover_batch(&base.join("batch")).unwrap();
        assert_eq!(found.len(), items_in.len());
        assert_eq!(found[0].label, "ev-a");
        assert_eq!(found[1].label, "ev-b");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn batch_fails_fast_on_bad_event() {
        let base = std::env::temp_dir().join(format!("arp-batch-bad-{}", std::process::id()));
        let mut items = stage_two_events(&base);
        // Corrupt the second event.
        let victim_dir = &items[1].input_dir;
        let victim = std::fs::read_dir(victim_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".v1"))
            .unwrap()
            .path();
        std::fs::write(&victim, "garbage").unwrap();
        items.rotate_left(0);
        let err = run_batch(
            &items,
            &base.join("work"),
            &PipelineConfig::fast(),
            ImplKind::SequentialOptimized,
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Format(_)), "{err}");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn bad_labels_rejected() {
        let items = vec![BatchItem {
            label: "has/slash".into(),
            input_dir: PathBuf::from("/tmp"),
        }];
        let base = std::env::temp_dir().join("arp-batch-label");
        let err = run_batch(
            &items,
            &base,
            &PipelineConfig::fast(),
            ImplKind::FullyParallel,
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)));
    }

    #[test]
    fn missing_root_errors() {
        assert!(discover_batch(Path::new("/nonexistent/arp-batch")).is_err());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let items = vec![
            BatchItem {
                label: "twin".into(),
                input_dir: PathBuf::from("/tmp/a"),
            },
            BatchItem {
                label: "twin".into(),
                input_dir: PathBuf::from("/tmp/b"),
            },
        ];
        let err = run_batch(
            &items,
            Path::new("/tmp/arp-batch-dup"),
            &PipelineConfig::fast(),
            ImplKind::FullyParallel,
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)), "{err}");
    }

    fn fake_event_report(event: &str, points: usize, total_ms: u64) -> RunReport {
        RunReport {
            implementation: ImplKind::SequentialOptimized,
            event: event.into(),
            v1_files: 3,
            data_points: points,
            total: Duration::from_millis(total_ms),
            processes: vec![],
            stages: vec![],
            dag: None,
            pool: None,
            dsp_backend: "auto".into(),
        }
    }

    #[test]
    fn to_table_has_aggregate_row() {
        let report = BatchReport {
            events: vec![
                fake_event_report("ev-a", 30_000, 1_500),
                fake_event_report("ev-b", 10_000, 500),
            ],
            total: Duration::from_millis(1_000),
            dag: None,
        };
        let table = report.to_table();
        // One aggregate "batch" row summing shape over the batch wall time…
        assert!(
            table.contains("batch                   6      40000      1.000"),
            "{table}"
        );
        // …and the throughput/speedup line: 40k points in 1s, 2s per-event
        // sum over a 1s batch.
        assert!(
            table.contains("aggregate: 40000 points/s, 2.00x"),
            "{table}"
        );
        assert!((report.speedup() - 2.0).abs() < 1e-9);
        assert!((report.throughput() - 40_000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_total_batch_guards() {
        let report = BatchReport {
            events: vec![fake_event_report("ev", 100, 10)],
            total: Duration::ZERO,
            dag: None,
        };
        assert_eq!(report.throughput(), 0.0);
        assert_eq!(report.speedup(), 0.0);
    }

    #[test]
    fn dag_report_decomposes_speedup() {
        let d = BatchDagReport {
            event_makespans: vec![Duration::from_millis(60), Duration::from_millis(40)],
            batch_makespan: Duration::from_millis(80),
            node_total: Duration::from_millis(200),
            critical_path_len: Duration::from_millis(50),
            threads: 4,
            order: ReadyOrder::CriticalPath,
            io_threads: 2,
            lane_makespan: Duration::from_millis(72),
        };
        assert_eq!(d.sequential_baseline(), Duration::from_millis(100));
        assert_eq!(d.cross_event_overlap(), Duration::from_millis(20));
        assert_eq!(d.intra_event_saving(), Duration::from_millis(100));
        assert_eq!(d.lane_saving(), Duration::from_millis(8));
        assert!((d.overlap_speedup() - 1.25).abs() < 1e-9);
        assert!((d.batch_speedup() - 2.5).abs() < 1e-9);
        let table = d.to_table();
        assert!(
            table.contains("4 threads (critical-path ready order)"),
            "{table}"
        );
        assert!(
            table.contains("cross-event overlap saves 0.020s"),
            "{table}"
        );
        assert!(
            table.contains("lane-on vs lane-off saves 0.008s"),
            "{table}"
        );
    }

    #[test]
    fn batch_dag_overlaps_events_in_simulated_time() {
        let base = std::env::temp_dir().join(format!("arp-batch-dag-{}", std::process::id()));
        let items = stage_two_events(&base);
        let mut config = PipelineConfig::fast();
        config.timing = TimingModel::Simulated { threads: 8 };
        // run_batch must route BatchDag to the super-DAG scheduler.
        let report = run_batch(&items, &base.join("work"), &config, ImplKind::BatchDag).unwrap();
        assert_eq!(report.events.len(), 2);
        assert!(report
            .events
            .iter()
            .all(|r| r.implementation == ImplKind::BatchDag));
        let dag = report.dag.as_ref().expect("super-DAG analysis");
        assert_eq!(dag.threads, 8);
        assert_eq!(dag.order, ReadyOrder::CriticalPath);
        assert_eq!(dag.event_makespans.len(), 2);
        // The acceptance bar: unioning events overlaps them, so the batch
        // makespan beats the per-event DAG loop…
        assert!(
            dag.cross_event_overlap() > Duration::ZERO,
            "batch {:?} vs baseline {:?}",
            dag.batch_makespan,
            dag.sequential_baseline()
        );
        // …but never beats the longest critical path.
        assert!(dag.batch_makespan >= dag.critical_path_len);
        assert_eq!(report.total, dag.batch_makespan);
        // Products were written for both events.
        assert!(base.join("work/ev-a").join("max-values.txt").exists());
        assert!(base.join("work/ev-b").join("max-values.txt").exists());
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn batch_dag_measured_runs_concurrently() {
        let base = std::env::temp_dir().join(format!("arp-batch-dagm-{}", std::process::id()));
        let items = stage_two_events(&base);
        let report = run_batch_dag(
            &items,
            &base.join("work"),
            &PipelineConfig::fast(),
            ReadyOrder::Submission,
        )
        .unwrap();
        let dag = report.dag.as_ref().expect("super-DAG analysis");
        assert_eq!(dag.order, ReadyOrder::Submission);
        assert!(!report.total.is_zero());
        assert!(report.throughput() > 0.0);
        assert!(base.join("work/ev-a").join("max-values.txt").exists());
        assert!(base.join("work/ev-b").join("max-values.txt").exists());
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn batch_dag_fails_fast_on_bad_event() {
        let base = std::env::temp_dir().join(format!("arp-batch-dagbad-{}", std::process::id()));
        let items = stage_two_events(&base);
        let victim = std::fs::read_dir(&items[1].input_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| e.file_name().to_string_lossy().ends_with(".v1"))
            .unwrap()
            .path();
        std::fs::write(&victim, "garbage").unwrap();
        let err = run_batch(
            &items,
            &base.join("work"),
            &PipelineConfig::fast(),
            ImplKind::BatchDag,
        )
        .unwrap_err();
        assert!(matches!(err, PipelineError::Format(_)), "{err}");
        std::fs::remove_dir_all(&base).unwrap();
    }
}
