//! # arp-core — the accelerographic-records processing pipeline
//!
//! Reproduction of "Parallelizing Accelerographic Records Processing"
//! (IPPS 2024): twenty file-to-file processes (Fig. 5), reordered into
//! eleven stages (Fig. 9), executed by four implementations:
//!
//! | Implementation | Paper § | Processes | Parallel stages |
//! |---|---|---|---|
//! | [`ImplKind::SequentialOriginal`] | III | 20 | 0 |
//! | [`ImplKind::SequentialOptimized`] | IV | 17 | 0 |
//! | [`ImplKind::PartiallyParallel`] | V | 17 | 5 (I, II, VI, X, XI) |
//! | [`ImplKind::FullyParallel`] | VI | 17 | 10 (all but VII) |
//! | [`ImplKind::DagParallel`] | — | 17 | no stages: artifact DAG |
//!
//! The fifth implementation goes beyond the paper: instead of the barrier-
//! synchronized stage plan it schedules the process dependency graph of
//! [`dag::ProcessDag`] directly, starting each process the moment its
//! artifact predecessors complete. Whole batches go one step further:
//! [`run_batch_dag`] unions every event's DAG into one cross-event
//! super-graph ([`dag::SuperDag`]) and submits it to the pool in a single
//! call, so small events fill the idle tails of big ones.
//!
//! ```no_run
//! use arp_core::{run_pipeline, ImplKind, PipelineConfig, RunContext};
//!
//! let ctx = RunContext::new("inputs", "work", PipelineConfig::default())?;
//! let report = run_pipeline(&ctx, ImplKind::FullyParallel)?;
//! println!("processed {} points in {:?}", report.data_points, report.total);
//! # Ok::<(), arp_core::PipelineError>(())
//! ```
//!
//! All four implementations produce identical final artifacts; the paper's
//! claim under test is their relative wall time.

#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod context;
pub mod dag;
pub mod error;
pub mod executor;
pub mod inventory;
pub mod metrics;
pub mod output;
pub mod plan;
pub mod process;
pub mod profile;
pub mod report;
pub mod stagedir;
pub mod summary;
pub mod timeline;

pub use batch::{
    discover_batch, frontier_json, run_batch, run_batch_dag, BatchDagReport, BatchItem,
    BatchReport, ReadyOrder,
};
pub use config::{ParallelBackend, PipelineConfig};
pub use context::RunContext;
pub use dag::{CriticalPath, DagEdge, EdgeKind, ProcessDag, SuperDag, SuperNode};
pub use error::{PipelineError, Result};
pub use executor::{
    measure_input_shape, run_pipeline, run_pipeline_labeled, run_stages_sequential,
};
pub use inventory::{expected_artifacts, verify_run, VerifyIssue};
pub use plan::{StageId, Strategy, STAGE_TABLE};
pub use process::{ProcessId, ProcessKind, PROCESS_TABLE};
pub use profile::{
    kind_label, profile_trace, profile_trace_what_if, realize_batch, RealizedBatch,
    WHAT_IF_SPEEDUPS, WHAT_IF_TOP_K,
};
pub use report::{DagReport, ImplKind, RunReport, StageTiming};
pub use summary::{event_summary, summary_csv, SummaryRow};
pub use timeline::{timeline_svg, worker_timeline_svg};
