//! Stage-timeline visualization: renders a [`RunReport`]'s stage timings as
//! a Gantt-style SVG, the visual counterpart of the paper's Fig. 8/10 stage
//! diagrams with real measured widths.

use crate::report::RunReport;
use arp_plot::{Anchor, Backend, Color, Svg};

/// Renders the report's stages as a horizontal timeline (one bar per stage,
/// widths proportional to elapsed time). Returns an SVG document; reports
/// without stage timings (sequential implementations) render the
/// per-process chain instead.
pub fn timeline_svg(report: &RunReport) -> String {
    let width = 760.0;
    let row_h = 22.0;
    let margin_left = 70.0;
    let margin_top = 40.0;

    let rows: Vec<(String, f64)> = if report.stages.is_empty() {
        report
            .processes
            .iter()
            .map(|p| (format!("#{}", p.process.0), p.elapsed.as_secs_f64()))
            .collect()
    } else {
        report
            .stages
            .iter()
            .map(|s| (s.stage.label().to_string(), s.elapsed.as_secs_f64()))
            .collect()
    };

    let height = margin_top + rows.len() as f64 * row_h + 30.0;
    let mut be: Box<dyn Backend> = Box::new(Svg::new(width, height));

    let total: f64 = rows.iter().map(|(_, t)| t).sum();
    be.text(
        width / 2.0,
        20.0,
        12.0,
        Anchor::Middle,
        &format!(
            "{} — {} ({:.3}s total, {} points)",
            report.event,
            report.implementation.label(),
            report.total.as_secs_f64(),
            report.data_points
        ),
    );

    let plot_w = width - margin_left - 90.0;
    let scale = if total > 0.0 { plot_w / total } else { 0.0 };
    let mut x = margin_left;
    for (i, (label, secs)) in rows.iter().enumerate() {
        let y = margin_top + i as f64 * row_h;
        let w = (secs * scale).max(0.5);
        be.text(margin_left - 6.0, y + row_h * 0.7, 10.0, Anchor::End, label);
        be.fill_rect(
            x,
            y + 3.0,
            w,
            row_h - 6.0,
            Color::PALETTE[i % Color::PALETTE.len()],
        );
        be.text(
            x + w + 4.0,
            y + row_h * 0.7,
            8.0,
            Anchor::Start,
            &format!("{:.4}s", secs),
        );
        x += w;
    }
    be.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StageId;
    use crate::process::ProcessId;
    use crate::report::{ImplKind, ProcessTiming, StageTiming};
    use std::time::Duration;

    fn report_with_stages() -> RunReport {
        RunReport {
            implementation: ImplKind::FullyParallel,
            event: "EV-TEST".into(),
            v1_files: 5,
            data_points: 1000,
            total: Duration::from_millis(100),
            processes: vec![],
            stages: StageId::ALL
                .iter()
                .enumerate()
                .map(|(i, &s)| StageTiming {
                    stage: s,
                    elapsed: Duration::from_millis(5 + i as u64),
                })
                .collect(),
            dag: None,
            pool: None,
        }
    }

    #[test]
    fn stage_timeline_renders_all_stages() {
        let svg = timeline_svg(&report_with_stages());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("EV-TEST"));
        for s in StageId::ALL {
            assert!(svg.contains(&format!(">{}<", s.label())), "{}", s.label());
        }
        // One colored bar per stage.
        assert!(svg.matches("<rect").count() >= 11);
    }

    #[test]
    fn sequential_reports_fall_back_to_processes() {
        let report = RunReport {
            implementation: ImplKind::SequentialOriginal,
            event: "EV".into(),
            v1_files: 1,
            data_points: 10,
            total: Duration::from_millis(10),
            processes: (0..20u8)
                .map(|p| ProcessTiming {
                    process: ProcessId(p),
                    elapsed: Duration::from_millis(1),
                })
                .collect(),
            stages: vec![],
            dag: None,
            pool: None,
        };
        let svg = timeline_svg(&report);
        assert!(svg.contains("#19"));
    }

    #[test]
    fn empty_report_is_safe() {
        let report = RunReport {
            implementation: ImplKind::SequentialOptimized,
            event: "E".into(),
            v1_files: 0,
            data_points: 0,
            total: Duration::ZERO,
            processes: vec![],
            stages: vec![],
            dag: None,
            pool: None,
        };
        let svg = timeline_svg(&report);
        assert!(svg.starts_with("<svg"));
    }
}
