//! Timeline visualizations: the stage Gantt of a [`RunReport`] (the visual
//! counterpart of the paper's Fig. 8/10 stage diagrams, with real measured
//! widths) and the per-worker Gantt of an [`arp_trace::Trace`], which shows
//! the *observed* schedule — which worker lane ran which span when.

use crate::report::RunReport;
use arp_plot::{Anchor, Backend, Color, Svg};

/// Bar-width scale that stays finite on degenerate inputs: zero (or
/// non-finite) totals draw minimum-width bars instead of NaN/∞ widths that
/// would corrupt the SVG.
fn safe_scale(plot_w: f64, total: f64) -> f64 {
    let scale = plot_w / total;
    if total > 0.0 && scale.is_finite() {
        scale
    } else {
        0.0
    }
}

/// Renders the report's stages as a horizontal timeline (one bar per stage,
/// widths proportional to elapsed time). Returns an SVG document; reports
/// without stage timings (sequential implementations) render the
/// per-process chain instead.
pub fn timeline_svg(report: &RunReport) -> String {
    let width = 760.0;
    let row_h = 22.0;
    let margin_left = 70.0;
    let margin_top = 40.0;

    let rows: Vec<(String, f64)> = if report.stages.is_empty() {
        report
            .processes
            .iter()
            .map(|p| (format!("#{}", p.process.0), p.elapsed.as_secs_f64()))
            .collect()
    } else {
        report
            .stages
            .iter()
            .map(|s| (s.stage.label().to_string(), s.elapsed.as_secs_f64()))
            .collect()
    };

    let height = margin_top + rows.len() as f64 * row_h + 30.0;
    let mut be: Box<dyn Backend> = Box::new(Svg::new(width, height));

    let total: f64 = rows.iter().map(|(_, t)| t).sum();
    be.text(
        width / 2.0,
        20.0,
        12.0,
        Anchor::Middle,
        &format!(
            "{} — {} ({:.3}s total, {} points)",
            report.event,
            report.implementation.label(),
            report.total.as_secs_f64(),
            report.data_points
        ),
    );

    let plot_w = width - margin_left - 90.0;
    let scale = safe_scale(plot_w, total);
    let mut x = margin_left;
    for (i, (label, secs)) in rows.iter().enumerate() {
        let y = margin_top + i as f64 * row_h;
        let w = (secs * scale).clamp(0.5, plot_w);
        be.text(margin_left - 6.0, y + row_h * 0.7, 10.0, Anchor::End, label);
        be.fill_rect(
            x,
            y + 3.0,
            w,
            row_h - 6.0,
            Color::PALETTE[i % Color::PALETTE.len()],
        );
        be.text(
            x + w + 4.0,
            y + row_h * 0.7,
            8.0,
            Anchor::Start,
            &format!("{:.4}s", secs),
        );
        x += w;
    }
    be.finish()
}

/// Renders a drained trace as a per-worker Gantt: one lane per worker
/// thread, one bar per top-level span positioned at its *observed* start
/// time, colored by event. Nested spans (loop chunks inside a DAG node)
/// are folded into their enclosing bar. Each lane is annotated with its
/// measured utilization; a legend maps colors back to events.
///
/// This is the `timeline_svg` idea generalized from derived stage bars to
/// the schedule the pool actually executed.
pub fn worker_timeline_svg(trace: &arp_trace::Trace) -> String {
    let width = 900.0;
    let row_h = 22.0;
    let margin_left = 95.0;
    let margin_top = 40.0;
    let summary = trace.summary();

    // Distinct events in first-appearance order define the color mapping.
    let mut events: Vec<&str> = Vec::new();
    for span in &trace.spans {
        if !span.event.is_empty() && !events.contains(&span.event.as_str()) {
            events.push(&span.event);
        }
    }
    let color_of = |event: &str| {
        events
            .iter()
            .position(|e| *e == event)
            .map(|i| Color::PALETTE[i % Color::PALETTE.len()])
            .unwrap_or(Color::GRAY)
    };

    let legend_h = if events.is_empty() { 0.0 } else { 18.0 };
    let height = margin_top + summary.lanes.len().max(1) as f64 * row_h + legend_h + 30.0;
    let mut be: Box<dyn Backend> = Box::new(Svg::new(width, height));
    be.text(
        width / 2.0,
        20.0,
        12.0,
        Anchor::Middle,
        &format!(
            "worker timeline — {} spans on {} lanes, {:.3}s wall",
            summary.spans,
            summary.lanes.len(),
            trace.wall.as_secs_f64()
        ),
    );

    let total_ns = trace
        .spans
        .iter()
        .map(|s| s.end_ns())
        .max()
        .unwrap_or(0)
        .max(trace.wall.as_nanos() as u64);
    let plot_w = width - margin_left - 60.0;
    let scale = safe_scale(plot_w, total_ns as f64);

    for (row, load) in summary.lanes.iter().enumerate() {
        let y = margin_top + row as f64 * row_h;
        be.text(
            margin_left - 6.0,
            y + row_h * 0.7,
            10.0,
            Anchor::End,
            &load.name,
        );
        // Spans sort enclosers-first within a lane, so an end-time stack
        // identifies top-level spans; nested ones stay inside their bar.
        let mut ends: Vec<u64> = Vec::new();
        for span in trace.lane_spans(load.lane) {
            while ends.last().is_some_and(|&top| top <= span.start_ns) {
                ends.pop();
            }
            let top_level = ends.is_empty();
            ends.push(span.end_ns());
            if !top_level {
                continue;
            }
            let x = margin_left + span.start_ns as f64 * scale;
            let w = (span.dur_ns as f64 * scale).clamp(0.5, plot_w);
            be.fill_rect(x, y + 3.0, w, row_h - 6.0, color_of(&span.event));
        }
        be.text(
            width - 54.0,
            y + row_h * 0.7,
            9.0,
            Anchor::Start,
            &format!("{:5.1}%", load.utilization * 100.0),
        );
    }

    let legend_y = margin_top + summary.lanes.len().max(1) as f64 * row_h + 12.0;
    let mut legend_x = margin_left;
    for event in &events {
        be.fill_rect(legend_x, legend_y, 10.0, 10.0, color_of(event));
        be.text(legend_x + 14.0, legend_y + 9.0, 9.0, Anchor::Start, event);
        legend_x += 14.0 + 7.0 * event.len() as f64 + 16.0;
    }
    be.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::StageId;
    use crate::process::ProcessId;
    use crate::report::{ImplKind, ProcessTiming, StageTiming};
    use std::time::Duration;

    fn report_with_stages() -> RunReport {
        RunReport {
            implementation: ImplKind::FullyParallel,
            event: "EV-TEST".into(),
            v1_files: 5,
            data_points: 1000,
            total: Duration::from_millis(100),
            processes: vec![],
            stages: StageId::ALL
                .iter()
                .enumerate()
                .map(|(i, &s)| StageTiming {
                    stage: s,
                    elapsed: Duration::from_millis(5 + i as u64),
                })
                .collect(),
            dag: None,
            pool: None,
            dsp_backend: "auto".into(),
        }
    }

    #[test]
    fn stage_timeline_renders_all_stages() {
        let svg = timeline_svg(&report_with_stages());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("EV-TEST"));
        for s in StageId::ALL {
            assert!(svg.contains(&format!(">{}<", s.label())), "{}", s.label());
        }
        // One colored bar per stage.
        assert!(svg.matches("<rect").count() >= 11);
    }

    #[test]
    fn sequential_reports_fall_back_to_processes() {
        let report = RunReport {
            implementation: ImplKind::SequentialOriginal,
            event: "EV".into(),
            v1_files: 1,
            data_points: 10,
            total: Duration::from_millis(10),
            processes: (0..20u8)
                .map(|p| ProcessTiming {
                    process: ProcessId(p),
                    elapsed: Duration::from_millis(1),
                })
                .collect(),
            stages: vec![],
            dag: None,
            pool: None,
            dsp_backend: "auto".into(),
        };
        let svg = timeline_svg(&report);
        assert!(svg.contains("#19"));
    }

    #[test]
    fn empty_report_is_safe() {
        let report = RunReport {
            implementation: ImplKind::SequentialOptimized,
            event: "E".into(),
            v1_files: 0,
            data_points: 0,
            total: Duration::ZERO,
            processes: vec![],
            stages: vec![],
            dag: None,
            pool: None,
            dsp_backend: "auto".into(),
        };
        let svg = timeline_svg(&report);
        assert!(svg.starts_with("<svg"));
    }

    #[test]
    fn zero_elapsed_rows_render_without_nan_widths() {
        // Regression: a report whose rows all measure zero elapsed time
        // must draw minimum-width bars, never NaN/∞ geometry.
        let report = RunReport {
            implementation: ImplKind::FullyParallel,
            event: "ZERO".into(),
            v1_files: 1,
            data_points: 1,
            total: Duration::ZERO,
            processes: vec![],
            stages: StageId::ALL
                .iter()
                .map(|&s| StageTiming {
                    stage: s,
                    elapsed: Duration::ZERO,
                })
                .collect(),
            dag: None,
            pool: None,
            dsp_backend: "auto".into(),
        };
        let svg = timeline_svg(&report);
        assert!(!svg.contains("NaN"), "NaN leaked into SVG geometry");
        assert!(!svg.contains("inf"), "infinite width leaked into SVG");
        assert!(svg.matches("<rect").count() >= 11, "bars must still draw");
    }

    #[test]
    fn safe_scale_guards_degenerate_totals() {
        assert_eq!(safe_scale(600.0, 0.0), 0.0);
        assert_eq!(safe_scale(600.0, -1.0), 0.0);
        assert_eq!(safe_scale(600.0, f64::MIN_POSITIVE / 4.0), 0.0);
        assert!((safe_scale(600.0, 2.0) - 300.0).abs() < 1e-12);
    }

    fn trace_span(lane: usize, event: &str, start_ns: u64, dur_ns: u64) -> arp_trace::Span {
        arp_trace::Span {
            name: format!("{event}/#1"),
            cat: arp_trace::Cat::DagNode,
            process: Some(1),
            event: event.into(),
            lane,
            start_ns,
            dur_ns,
            queue_ns: 0,
            bytes: 8,
        }
    }

    #[test]
    fn worker_timeline_draws_lanes_events_and_utilization() {
        let trace = arp_trace::Trace {
            spans: vec![
                trace_span(0, "ev-a", 0, 50_000_000),
                trace_span(0, "ev-b", 60_000_000, 30_000_000),
                trace_span(1, "ev-b", 0, 100_000_000),
            ],
            lanes: vec!["arp-par-0".into(), "arp-par-1".into()],
            counters: Vec::new(),
            wall: Duration::from_millis(100),
            dropped: 0,
        };
        let svg = worker_timeline_svg(&trace);
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("arp-par-0") && svg.contains("arp-par-1"));
        assert!(svg.contains("ev-a") && svg.contains("ev-b"));
        // 3 top-level bars + 2 legend swatches + 1 background.
        assert_eq!(svg.matches("<rect").count(), 6);
        assert!(svg.contains("80.0%"), "lane 0 utilization label");
        assert!(svg.contains("100.0%"), "lane 1 utilization label");
    }

    #[test]
    fn worker_timeline_folds_nested_spans_into_their_bar() {
        let mut inner = trace_span(0, "ev-a", 10_000, 1_000);
        inner.cat = arp_trace::Cat::Chunk;
        let trace = arp_trace::Trace {
            spans: vec![trace_span(0, "ev-a", 0, 100_000), inner],
            lanes: vec!["w".into()],
            counters: Vec::new(),
            wall: Duration::from_micros(100),
            dropped: 0,
        };
        let svg = worker_timeline_svg(&trace);
        // One bar (nested chunk folded) + one legend swatch + background.
        assert_eq!(svg.matches("<rect").count(), 3);
    }

    #[test]
    fn empty_trace_renders_safely() {
        let svg = worker_timeline_svg(&arp_trace::Trace::default());
        assert!(svg.starts_with("<svg"));
        assert!(!svg.contains("NaN"));
    }
}
