//! Run reports: per-process and per-stage timings.
//!
//! Every executor returns a [`RunReport`]; the bench harness aggregates
//! them into the paper's Table I and Figures 11–13.

use crate::plan::StageId;
use crate::process::ProcessId;
use arp_par::PoolStatsSnapshot;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which implementation produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImplKind {
    /// The 20-process original sequential chain (§III).
    SequentialOriginal,
    /// The 17-process optimized sequential chain (§IV).
    SequentialOptimized,
    /// Five parallel stages (§V).
    PartiallyParallel,
    /// Ten parallel stages (§VI).
    FullyParallel,
    /// No stages at all: the artifact-dependency DAG is scheduled directly,
    /// each process starting the moment its predecessors complete.
    DagParallel,
    /// Cross-event super-DAG batching: the per-event DAGs of a whole batch
    /// are unioned (namespaced by event, no cross-event edges) and
    /// submitted to the pool in one call, so small events fill the idle
    /// tails of big ones. Only meaningful for `run_batch`; on a single
    /// event it degenerates to [`ImplKind::DagParallel`].
    BatchDag,
}

impl ImplKind {
    /// The five single-event implementations in the paper's comparison
    /// order (with the DAG scheduler, which goes beyond the paper, last).
    /// [`ImplKind::BatchDag`] is deliberately absent: it schedules whole
    /// batches, not one event, so it has no place in Table I.
    pub const ALL: [ImplKind; 5] = [
        ImplKind::SequentialOriginal,
        ImplKind::SequentialOptimized,
        ImplKind::PartiallyParallel,
        ImplKind::FullyParallel,
        ImplKind::DagParallel,
    ];

    /// Short display label (Table I column headers).
    pub fn label(self) -> &'static str {
        match self {
            ImplKind::SequentialOriginal => "Seq. Ori.",
            ImplKind::SequentialOptimized => "Seq. Opt.",
            ImplKind::PartiallyParallel => "Part. Par.",
            ImplKind::FullyParallel => "Full Par.",
            ImplKind::DagParallel => "DAG Par.",
            ImplKind::BatchDag => "Batch DAG",
        }
    }
}

/// Timing of one process execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessTiming {
    /// Which process ran.
    pub process: ProcessId,
    /// Wall time.
    pub elapsed: Duration,
}

/// Timing of one stage execution (parallel implementations only).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageTiming {
    /// Which stage ran.
    pub stage: StageId,
    /// Wall time of the whole stage.
    pub elapsed: Duration,
}

/// Schedule analysis of a DAG run, decomposing the speedup over the
/// sequential baseline into its two independent sources: parallelism
/// *inside* the stage plan, and removal of the stage barriers themselves.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DagReport {
    /// Processes on the critical (longest weighted) path, in order.
    pub critical_path: Vec<ProcessId>,
    /// Total weight of the critical path — the floor no schedule can beat.
    pub critical_path_len: Duration,
    /// Makespan of the dependency-driven schedule on `threads` threads.
    pub dag_makespan: Duration,
    /// Makespan the same node durations would need under the eleven-stage
    /// barrier plan of Fig. 9 on the same threads.
    pub barrier_makespan: Duration,
    /// Sum of all node durations (the fully serialized cost).
    pub node_total: Duration,
    /// Thread count the schedules were computed for.
    pub threads: usize,
}

impl DagReport {
    /// Virtual time recovered by deleting the stage barriers (what the DAG
    /// scheduler buys beyond the paper's fully parallel plan).
    pub fn barrier_saving(&self) -> Duration {
        self.barrier_makespan.saturating_sub(self.dag_makespan)
    }

    /// Virtual time recovered by the stage plan's own parallelism (tasks
    /// and loops) relative to running every node back to back.
    pub fn stage_saving(&self) -> Duration {
        self.node_total.saturating_sub(self.barrier_makespan)
    }
}

/// The result of one pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Implementation used.
    pub implementation: ImplKind,
    /// Event label (for the harness tables).
    pub event: String,
    /// Number of V1 station files processed.
    pub v1_files: usize,
    /// Total data points of the event.
    pub data_points: usize,
    /// Total wall time.
    pub total: Duration,
    /// Per-process wall times in execution order.
    pub processes: Vec<ProcessTiming>,
    /// Per-stage wall times (empty for the sequential implementations).
    pub stages: Vec<StageTiming>,
    /// Schedule analysis ([`ImplKind::DagParallel`] runs only).
    pub dag: Option<DagReport>,
    /// Work-pool counter deltas observed during this run (dispatches,
    /// helped jobs, DAG scheduler activity). `None` when the run never
    /// touched the shared pool.
    pub pool: Option<PoolStatsSnapshot>,
    /// DSP kernel backend the run was configured with (`auto`/`scalar`/
    /// `simd`; empty on reports written before the selector existed).
    #[serde(default)]
    pub dsp_backend: String,
}

impl RunReport {
    /// Data points processed per second of wall time.
    pub fn throughput(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.data_points as f64 / self.total.as_secs_f64()
    }

    /// Wall time of a specific process, if it ran.
    pub fn process_time(&self, id: ProcessId) -> Option<Duration> {
        self.processes
            .iter()
            .find(|t| t.process == id)
            .map(|t| t.elapsed)
    }

    /// Wall time of a specific stage, if recorded.
    pub fn stage_time(&self, id: StageId) -> Option<Duration> {
        self.stages
            .iter()
            .find(|t| t.stage == id)
            .map(|t| t.elapsed)
    }

    /// Speedup of this run relative to a baseline run of the same event.
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        baseline.total.as_secs_f64() / self.total.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total_ms: u64) -> RunReport {
        RunReport {
            implementation: ImplKind::FullyParallel,
            event: "EV".into(),
            v1_files: 5,
            data_points: 56_000,
            total: Duration::from_millis(total_ms),
            processes: vec![ProcessTiming {
                process: ProcessId(16),
                elapsed: Duration::from_millis(total_ms / 2),
            }],
            stages: vec![StageTiming {
                stage: StageId::IX,
                elapsed: Duration::from_millis(total_ms / 2),
            }],
            dag: None,
            pool: None,
            dsp_backend: "auto".into(),
        }
    }

    #[test]
    fn throughput_and_speedup() {
        let fast = report(1_000);
        let slow = report(2_900);
        assert!((fast.throughput() - 56_000.0).abs() < 1e-6);
        assert!((fast.speedup_vs(&slow) - 2.9).abs() < 1e-9);
    }

    #[test]
    fn lookups() {
        let r = report(100);
        assert!(r.process_time(ProcessId(16)).is_some());
        assert!(r.process_time(ProcessId(3)).is_none());
        assert!(r.stage_time(StageId::IX).is_some());
        assert!(r.stage_time(StageId::I).is_none());
    }

    #[test]
    fn zero_total_guards() {
        let mut r = report(100);
        r.total = Duration::ZERO;
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.speedup_vs(&report(100)), 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(ImplKind::SequentialOriginal.label(), "Seq. Ori.");
        assert_eq!(ImplKind::DagParallel.label(), "DAG Par.");
        assert_eq!(ImplKind::BatchDag.label(), "Batch DAG");
        // Table I compares the five single-event implementations; the
        // batch scheduler is not one of them.
        assert_eq!(ImplKind::ALL.len(), 5);
        assert!(!ImplKind::ALL.contains(&ImplKind::BatchDag));
    }

    #[test]
    fn dag_report_decomposition() {
        let d = DagReport {
            critical_path: vec![ProcessId(1), ProcessId(3)],
            critical_path_len: Duration::from_millis(40),
            dag_makespan: Duration::from_millis(50),
            barrier_makespan: Duration::from_millis(70),
            node_total: Duration::from_millis(100),
            threads: 8,
        };
        assert_eq!(d.barrier_saving(), Duration::from_millis(20));
        assert_eq!(d.stage_saving(), Duration::from_millis(30));
        // Savings are saturating, never negative.
        let inverted = DagReport {
            barrier_makespan: Duration::from_millis(10),
            ..d
        };
        assert_eq!(inverted.barrier_saving(), Duration::ZERO);
    }
}
