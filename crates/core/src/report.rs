//! Run reports: per-process and per-stage timings.
//!
//! Every executor returns a [`RunReport`]; the bench harness aggregates
//! them into the paper's Table I and Figures 11–13.

use crate::plan::StageId;
use crate::process::ProcessId;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which of the four implementations produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImplKind {
    /// The 20-process original sequential chain (§III).
    SequentialOriginal,
    /// The 17-process optimized sequential chain (§IV).
    SequentialOptimized,
    /// Five parallel stages (§V).
    PartiallyParallel,
    /// Ten parallel stages (§VI).
    FullyParallel,
}

impl ImplKind {
    /// All implementations in the paper's comparison order.
    pub const ALL: [ImplKind; 4] = [
        ImplKind::SequentialOriginal,
        ImplKind::SequentialOptimized,
        ImplKind::PartiallyParallel,
        ImplKind::FullyParallel,
    ];

    /// Short display label (Table I column headers).
    pub fn label(self) -> &'static str {
        match self {
            ImplKind::SequentialOriginal => "Seq. Ori.",
            ImplKind::SequentialOptimized => "Seq. Opt.",
            ImplKind::PartiallyParallel => "Part. Par.",
            ImplKind::FullyParallel => "Full Par.",
        }
    }
}

/// Timing of one process execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessTiming {
    /// Which process ran.
    pub process: ProcessId,
    /// Wall time.
    pub elapsed: Duration,
}

/// Timing of one stage execution (parallel implementations only).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageTiming {
    /// Which stage ran.
    pub stage: StageId,
    /// Wall time of the whole stage.
    pub elapsed: Duration,
}

/// The result of one pipeline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Implementation used.
    pub implementation: ImplKind,
    /// Event label (for the harness tables).
    pub event: String,
    /// Number of V1 station files processed.
    pub v1_files: usize,
    /// Total data points of the event.
    pub data_points: usize,
    /// Total wall time.
    pub total: Duration,
    /// Per-process wall times in execution order.
    pub processes: Vec<ProcessTiming>,
    /// Per-stage wall times (empty for the sequential implementations).
    pub stages: Vec<StageTiming>,
}

impl RunReport {
    /// Data points processed per second of wall time.
    pub fn throughput(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.data_points as f64 / self.total.as_secs_f64()
    }

    /// Wall time of a specific process, if it ran.
    pub fn process_time(&self, id: ProcessId) -> Option<Duration> {
        self.processes
            .iter()
            .find(|t| t.process == id)
            .map(|t| t.elapsed)
    }

    /// Wall time of a specific stage, if recorded.
    pub fn stage_time(&self, id: StageId) -> Option<Duration> {
        self.stages.iter().find(|t| t.stage == id).map(|t| t.elapsed)
    }

    /// Speedup of this run relative to a baseline run of the same event.
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        baseline.total.as_secs_f64() / self.total.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total_ms: u64) -> RunReport {
        RunReport {
            implementation: ImplKind::FullyParallel,
            event: "EV".into(),
            v1_files: 5,
            data_points: 56_000,
            total: Duration::from_millis(total_ms),
            processes: vec![ProcessTiming {
                process: ProcessId(16),
                elapsed: Duration::from_millis(total_ms / 2),
            }],
            stages: vec![StageTiming {
                stage: StageId::IX,
                elapsed: Duration::from_millis(total_ms / 2),
            }],
        }
    }

    #[test]
    fn throughput_and_speedup() {
        let fast = report(1_000);
        let slow = report(2_900);
        assert!((fast.throughput() - 56_000.0).abs() < 1e-6);
        assert!((fast.speedup_vs(&slow) - 2.9).abs() < 1e-9);
    }

    #[test]
    fn lookups() {
        let r = report(100);
        assert!(r.process_time(ProcessId(16)).is_some());
        assert!(r.process_time(ProcessId(3)).is_none());
        assert!(r.stage_time(StageId::IX).is_some());
        assert!(r.stage_time(StageId::I).is_none());
    }

    #[test]
    fn zero_total_guards() {
        let mut r = report(100);
        r.total = Duration::ZERO;
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.speedup_vs(&report(100)), 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(ImplKind::SequentialOriginal.label(), "Seq. Ori.");
        assert_eq!(ImplKind::ALL.len(), 4);
    }
}
