//! Pipeline configuration: numeric choices and parallel backend.

use crate::error::{PipelineError, Result};
use arp_dsp::backend::DspBackend;
use arp_dsp::fir::BandPass;
use arp_dsp::inflection::InflectionConfig;
use arp_dsp::respspec::ResponseMethod;
use arp_dsp::window::WindowKind;
use arp_par::Schedule;

/// Which parallel substrate executes parallel stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelBackend {
    /// Rayon's work-stealing pool (the idiomatic Rust choice).
    Rayon,
    /// The `arp-par` OpenMP-style pool with an explicit schedule — the
    /// faithful reproduction of the paper's OpenMP pragmas.
    OmpStyle(Schedule),
}

impl Default for ParallelBackend {
    fn default() -> Self {
        // The paper's loops are `schedule(static)` by default in OpenMP.
        ParallelBackend::OmpStyle(Schedule::Static)
    }
}

/// How parallel-stage wall time is obtained.
///
/// The paper's numbers come from an 8-core/12-thread testbed. On hosts with
/// fewer cores (CI containers are often single-core), real wall-clock
/// speedups are physically unobtainable, so the pipeline offers a
/// *simulated-time* mode: every work unit still executes (sequentially) and
/// is timed individually, then a deterministic scheduling simulator
/// ([`arp_par::sim`]) replays the paper's schedule on `threads` virtual
/// processors, including a shared-disk serialization bound for I/O-heavy
/// loops. Reported stage times are then the simulated makespans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingModel {
    /// Use real wall-clock times with the configured parallel backend.
    #[default]
    Measured,
    /// Execute sequentially, report simulated times for `threads` virtual
    /// processors.
    Simulated {
        /// Number of virtual processors (the paper's testbed: 8).
        threads: usize,
    },
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Default band applied by process #4.
    pub default_band: BandPass,
    /// Window used for FIR design (the paper's filters are Hamming).
    pub window: WindowKind,
    /// FPL/FSL search configuration for process #10.
    pub inflection: InflectionConfig,
    /// SDOF solver for process #16. `Duhamel` reproduces the legacy
    /// `O(D²)`-per-period kernel; `NigamJennings` is the fast variant.
    pub response_method: ResponseMethod,
    /// Number of oscillator periods in the response spectrum.
    pub period_count: usize,
    /// Damping ratios archived in `R` files.
    pub dampings: Vec<f64>,
    /// Parallel backend for parallel stages.
    pub backend: ParallelBackend,
    /// Timing model (measured wall clock vs simulated multi-core schedule).
    pub timing: TimingModel,
    /// Emit the RotD50/RotD100 extension products (`<station>.rotd`) after
    /// the definitive correction. Off by default (not part of the paper's
    /// twenty processes).
    pub emit_rotd: bool,
    /// Cap on FIR taps (keeps the default-band filter affordable on records
    /// with very fine sampling).
    pub max_fir_taps: usize,
    /// DSP kernel backend for the hot kernels (FIR convolution, FFT
    /// butterflies, response-spectrum recurrence). Scalar and SIMD produce
    /// bitwise-identical output; `Auto` resolves to SIMD.
    pub dsp_backend: DspBackend,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            default_band: BandPass::DEFAULT,
            window: WindowKind::Hamming,
            inflection: InflectionConfig::default(),
            // Nigam–Jennings by default so tests and examples are fast; the
            // bench harness flips to Duhamel for paper-faithful cost shape.
            response_method: ResponseMethod::NigamJennings,
            period_count: 91,
            dampings: arp_dsp::respspec::STANDARD_DAMPINGS.to_vec(),
            backend: ParallelBackend::default(),
            timing: TimingModel::default(),
            emit_rotd: false,
            max_fir_taps: 1201,
            dsp_backend: DspBackend::Auto,
        }
    }
}

impl PipelineConfig {
    /// A configuration sized for fast tests: fewer periods/dampings.
    pub fn fast() -> Self {
        PipelineConfig {
            period_count: 30,
            dampings: vec![0.05],
            ..Default::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        self.default_band.validate().map_err(PipelineError::Dsp)?;
        if self.period_count < 2 {
            return Err(PipelineError::Config(format!(
                "period_count {} must be >= 2",
                self.period_count
            )));
        }
        if self.dampings.is_empty() {
            return Err(PipelineError::Config("no damping ratios".into()));
        }
        for &z in &self.dampings {
            if !(0.0..0.99).contains(&z) {
                return Err(PipelineError::Config(format!("damping {z} out of range")));
            }
        }
        if self.max_fir_taps < 11 {
            return Err(PipelineError::Config(format!(
                "max_fir_taps {} too small",
                self.max_fir_taps
            )));
        }
        if let TimingModel::Simulated { threads } = self.timing {
            if threads == 0 {
                return Err(PipelineError::Config("simulated thread count 0".into()));
            }
        }
        Ok(())
    }

    /// The response-spectrum period grid.
    pub fn periods(&self) -> Vec<f64> {
        arp_dsp::respspec::log_spaced_periods(0.04, 15.0, self.period_count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        PipelineConfig::default().validate().unwrap();
        PipelineConfig::fast().validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let broken = [
            PipelineConfig {
                period_count: 1,
                ..Default::default()
            },
            PipelineConfig {
                dampings: vec![],
                ..Default::default()
            },
            PipelineConfig {
                dampings: vec![1.2],
                ..Default::default()
            },
            PipelineConfig {
                max_fir_taps: 3,
                ..Default::default()
            },
            PipelineConfig {
                timing: TimingModel::Simulated { threads: 0 },
                ..Default::default()
            },
        ];
        for (i, c) in broken.iter().enumerate() {
            assert!(c.validate().is_err(), "config {i} should be invalid");
        }
        let ok = PipelineConfig {
            timing: TimingModel::Simulated { threads: 8 },
            ..Default::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn period_grid_matches_count() {
        let c = PipelineConfig::fast();
        assert_eq!(c.periods().len(), 30);
    }

    #[test]
    fn default_backend_is_static_omp() {
        assert_eq!(
            ParallelBackend::default(),
            ParallelBackend::OmpStyle(Schedule::Static)
        );
    }
}
