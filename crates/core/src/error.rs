//! Pipeline error type.

use std::fmt;
use std::path::PathBuf;

/// Errors raised while running the pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// A file-format error from `arp-formats`.
    Format(arp_formats::FormatError),
    /// A numeric error from `arp-dsp`.
    Dsp(arp_dsp::DspError),
    /// Raw I/O failure with the path involved.
    Io {
        /// Path being accessed.
        path: PathBuf,
        /// OS error.
        source: std::io::Error,
    },
    /// A required artifact was missing when a process needed it, indicating
    /// a dependency-ordering bug or a corrupted work directory.
    MissingArtifact {
        /// Process that needed the artifact.
        process: &'static str,
        /// Artifact file name.
        artifact: String,
    },
    /// Invalid pipeline configuration.
    Config(String),
    /// A worker panicked while executing a process; the payload message is
    /// preserved so postmortems can name the failure instead of dropping it.
    Panic(String),
    /// A batch super-DAG node failed, attributed to the event and process
    /// it belonged to (`<event label>/#<process>`).
    Node {
        /// The failed node's label.
        label: String,
        /// The underlying failure.
        source: Box<PipelineError>,
    },
}

impl PipelineError {
    /// Wraps an I/O error with its path.
    pub fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        PipelineError::Io {
            path: path.into(),
            source,
        }
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Format(e) => write!(f, "format error: {e}"),
            PipelineError::Dsp(e) => write!(f, "signal-processing error: {e}"),
            PipelineError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            PipelineError::MissingArtifact { process, artifact } => {
                write!(f, "process {process} requires missing artifact {artifact}")
            }
            PipelineError::Config(msg) => write!(f, "configuration error: {msg}"),
            PipelineError::Panic(msg) => write!(f, "panic: {msg}"),
            PipelineError::Node { label, source } => {
                write!(f, "batch node {label}: {source}")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Format(e) => Some(e),
            PipelineError::Dsp(e) => Some(e),
            PipelineError::Io { source, .. } => Some(source),
            PipelineError::Node { source, .. } => Some(&**source),
            _ => None,
        }
    }
}

impl From<arp_formats::FormatError> for PipelineError {
    fn from(e: arp_formats::FormatError) -> Self {
        PipelineError::Format(e)
    }
}

impl From<arp_dsp::DspError> for PipelineError {
    fn from(e: arp_dsp::DspError) -> Self {
        PipelineError::Dsp(e)
    }
}

/// Pipeline result alias.
pub type Result<T> = std::result::Result<T, PipelineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: PipelineError = arp_dsp::DspError::InvalidSampling(0.0).into();
        assert!(e.to_string().contains("signal-processing"));
        assert!(e.source().is_some());

        let m = PipelineError::MissingArtifact {
            process: "p07",
            artifact: "SSLBl.v2".into(),
        };
        assert!(m.to_string().contains("p07"));
        assert!(m.source().is_none());

        let c = PipelineError::Config("bad".into());
        assert!(c.to_string().contains("bad"));

        let io = PipelineError::io("/x", std::io::Error::other("z"));
        assert!(io.to_string().contains("/x"));

        let node = PipelineError::Node {
            label: "ev-b/#1".into(),
            source: Box::new(PipelineError::Config("kernel exploded".into())),
        };
        assert!(node.to_string().contains("ev-b/#1"));
        assert!(node.to_string().contains("kernel exploded"));
        assert!(node.source().is_some());
    }
}
