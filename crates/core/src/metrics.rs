//! The pipeline's live metrics: per-process duration histograms, pipeline
//! throughput counters, and the batch super-DAG's admission/retirement
//! bookkeeping.
//!
//! Handles are resolved once through `OnceLock` statics (the per-process
//! family resolves all twenty labeled histograms in one shot), so the
//! instrumented paths pay one pointer load plus the instrument's own
//! single-relaxed-load disabled check. Naming follows the registry's
//! Prometheus conventions: `arp_pipeline_` / `arp_process_` / `arp_batch_`
//! prefixes, `_total` counters, `_seconds` histograms recorded in
//! nanoseconds.

use arp_metrics::{Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// Wall-clock duration histogram for one process id, labeled
/// `process="0".."19"`. Out-of-range ids clamp onto the last family member
/// rather than panic — the executor's `run_process` hook records the
/// elapsed time even for the unknown-process error path.
pub fn process_duration(p: u8) -> &'static Histogram {
    const LABELS: [&str; 20] = [
        "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15", "16",
        "17", "18", "19",
    ];
    static H: OnceLock<[&'static Histogram; 20]> = OnceLock::new();
    let family = H.get_or_init(|| {
        std::array::from_fn(|i| {
            arp_metrics::histogram_labeled(
                "arp_process_duration_seconds",
                "Wall-clock execution time of each pipeline process, by process id.",
                1e9,
                Some(("process", LABELS[i])),
            )
        })
    });
    family[usize::from(p).min(LABELS.len() - 1)]
}

/// Acceleration payload bytes read by completed pipeline runs
/// (`data_points × 8`, the shape measure every report carries).
pub fn bytes_in() -> &'static Counter {
    static H: OnceLock<&'static Counter> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::counter(
            "arp_pipeline_bytes_in_total",
            "Acceleration payload bytes read by completed pipeline runs (data points x 8).",
        )
    })
}

/// Artifact bytes added to the work directory by completed pipeline runs.
pub fn bytes_out() -> &'static Counter {
    static H: OnceLock<&'static Counter> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::counter(
            "arp_pipeline_bytes_out_total",
            "Artifact bytes added to the work directory by completed pipeline runs.",
        )
    })
}

/// Input station files (`.v1`) consumed by completed pipeline runs.
pub fn files_processed() -> &'static Counter {
    static H: OnceLock<&'static Counter> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::counter(
            "arp_pipeline_files_processed_total",
            "Input station files (.v1) consumed by completed pipeline runs.",
        )
    })
}

/// Events admitted into a batch super-DAG.
pub fn events_admitted() -> &'static Counter {
    static H: OnceLock<&'static Counter> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::counter(
            "arp_batch_events_admitted_total",
            "Events admitted into a batch super-DAG.",
        )
    })
}

/// Events whose every super-DAG node has completed.
pub fn events_retired() -> &'static Counter {
    static H: OnceLock<&'static Counter> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::counter(
            "arp_batch_events_retired_total",
            "Events whose every super-DAG node has completed.",
        )
    })
}

/// Super-DAG nodes admitted but not yet completed.
pub fn nodes_pending() -> &'static Gauge {
    static H: OnceLock<&'static Gauge> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::gauge(
            "arp_batch_nodes_pending",
            "Super-DAG nodes admitted but not yet completed.",
        )
    })
}

/// Super-DAG nodes completed across all batch runs.
pub fn nodes_completed() -> &'static Counter {
    static H: OnceLock<&'static Counter> = OnceLock::new();
    H.get_or_init(|| {
        arp_metrics::counter(
            "arp_batch_nodes_completed_total",
            "Super-DAG nodes completed across all batch runs.",
        )
    })
}

/// Forces registration of every pipeline and batch metric (including all
/// twenty members of the per-process duration family), so a fresh process's
/// `arp metrics` snapshot lists the full catalog instead of only the
/// instruments some code path has already touched.
pub fn register() {
    process_duration(0);
    bytes_in();
    bytes_out();
    files_processed();
    events_admitted();
    events_retired();
    nodes_pending();
    nodes_completed();
}

/// Total size in bytes of all regular files under `dir`, recursively.
/// Unreadable entries count as zero: this feeds a throughput counter, not
/// an integrity check. Only called when metrics are enabled.
pub(crate) fn dir_bytes(dir: &std::path::Path) -> u64 {
    let mut total = 0u64;
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let Ok(meta) = entry.metadata() else { continue };
            if meta.is_dir() {
                stack.push(entry.path());
            } else if meta.is_file() {
                total += meta.len();
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    #[test]
    fn process_duration_clamps_out_of_range_ids() {
        // Beyond-the-table ids share the last family member.
        assert!(std::ptr::eq(
            super::process_duration(19),
            super::process_duration(200)
        ));
        assert!(!std::ptr::eq(
            super::process_duration(0),
            super::process_duration(19)
        ));
    }

    #[test]
    fn dir_bytes_sums_nested_files() {
        let dir = std::env::temp_dir().join(format!("arp-core-dirbytes-{}", std::process::id()));
        let sub = dir.join("sub");
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::write(dir.join("a.bin"), [0u8; 10]).unwrap();
        std::fs::write(sub.join("b.bin"), [0u8; 32]).unwrap();
        assert_eq!(super::dir_bytes(&dir), 42);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
