//! The temp-folder staging protocol (paper §VI-C/§VI-D).
//!
//! The legacy Fortran programs behind processes #4, #7, and #13 keep global
//! state and cannot run multithreaded within one working directory. The
//! paper's solution — reproduced here — executes one instance per station
//! inside its own temporary folder:
//!
//! 1. *(parallel)* create `tmp-<tag>-<i>/` and copy the station's input
//!    files (and shared parameter files) into it;
//! 2. *(sequential, "to avoid races")* place the executable in each folder —
//!    modeled by writing a kernel marker file;
//! 3. *(parallel)* run the kernel inside the folder and move its outputs
//!    back to the work directory;
//! 4. *(parallel)* delete the remaining temporary files.
//!
//! The protocol's file movement is performed for real (copies, renames,
//! deletes), so its I/O overhead — the paper's main caveat about these
//! stages — is present in measurements.

use crate::context::RunContext;
use crate::error::{PipelineError, Result};
use std::fs;
use std::path::{Path, PathBuf};

/// A kernel to run under the staging protocol.
pub struct StagedKernel<'a> {
    /// Short tag used in temp-folder names (e.g. `p04`).
    pub tag: &'a str,
    /// Input file names (in the work dir) each station's folder needs.
    pub inputs: &'a (dyn Fn(&str) -> Vec<String> + Sync),
    /// Output file names the kernel produces inside the folder.
    pub outputs: &'a (dyn Fn(&str) -> Vec<String> + Sync),
    /// The kernel body: runs with the temp folder as its working directory.
    /// Receives `(folder, station_index, station)`.
    pub run: &'a (dyn Fn(&Path, usize, &str) -> Result<()> + Sync),
    /// Disk-contention fraction of the kernel phase (phase 3), used by the
    /// simulated timing model.
    pub serial_fraction: f64,
}

/// Disk-contention fraction of the pure file-movement phases (1 and 4).
const MOVE_SERIAL_FRACTION: f64 = 0.55;

/// Marker file standing in for the relocated legacy executable.
const EXE_MARKER: &str = "kernel.exe";

/// Removes the staging folders when a phase errors out before phase 4.
///
/// Phases 1 and 3 propagate failures with `?`, which used to skip the
/// phase-4 delete and leak every `tmp-<tag>-<i>/` folder into the work
/// directory — where the next run (or `discover_batch`) would trip over
/// them. The guard stays armed across the fallible phases and is disarmed
/// only once phase 4 has removed the folders itself.
struct StageCleanup {
    dirs: Vec<PathBuf>,
    armed: bool,
}

impl Drop for StageCleanup {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        for dir in &self.dirs {
            // Best-effort: the original phase error is already on its way
            // up, and a half-created folder may legitimately be absent.
            let _ = fs::remove_dir_all(dir);
        }
    }
}

/// Executes `kernel` for every station through the staging protocol.
pub fn run_staged(
    ctx: &RunContext,
    stations: &[String],
    parallel: bool,
    kernel: &StagedKernel<'_>,
) -> Result<()> {
    let n = stations.len();
    let folder = |i: usize| -> PathBuf { ctx.work_dir.join(format!("tmp-{}-{i}", kernel.tag)) };
    let mut cleanup = StageCleanup {
        dirs: (0..n).map(folder).collect(),
        armed: true,
    };

    let for_each = |beta: f64, body: &(dyn Fn(usize) -> Result<()> + Sync)| -> Result<()> {
        if parallel {
            ctx.par_for_profiled(n, beta, body)
        } else {
            ctx.seq_for(n, body)
        }
    };

    // Phase 1 (parallel): create folders and copy inputs in.
    for_each(MOVE_SERIAL_FRACTION, &|i| {
        let dir = folder(i);
        fs::create_dir_all(&dir).map_err(|e| PipelineError::io(&dir, e))?;
        for name in (kernel.inputs)(&stations[i]) {
            let src = ctx.artifact(&name);
            let dst = dir.join(&name);
            fs::copy(&src, &dst).map_err(|e| PipelineError::io(&src, e))?;
        }
        Ok(())
    })?;

    // Phase 2 (sequential, as in the paper — "Seq. to avoid races"): place
    // the executable in each folder.
    for i in 0..n {
        let dst = folder(i).join(EXE_MARKER);
        fs::write(&dst, kernel.tag).map_err(|e| PipelineError::io(&dst, e))?;
    }

    // Phase 3 (parallel): run the kernel in each folder and move outputs
    // back to the work directory.
    for_each(kernel.serial_fraction, &|i| {
        let dir = folder(i);
        (kernel.run)(&dir, i, &stations[i])?;
        for name in (kernel.outputs)(&stations[i]) {
            let src = dir.join(&name);
            let dst = ctx.artifact(&name);
            // Same filesystem: rename is the "move" of the paper's protocol.
            fs::rename(&src, &dst).map_err(|e| PipelineError::io(&src, e))?;
        }
        Ok(())
    })?;

    // Phase 4 (parallel): delete the remaining temp files.
    for_each(MOVE_SERIAL_FRACTION, &|i| {
        let dir = folder(i);
        fs::remove_dir_all(&dir).map_err(|e| PipelineError::io(&dir, e))?;
        Ok(())
    })?;
    cleanup.armed = false;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;

    fn make_ctx(tag: &str) -> (PathBuf, RunContext) {
        let base = std::env::temp_dir().join(format!("arp-staged-{tag}-{}", std::process::id()));
        let ctx = RunContext::new(base.join("in"), base.join("w"), PipelineConfig::fast()).unwrap();
        (base, ctx)
    }

    #[test]
    fn protocol_moves_inputs_and_outputs() {
        let (base, ctx) = make_ctx("basic");
        let stations = vec!["AAA".to_string(), "BBB".to_string()];
        for s in &stations {
            std::fs::write(ctx.artifact(&format!("{s}.in")), format!("input-{s}")).unwrap();
        }
        let kernel = StagedKernel {
            tag: "test",
            serial_fraction: 0.5,
            inputs: &|s| vec![format!("{s}.in")],
            outputs: &|s| vec![format!("{s}.out")],
            run: &|dir, _i, s| {
                // Kernel sees its input inside the folder...
                let input = std::fs::read_to_string(dir.join(format!("{s}.in"))).unwrap();
                assert_eq!(input, format!("input-{s}"));
                // ...and the sequentially-placed executable marker.
                assert!(dir.join(EXE_MARKER).exists());
                std::fs::write(dir.join(format!("{s}.out")), format!("output-{s}")).unwrap();
                Ok(())
            },
        };
        for parallel in [false, true] {
            run_staged(&ctx, &stations, parallel, &kernel).unwrap();
            for s in &stations {
                let out = std::fs::read_to_string(ctx.artifact(&format!("{s}.out"))).unwrap();
                assert_eq!(out, format!("output-{s}"));
                assert!(!ctx.work_dir.join("tmp-test-0").exists());
            }
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn missing_input_fails_cleanly() {
        let (base, ctx) = make_ctx("missing");
        let stations = vec!["GONE".to_string()];
        let kernel = StagedKernel {
            tag: "test",
            serial_fraction: 0.5,
            inputs: &|s| vec![format!("{s}.in")],
            outputs: &|_| vec![],
            run: &|_, _, _| Ok(()),
        };
        assert!(run_staged(&ctx, &stations, false, &kernel).is_err());
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn kernel_error_propagates() {
        let (base, ctx) = make_ctx("kerr");
        let stations = vec!["AAA".to_string()];
        std::fs::write(ctx.artifact("AAA.in"), "x").unwrap();
        let kernel = StagedKernel {
            tag: "test",
            serial_fraction: 0.5,
            inputs: &|s| vec![format!("{s}.in")],
            outputs: &|_| vec![],
            run: &|_, _, _| Err(PipelineError::Config("kernel exploded".into())),
        };
        let err = run_staged(&ctx, &stations, false, &kernel).unwrap_err();
        assert!(err.to_string().contains("kernel exploded"));
        std::fs::remove_dir_all(&base).unwrap();
    }

    fn staging_leftovers(ctx: &RunContext) -> Vec<String> {
        std::fs::read_dir(&ctx.work_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| name.starts_with("tmp-"))
            .collect()
    }

    #[test]
    fn failed_kernel_leaves_no_staging_folders() {
        let (base, ctx) = make_ctx("leak");
        let stations: Vec<String> = ["AAA", "BBB", "CCC"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        for s in &stations {
            std::fs::write(ctx.artifact(&format!("{s}.in")), "x").unwrap();
        }
        let kernel = StagedKernel {
            tag: "test",
            serial_fraction: 0.5,
            inputs: &|s| vec![format!("{s}.in")],
            outputs: &|_| vec![],
            // Phase 3 fails on the middle station, after phase 1 has
            // created a folder for every station.
            run: &|_, i, _| {
                if i == 1 {
                    Err(PipelineError::Config("kernel exploded".into()))
                } else {
                    Ok(())
                }
            },
        };
        for parallel in [false, true] {
            let err = run_staged(&ctx, &stations, parallel, &kernel).unwrap_err();
            assert!(err.to_string().contains("kernel exploded"));
            assert_eq!(
                staging_leftovers(&ctx),
                Vec::<String>::new(),
                "phase-3 failure must not leak tmp folders (parallel={parallel})"
            );
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn failed_copy_in_leaves_no_staging_folders() {
        let (base, ctx) = make_ctx("leak1");
        // Station AAA has its input; GONE does not, so phase 1 fails after
        // AAA's folder (and possibly GONE's empty folder) already exists.
        let stations = vec!["AAA".to_string(), "GONE".to_string()];
        std::fs::write(ctx.artifact("AAA.in"), "x").unwrap();
        let kernel = StagedKernel {
            tag: "test",
            serial_fraction: 0.5,
            inputs: &|s| vec![format!("{s}.in")],
            outputs: &|_| vec![],
            run: &|_, _, _| Ok(()),
        };
        assert!(run_staged(&ctx, &stations, false, &kernel).is_err());
        assert_eq!(
            staging_leftovers(&ctx),
            Vec::<String>::new(),
            "phase-1 failure must not leak tmp folders"
        );
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn empty_station_list_is_noop() {
        let (base, ctx) = make_ctx("empty");
        let kernel = StagedKernel {
            tag: "test",
            serial_fraction: 0.5,
            inputs: &|_| vec![],
            outputs: &|_| vec![],
            run: &|_, _, _| Ok(()),
        };
        run_staged(&ctx, &[], true, &kernel).unwrap();
        std::fs::remove_dir_all(&base).unwrap();
    }
}
