//! The four pipeline implementations (§III–§VI of the paper).
//!
//! * [`ImplKind::SequentialOriginal`] — all twenty processes in numeric
//!   order, sequentially;
//! * [`ImplKind::SequentialOptimized`] — the same minus the redundant
//!   processes #6, #12, #14;
//! * [`ImplKind::PartiallyParallel`] — the eleven-stage plan with stages I,
//!   II, VI, X, XI parallel;
//! * [`ImplKind::FullyParallel`] — all stages parallel except VII, with
//!   stages IV, V, VIII running through the temp-folder staging protocol.
//!
//! All four produce **identical artifacts** in the work directory; they
//! differ only in ordering, parallelism, and (for the original) the
//! redundant work. The integration suite asserts this equivalence.

use crate::context::RunContext;
use crate::error::{PipelineError, Result};
use crate::plan::{StageId, Strategy, STAGE_TABLE};
use crate::process::filter::CorrectionPass;
use crate::process::{self, ProcessId};
use crate::report::{ImplKind, ProcessTiming, RunReport, StageTiming};
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// Runs one process by number. `parallel` enables its internal loop
/// parallelism; `staged` routes the Fortran-binary processes (#4, #7, #13)
/// through the temp-folder protocol.
fn run_process(ctx: &RunContext, p: u8, parallel: bool, staged: bool) -> Result<()> {
    match p {
        0 => process::flags::init_flags(ctx),
        1 => process::gather::gather_inputs(ctx, parallel),
        2 => process::filterinit::init_filter_params(ctx),
        3 => process::separate::separate_components(ctx, parallel),
        4 => {
            if staged {
                process::filter::correct_signals_staged(ctx, CorrectionPass::Default, parallel)
            } else {
                process::filter::correct_signals(ctx, CorrectionPass::Default, parallel)
            }
        }
        5 => process::metainit::init_main_metadata(ctx),
        6 => process::plots::plot_uncorrected(ctx, parallel),
        7 => {
            if staged {
                process::fourier::fourier_transform_staged(ctx, parallel)
            } else {
                process::fourier::fourier_transform(ctx, parallel)
            }
        }
        8 => process::metainit::init_fourier_graph(ctx),
        9 => process::plots::plot_fourier_spectrum(ctx, parallel),
        10 => process::analyze::analyze_fourier(ctx, parallel),
        11 => process::flags::reinit_flags(ctx),
        12 => process::separate::separate_components(ctx, parallel),
        13 => {
            if staged {
                process::filter::correct_signals_staged(ctx, CorrectionPass::Definitive, parallel)
            } else {
                process::filter::correct_signals(ctx, CorrectionPass::Definitive, parallel)
            }
        }
        14 => process::metainit::init_main_metadata(ctx),
        15 => process::plots::plot_accelerograph(ctx, parallel),
        16 => process::respspec::response_spectrum_calc(ctx, parallel),
        17 => process::metainit::init_response_graph(ctx),
        18 => process::plots::plot_response_spectrum(ctx, parallel),
        19 => process::gemgen::generate_gem_files(ctx, parallel),
        _ => Err(PipelineError::Config(format!("unknown process {p}"))),
    }
}

/// Measures the shape of the input event: `(v1_files, data_points)`.
/// Data points are counted as acceleration samples per station (each
/// station file declares its component length in its first `BEGIN ACC`
/// header).
pub fn measure_input_shape(ctx: &RunContext) -> Result<(usize, usize)> {
    let names = crate::context::list_v1_station_files(&ctx.input_dir)?;
    let mut points = 0usize;
    for name in &names {
        let path = ctx.input_dir.join(name);
        let text = std::fs::read_to_string(&path).map_err(|e| PipelineError::io(&path, e))?;
        let n = text
            .lines()
            .find_map(|l| {
                let mut parts = l.split_whitespace();
                if parts.next() == Some("BEGIN") && parts.next() == Some("ACC") {
                    parts.next()?.parse::<usize>().ok()
                } else {
                    None
                }
            })
            .unwrap_or(0);
        points += n;
    }
    Ok((names.len(), points))
}

/// Runs the pipeline with the selected implementation, returning the timing
/// report. The work directory receives every artifact.
pub fn run_pipeline(ctx: &RunContext, kind: ImplKind) -> Result<RunReport> {
    run_pipeline_labeled(ctx, kind, "unlabeled")
}

/// As [`run_pipeline`], attaching an event label to the report.
pub fn run_pipeline_labeled(ctx: &RunContext, kind: ImplKind, event: &str) -> Result<RunReport> {
    let (v1_files, data_points) = measure_input_shape(ctx)?;
    let saved0 = ctx.saved_snapshot();
    let started = Instant::now();
    let (processes, stages) = match kind {
        ImplKind::SequentialOriginal => (run_sequential(ctx, true)?, Vec::new()),
        ImplKind::SequentialOptimized => (run_sequential(ctx, false)?, Vec::new()),
        ImplKind::PartiallyParallel => run_staged_plan(ctx, |s| s.partial)?,
        ImplKind::FullyParallel => run_staged_plan(ctx, |s| s.full)?,
    };
    if ctx.config.emit_rotd {
        let parallel = matches!(kind, ImplKind::FullyParallel | ImplKind::PartiallyParallel);
        process::rotdgen::generate_rotd(ctx, parallel)?;
    }
    // In simulated-timing mode, parallel constructs execute sequentially
    // but credit the difference between real and simulated makespan; the
    // reported total is the virtual wall time.
    let total = started
        .elapsed()
        .saturating_sub(ctx.saved_snapshot() - saved0);
    Ok(RunReport {
        implementation: kind,
        event: event.to_string(),
        v1_files,
        data_points,
        total,
        processes,
        stages,
    })
}

/// Sequential chain in numeric process order; `include_redundant` selects
/// the original (20-process) vs optimized (17-process) variant.
fn run_sequential(ctx: &RunContext, include_redundant: bool) -> Result<Vec<ProcessTiming>> {
    let mut timings = Vec::new();
    for p in 0u8..20 {
        if !include_redundant && matches!(p, 6 | 12 | 14) {
            continue;
        }
        let t0 = Instant::now();
        run_process(ctx, p, false, false)?;
        timings.push(ProcessTiming {
            process: ProcessId(p),
            elapsed: t0.elapsed(),
        });
    }
    Ok(timings)
}

/// Executes the eleven-stage plan with per-stage strategies.
fn run_staged_plan(
    ctx: &RunContext,
    strategy_of: impl Fn(&crate::plan::StageInfo) -> Strategy,
) -> Result<(Vec<ProcessTiming>, Vec<StageTiming>)> {
    let process_timings: Mutex<Vec<ProcessTiming>> = Mutex::new(Vec::new());
    let mut stage_timings = Vec::with_capacity(STAGE_TABLE.len());

    for stage in &STAGE_TABLE {
        let strategy = strategy_of(stage);
        let stage_saved0 = ctx.saved_snapshot();
        let t0 = Instant::now();
        match strategy {
            Strategy::Sequential => {
                for &p in stage.processes {
                    let pt0 = Instant::now();
                    run_process(ctx, p, false, false)?;
                    process_timings.lock().push(ProcessTiming {
                        process: ProcessId(p),
                        elapsed: pt0.elapsed(),
                    });
                }
            }
            Strategy::Tasks => {
                let tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send + '_>> = stage
                    .processes
                    .iter()
                    .map(|&p| {
                        let timings = &process_timings;
                        Box::new(move || {
                            let pt0 = Instant::now();
                            run_process(ctx, p, false, false)?;
                            timings.lock().push(ProcessTiming {
                                process: ProcessId(p),
                                elapsed: pt0.elapsed(),
                            });
                            Ok(())
                        }) as Box<dyn FnOnce() -> Result<()> + Send + '_>
                    })
                    .collect();
                ctx.tasks(tasks)?;
            }
            Strategy::Loop | Strategy::StagedLoop => {
                let staged = strategy == Strategy::StagedLoop;
                for &p in stage.processes {
                    let pt0 = Instant::now();
                    let psaved0 = ctx.saved_snapshot();
                    run_process(ctx, p, true, staged)?;
                    process_timings.lock().push(ProcessTiming {
                        process: ProcessId(p),
                        elapsed: pt0
                            .elapsed()
                            .saturating_sub(ctx.saved_snapshot() - psaved0),
                    });
                }
            }
        }
        stage_timings.push(StageTiming {
            stage: stage.id,
            elapsed: t0
                .elapsed()
                .saturating_sub(ctx.saved_snapshot() - stage_saved0),
        });
    }

    let mut timings = process_timings.into_inner();
    timings.sort_by_key(|t| t.process);
    Ok((timings, stage_timings))
}

/// Measures per-stage timings of a *sequential* execution following the
/// eleven-stage ordering — the "Sequential Original" bars of the paper's
/// Fig. 11 (per-stage sequential baseline).
pub fn run_stages_sequential(ctx: &RunContext) -> Result<Vec<StageTiming>> {
    let mut stage_timings = Vec::with_capacity(STAGE_TABLE.len());
    for stage in &STAGE_TABLE {
        let t0 = Instant::now();
        for &p in stage.processes {
            run_process(ctx, p, false, false)?;
        }
        stage_timings.push(StageTiming {
            stage: stage.id,
            elapsed: t0.elapsed(),
        });
    }
    Ok(stage_timings)
}

/// Convenience: total wall time of a report's stages (sanity checks).
pub fn stages_total(stages: &[StageTiming]) -> Duration {
    stages.iter().map(|s| s.elapsed).sum()
}

/// Convenience: find a stage's time in a timing list.
pub fn stage_elapsed(stages: &[StageTiming], id: StageId) -> Option<Duration> {
    stages.iter().find(|s| s.stage == id).map(|s| s.elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;

    fn prepare(tag: &str, scale: f64) -> (std::path::PathBuf, std::path::PathBuf) {
        let base = std::env::temp_dir().join(format!("arp-exec-{tag}-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        let event = arp_synth::paper_event(0, scale);
        arp_synth::write_event_inputs(&event, &input).unwrap();
        (base, input)
    }

    #[test]
    fn sequential_original_runs_all_twenty() {
        let (base, input) = prepare("seq", 0.002);
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        let report = run_pipeline_labeled(&ctx, ImplKind::SequentialOriginal, "ev0").unwrap();
        assert_eq!(report.processes.len(), 20);
        assert_eq!(report.v1_files, 5);
        assert!(report.data_points > 0);
        assert!(report.stages.is_empty());
        assert_eq!(report.event, "ev0");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn optimized_skips_redundant_processes() {
        let (base, input) = prepare("opt", 0.002);
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        let report = run_pipeline(&ctx, ImplKind::SequentialOptimized).unwrap();
        assert_eq!(report.processes.len(), 17);
        for t in &report.processes {
            assert!(!matches!(t.process.0, 6 | 12 | 14));
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn parallel_implementations_record_stage_timings() {
        let (base, input) = prepare("par", 0.002);
        for kind in [ImplKind::PartiallyParallel, ImplKind::FullyParallel] {
            let ctx = RunContext::new(
                &input,
                base.join(format!("w-{:?}", kind)),
                PipelineConfig::fast(),
            )
            .unwrap();
            let report = run_pipeline(&ctx, kind).unwrap();
            assert_eq!(report.stages.len(), 11);
            assert_eq!(report.processes.len(), 17);
            assert!(stage_elapsed(&report.stages, StageId::IX).is_some());
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn measure_input_shape_counts_points() {
        let (base, input) = prepare("shape", 0.002);
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        let (files, points) = measure_input_shape(&ctx).unwrap();
        assert_eq!(files, 5);
        let expected = arp_synth::paper_event(0, 0.002).total_data_points();
        assert_eq!(points, expected);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn stages_sequential_covers_all_stages() {
        let (base, input) = prepare("stageseq", 0.002);
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        let stages = run_stages_sequential(&ctx).unwrap();
        assert_eq!(stages.len(), 11);
        assert!(stages_total(&stages) > Duration::ZERO);
        std::fs::remove_dir_all(&base).unwrap();
    }
}
