//! The five pipeline implementations.
//!
//! * [`ImplKind::SequentialOriginal`] — all twenty processes in numeric
//!   order, sequentially (§III);
//! * [`ImplKind::SequentialOptimized`] — the same minus the redundant
//!   processes #6, #12, #14 (§IV);
//! * [`ImplKind::PartiallyParallel`] — the eleven-stage plan with stages I,
//!   II, VI, X, XI parallel (§V);
//! * [`ImplKind::FullyParallel`] — all stages parallel except VII, with
//!   stages IV, V, VIII running through the temp-folder staging protocol
//!   (§VI);
//! * [`ImplKind::DagParallel`] — no stages at all: the artifact-dependency
//!   graph of [`crate::dag::ProcessDag`] is scheduled directly, each
//!   process starting the moment its predecessors complete (beyond the
//!   paper, which stops at the barrier-synchronized plan).
//!
//! All five produce **identical artifacts** in the work directory; they
//! differ only in ordering, parallelism, and (for the original) the
//! redundant work. The integration suite asserts this equivalence.
//!
//! A sixth kind, [`ImplKind::BatchDag`], schedules whole *batches*: it
//! lives in [`crate::batch::run_batch_dag`], which unions the per-event
//! DAGs into one super-graph. On a single event it degenerates to
//! [`ImplKind::DagParallel`] here.

use crate::config::TimingModel;
use crate::context::RunContext;
use crate::dag::ProcessDag;
use crate::error::{PipelineError, Result};
use crate::plan::{StageId, Strategy, STAGE_TABLE};
use crate::process::filter::CorrectionPass;
use crate::process::{self, ProcessId};
use crate::report::{DagReport, ImplKind, ProcessTiming, RunReport, StageTiming};
use parking_lot::Mutex;
use std::io::BufRead;
use std::time::{Duration, Instant};

/// Runs one process by number. `parallel` enables its internal loop
/// parallelism; `staged` routes the Fortran-binary processes (#4, #7, #13)
/// through the temp-folder protocol. Crate-visible so the batch super-DAG
/// executor can drive nodes of many events through one scheduler call.
pub(crate) fn run_process(ctx: &RunContext, p: u8, parallel: bool, staged: bool) -> Result<()> {
    // Every executor funnels through here, so this one hook feeds the
    // per-process duration histograms for all five implementations. The
    // clock is read only while metrics collection is on.
    let t0 = arp_metrics::enabled().then(Instant::now);
    let result = run_process_inner(ctx, p, parallel, staged);
    if let Some(t0) = t0 {
        crate::metrics::process_duration(p).record(t0.elapsed().as_nanos() as u64);
    }
    result
}

fn run_process_inner(ctx: &RunContext, p: u8, parallel: bool, staged: bool) -> Result<()> {
    match p {
        0 => process::flags::init_flags(ctx),
        1 => process::gather::gather_inputs(ctx, parallel),
        2 => process::filterinit::init_filter_params(ctx),
        3 => process::separate::separate_components(ctx, parallel),
        4 => {
            if staged {
                process::filter::correct_signals_staged(ctx, CorrectionPass::Default, parallel)
            } else {
                process::filter::correct_signals(ctx, CorrectionPass::Default, parallel)
            }
        }
        5 => process::metainit::init_main_metadata(ctx),
        6 => process::plots::plot_uncorrected(ctx, parallel),
        7 => {
            if staged {
                process::fourier::fourier_transform_staged(ctx, parallel)
            } else {
                process::fourier::fourier_transform(ctx, parallel)
            }
        }
        8 => process::metainit::init_fourier_graph(ctx),
        9 => process::plots::plot_fourier_spectrum(ctx, parallel),
        10 => process::analyze::analyze_fourier(ctx, parallel),
        11 => process::flags::reinit_flags(ctx),
        12 => process::separate::separate_components(ctx, parallel),
        13 => {
            if staged {
                process::filter::correct_signals_staged(ctx, CorrectionPass::Definitive, parallel)
            } else {
                process::filter::correct_signals(ctx, CorrectionPass::Definitive, parallel)
            }
        }
        14 => process::metainit::init_main_metadata(ctx),
        15 => process::plots::plot_accelerograph(ctx, parallel),
        16 => process::respspec::response_spectrum_calc(ctx, parallel),
        17 => process::metainit::init_response_graph(ctx),
        18 => process::plots::plot_response_spectrum(ctx, parallel),
        19 => process::gemgen::generate_gem_files(ctx, parallel),
        _ => Err(PipelineError::Config(format!("unknown process {p}"))),
    }
}

/// As [`run_process`], wrapped in a [`arp_trace::Cat::Process`] span — the
/// trace attribution for processes executed *in place* (the sequential,
/// staged, and simulated executors; DAG-scheduled nodes get their span from
/// the pool and only annotate it, see [`annotate_node`]). `bytes` is the
/// event's acceleration payload (`data_points × 8`).
pub(crate) fn run_process_span(
    ctx: &RunContext,
    p: u8,
    parallel: bool,
    staged: bool,
    event: &str,
    bytes: u64,
) -> Result<()> {
    let _span = arp_trace::begin(arp_trace::Cat::Process);
    annotate_node(p, event, bytes);
    let result = run_process(ctx, p, parallel, staged);
    arp_diag::clear_context();
    result
}

/// Attaches pipeline attribution (`"{event}/#{p}"`, process id, event
/// label, bytes) to the innermost open trace span. DAG node tasks call this
/// from inside the span the pool scheduler opened around them, overwriting
/// its generic `node-i` name; free when tracing is off.
pub(crate) fn annotate_node(p: u8, event: &str, bytes: u64) {
    arp_trace::annotate(|a| {
        a.name = format!("{event}/#{p}");
        a.process = Some(p);
        a.event = event.to_string();
        a.bytes = bytes;
    });
    // Attribute subsequent log records (and a possible panic on this
    // thread) to the node; cleared when the node's executor finishes.
    // Gated so the diag-off path allocates nothing.
    if arp_diag::ring_enabled() || arp_diag::enabled(arp_diag::Level::Info) {
        arp_diag::set_context(
            Some(event.to_string()),
            Some(p),
            Some(format!("{event}/#{p}")),
        );
        arp_diag::debug(|| "node started".to_string());
    }
}

/// Measures the shape of the input event: `(v1_files, data_points)`.
/// Data points are counted as acceleration samples per station (each
/// station file declares its component length in its first `BEGIN ACC`
/// header).
///
/// Files are streamed line by line and reading stops at the first header,
/// so only a station file's preamble is ever pulled from disk. A station
/// file with no parseable `BEGIN ACC` header is an error: every downstream
/// process relies on that declaration, so a malformed input must surface
/// here rather than as a zero-point station in the report.
pub fn measure_input_shape(ctx: &RunContext) -> Result<(usize, usize)> {
    let names = crate::context::list_v1_station_files(&ctx.input_dir)?;
    let mut points = 0usize;
    for name in &names {
        let path = ctx.input_dir.join(name);
        let file = std::fs::File::open(&path).map_err(|e| PipelineError::io(&path, e))?;
        let mut header = None;
        let mut line_no = 0usize;
        for line in std::io::BufReader::new(file).lines() {
            let line = line.map_err(|e| PipelineError::io(&path, e))?;
            line_no += 1;
            let mut parts = line.split_whitespace();
            if parts.next() == Some("BEGIN") && parts.next() == Some("ACC") {
                header = parts.next().and_then(|w| w.parse::<usize>().ok());
                break;
            }
        }
        match header {
            Some(n) => points += n,
            None => {
                return Err(PipelineError::Format(arp_formats::FormatError::Syntax {
                    line: line_no,
                    message: format!(
                        "{}: no parseable `BEGIN ACC <count>` header",
                        path.display()
                    ),
                }))
            }
        }
    }
    Ok((names.len(), points))
}

/// Runs the pipeline with the selected implementation, returning the timing
/// report. The work directory receives every artifact.
pub fn run_pipeline(ctx: &RunContext, kind: ImplKind) -> Result<RunReport> {
    run_pipeline_labeled(ctx, kind, "unlabeled")
}

/// As [`run_pipeline`], attaching an event label to the report.
pub fn run_pipeline_labeled(ctx: &RunContext, kind: ImplKind, event: &str) -> Result<RunReport> {
    let (v1_files, data_points) = measure_input_shape(ctx)?;
    let bytes = data_points as u64 * 8;
    // Throughput accounting works on completed runs: input shape up front,
    // work-directory growth once the run finishes. The directory walk is
    // once per event and only while metrics collection is on.
    let work_bytes_before =
        arp_metrics::enabled().then(|| crate::metrics::dir_bytes(&ctx.work_dir));
    let pool_before = arp_par::ThreadPool::global().stats();
    let saved0 = ctx.saved_snapshot();
    let started = Instant::now();
    let (processes, stages, dag) = match kind {
        ImplKind::SequentialOriginal => {
            (run_sequential(ctx, true, event, bytes)?, Vec::new(), None)
        }
        ImplKind::SequentialOptimized => {
            (run_sequential(ctx, false, event, bytes)?, Vec::new(), None)
        }
        ImplKind::PartiallyParallel => {
            let (p, s) = run_staged_plan(ctx, |s| s.partial, event, bytes)?;
            (p, s, None)
        }
        ImplKind::FullyParallel => {
            let (p, s) = run_staged_plan(ctx, |s| s.full, event, bytes)?;
            (p, s, None)
        }
        // A batch of one event has no cross-event overlap to exploit; the
        // super-DAG scheduler degenerates to the per-event DAG plan.
        ImplKind::DagParallel | ImplKind::BatchDag => {
            let (p, d) = run_dag_plan(ctx, event, bytes)?;
            (p, Vec::new(), Some(d))
        }
    };
    if ctx.config.emit_rotd {
        let parallel = matches!(
            kind,
            ImplKind::FullyParallel
                | ImplKind::PartiallyParallel
                | ImplKind::DagParallel
                | ImplKind::BatchDag
        );
        process::rotdgen::generate_rotd(ctx, parallel)?;
    }
    // In simulated-timing mode, parallel constructs execute sequentially
    // but credit the difference between real and simulated makespan; the
    // reported total is the virtual wall time.
    let total = started
        .elapsed()
        .saturating_sub(ctx.saved_snapshot() - saved0);
    let pool_delta = arp_par::ThreadPool::global()
        .stats()
        .delta_since(&pool_before);
    let touched_pool = pool_delta.jobs_on_workers > 0
        || pool_delta.jobs_helped > 0
        || pool_delta.loops_completed > 0
        || pool_delta.dags_completed > 0;
    if let Some(before) = work_bytes_before {
        crate::metrics::bytes_in().add(bytes);
        crate::metrics::files_processed().add(v1_files as u64);
        let after = crate::metrics::dir_bytes(&ctx.work_dir);
        crate::metrics::bytes_out().add(after.saturating_sub(before));
    }
    Ok(RunReport {
        implementation: kind,
        event: event.to_string(),
        v1_files,
        data_points,
        total,
        processes,
        stages,
        dag,
        pool: touched_pool.then_some(pool_delta),
        dsp_backend: ctx.config.dsp_backend.to_string(),
    })
}

/// Sequential chain in numeric process order; `include_redundant` selects
/// the original (20-process) vs optimized (17-process) variant.
fn run_sequential(
    ctx: &RunContext,
    include_redundant: bool,
    event: &str,
    bytes: u64,
) -> Result<Vec<ProcessTiming>> {
    let mut timings = Vec::new();
    for p in 0u8..20 {
        if !include_redundant && matches!(p, 6 | 12 | 14) {
            continue;
        }
        let t0 = Instant::now();
        run_process_span(ctx, p, false, false, event, bytes)?;
        timings.push(ProcessTiming {
            process: ProcessId(p),
            elapsed: t0.elapsed(),
        });
    }
    Ok(timings)
}

/// Executes the eleven-stage plan with per-stage strategies.
fn run_staged_plan(
    ctx: &RunContext,
    strategy_of: impl Fn(&crate::plan::StageInfo) -> Strategy,
    event: &str,
    bytes: u64,
) -> Result<(Vec<ProcessTiming>, Vec<StageTiming>)> {
    let process_timings: Mutex<Vec<ProcessTiming>> = Mutex::new(Vec::new());
    let mut stage_timings = Vec::with_capacity(STAGE_TABLE.len());

    for stage in &STAGE_TABLE {
        let strategy = strategy_of(stage);
        let stage_saved0 = ctx.saved_snapshot();
        let t0 = Instant::now();
        match strategy {
            Strategy::Sequential => {
                for &p in stage.processes {
                    let pt0 = Instant::now();
                    run_process_span(ctx, p, false, false, event, bytes)?;
                    process_timings.lock().push(ProcessTiming {
                        process: ProcessId(p),
                        elapsed: pt0.elapsed(),
                    });
                }
            }
            Strategy::Tasks => {
                let tasks: Vec<Box<dyn FnOnce() -> Result<()> + Send + '_>> = stage
                    .processes
                    .iter()
                    .map(|&p| {
                        let timings = &process_timings;
                        Box::new(move || {
                            let pt0 = Instant::now();
                            run_process_span(ctx, p, false, false, event, bytes)?;
                            timings.lock().push(ProcessTiming {
                                process: ProcessId(p),
                                elapsed: pt0.elapsed(),
                            });
                            Ok(())
                        }) as Box<dyn FnOnce() -> Result<()> + Send + '_>
                    })
                    .collect();
                ctx.tasks(tasks)?;
            }
            Strategy::Loop | Strategy::StagedLoop => {
                let staged = strategy == Strategy::StagedLoop;
                for &p in stage.processes {
                    let pt0 = Instant::now();
                    let psaved0 = ctx.saved_snapshot();
                    run_process_span(ctx, p, true, staged, event, bytes)?;
                    process_timings.lock().push(ProcessTiming {
                        process: ProcessId(p),
                        elapsed: pt0.elapsed().saturating_sub(ctx.saved_snapshot() - psaved0),
                    });
                }
            }
        }
        stage_timings.push(StageTiming {
            stage: stage.id,
            elapsed: t0
                .elapsed()
                .saturating_sub(ctx.saved_snapshot() - stage_saved0),
        });
    }

    let mut timings = process_timings.into_inner();
    timings.sort_by_key(|t| t.process);
    Ok((timings, stage_timings))
}

/// Inner-loop mode of a DAG node, inherited from the stage the process
/// occupies in the fully parallel plan: `Loop` stages parallelize the
/// process's station loop, `StagedLoop` stages additionally route it
/// through the temp-folder protocol, and `Tasks`/`Sequential` stages run
/// the process body sequentially (its parallelism comes from overlapping
/// with other nodes).
pub(crate) fn dag_node_mode(p: u8) -> (bool, bool) {
    match crate::plan::stage_of(p).map(|stage| stage.full) {
        Some(Strategy::Loop) => (true, false),
        Some(Strategy::StagedLoop) => (true, true),
        Some(Strategy::Sequential | Strategy::Tasks) | None => (false, false),
    }
}

/// Builds the schedule analysis for a DAG run from per-node durations.
///
/// Both makespans are computed from the *same* durations, so the barrier
/// vs. DAG comparison is deterministic and free of measurement noise. The
/// DAG makespan is clamped to the barrier makespan: the stage plan is one
/// valid linearization of the graph, so a scheduler can always fall back
/// to it — list-scheduling anomalies must not make barrier removal report
/// a slowdown.
pub(crate) fn dag_schedule_report(
    dag: &ProcessDag,
    durations: &[Duration],
    threads: usize,
) -> DagReport {
    let nodes = dag.nodes();
    debug_assert_eq!(nodes.len(), durations.len());
    let mut by_process = [Duration::ZERO; 20];
    for (&p, &d) in nodes.iter().zip(durations) {
        by_process[p as usize] = d;
    }
    let index_of = |p: u8| nodes.iter().position(|&q| q == p).expect("node in dag");
    let preds: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&p| dag.preds(p).iter().map(|&q| index_of(q)).collect())
        .collect();
    let dag_mk = arp_par::dag_makespan(durations, &preds, threads);

    // The same durations under the eleven-stage barrier plan: task stages
    // pack their processes greedily, single-process stages just run.
    let barrier_mk: Duration = STAGE_TABLE
        .iter()
        .map(|stage| {
            let ds: Vec<Duration> = stage
                .processes
                .iter()
                .map(|&p| by_process[p as usize])
                .collect();
            match stage.full {
                Strategy::Tasks => arp_par::tasks_makespan(&ds, threads),
                _ => ds.iter().sum(),
            }
        })
        .sum();

    let cp = dag.critical_path(|p| by_process[p.0 as usize]);
    DagReport {
        critical_path: cp.nodes,
        critical_path_len: cp.length,
        dag_makespan: dag_mk.min(barrier_mk),
        barrier_makespan: barrier_mk,
        node_total: durations.iter().sum(),
        threads,
    }
}

/// Executes the optimized process set by scheduling the artifact-dependency
/// graph directly on the shared worker pool — no stage barriers.
///
/// In measured mode the nodes genuinely run concurrently (node-level
/// scheduling always uses the `arp-par` pool; inner loops still follow the
/// configured backend). In simulated mode nodes execute sequentially in
/// topological order — so their virtual durations can be measured cleanly —
/// and the DAG schedule is replayed in virtual time, crediting the
/// difference exactly like the staged executors do.
fn run_dag_plan(
    ctx: &RunContext,
    event: &str,
    bytes: u64,
) -> Result<(Vec<ProcessTiming>, DagReport)> {
    let dag = ProcessDag::optimized();
    let nodes = dag.nodes();

    if let TimingModel::Simulated { threads } = ctx.config.timing {
        let mut durations = Vec::with_capacity(nodes.len());
        let mut timings = Vec::with_capacity(nodes.len());
        for &p in nodes {
            let (parallel, staged) = dag_node_mode(p);
            let saved0 = ctx.saved_snapshot();
            let t0 = Instant::now();
            run_process_span(ctx, p, parallel, staged, event, bytes)?;
            let elapsed = t0.elapsed().saturating_sub(ctx.saved_snapshot() - saved0);
            durations.push(elapsed);
            timings.push(ProcessTiming {
                process: ProcessId(p),
                elapsed,
            });
        }
        let report = dag_schedule_report(&dag, &durations, threads);
        // Credit the node-level overlap on top of the already-credited
        // inner-loop savings, so the run's total is the DAG makespan.
        ctx.credit_saving(report.node_total, report.dag_makespan);
        return Ok((timings, report));
    }

    let index_of = |p: u8| nodes.iter().position(|&q| q == p).expect("node in dag");
    let preds: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&p| dag.preds(p).iter().map(|&q| index_of(q)).collect())
        .collect();
    let timings: Mutex<Vec<ProcessTiming>> = Mutex::new(Vec::new());
    let failures: Mutex<Vec<(u8, PipelineError)>> = Mutex::new(Vec::new());
    let tasks: Vec<arp_par::BorrowedTask<'_>> = nodes
        .iter()
        .map(|&p| {
            let timings = &timings;
            let failures = &failures;
            Box::new(move || {
                // After any failure, downstream nodes are skipped: their
                // input artifacts cannot be trusted.
                if !failures.lock().is_empty() {
                    return;
                }
                annotate_node(p, event, bytes);
                let (parallel, staged) = dag_node_mode(p);
                let t0 = Instant::now();
                match run_process(ctx, p, parallel, staged) {
                    Ok(()) => timings.lock().push(ProcessTiming {
                        process: ProcessId(p),
                        elapsed: t0.elapsed(),
                    }),
                    Err(e) => failures.lock().push((p, e)),
                }
            }) as arp_par::BorrowedTask<'_>
        })
        .collect();
    // Pure-I/O nodes (HeavyIo/Plotting) carry a lane hint so the pool can
    // keep them off the compute workers; with the lane disabled the hints
    // are inert and the schedule is exactly the classic `run_dag`.
    arp_par::ThreadPool::global().run_dag_lanes(tasks, &preds, &[], &dag.io_lanes());

    let mut fails = failures.into_inner();
    fails.sort_by_key(|(p, _)| *p);
    if let Some((_, e)) = fails.into_iter().next() {
        return Err(e);
    }
    let mut timings = timings.into_inner();
    timings.sort_by_key(|t| t.process);
    let durations: Vec<Duration> = timings.iter().map(|t| t.elapsed).collect();
    let threads = arp_par::ThreadPool::global().threads();
    let report = dag_schedule_report(&dag, &durations, threads);
    Ok((timings, report))
}

/// Measures per-stage timings of a *sequential* execution following the
/// eleven-stage ordering — the "Sequential Original" bars of the paper's
/// Fig. 11 (per-stage sequential baseline).
pub fn run_stages_sequential(ctx: &RunContext) -> Result<Vec<StageTiming>> {
    let mut stage_timings = Vec::with_capacity(STAGE_TABLE.len());
    for stage in &STAGE_TABLE {
        let t0 = Instant::now();
        for &p in stage.processes {
            run_process(ctx, p, false, false)?;
        }
        stage_timings.push(StageTiming {
            stage: stage.id,
            elapsed: t0.elapsed(),
        });
    }
    Ok(stage_timings)
}

/// Convenience: total wall time of a report's stages (sanity checks).
pub fn stages_total(stages: &[StageTiming]) -> Duration {
    stages.iter().map(|s| s.elapsed).sum()
}

/// Convenience: find a stage's time in a timing list.
pub fn stage_elapsed(stages: &[StageTiming], id: StageId) -> Option<Duration> {
    stages.iter().find(|s| s.stage == id).map(|s| s.elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;

    fn prepare(tag: &str, scale: f64) -> (std::path::PathBuf, std::path::PathBuf) {
        let base = std::env::temp_dir().join(format!("arp-exec-{tag}-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        let event = arp_synth::paper_event(0, scale);
        arp_synth::write_event_inputs(&event, &input).unwrap();
        (base, input)
    }

    #[test]
    fn sequential_original_runs_all_twenty() {
        let (base, input) = prepare("seq", 0.002);
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        let report = run_pipeline_labeled(&ctx, ImplKind::SequentialOriginal, "ev0").unwrap();
        assert_eq!(report.processes.len(), 20);
        assert_eq!(report.v1_files, 5);
        assert!(report.data_points > 0);
        assert!(report.stages.is_empty());
        assert_eq!(report.event, "ev0");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn optimized_skips_redundant_processes() {
        let (base, input) = prepare("opt", 0.002);
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        let report = run_pipeline(&ctx, ImplKind::SequentialOptimized).unwrap();
        assert_eq!(report.processes.len(), 17);
        for t in &report.processes {
            assert!(!matches!(t.process.0, 6 | 12 | 14));
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn parallel_implementations_record_stage_timings() {
        let (base, input) = prepare("par", 0.002);
        for kind in [ImplKind::PartiallyParallel, ImplKind::FullyParallel] {
            let ctx = RunContext::new(
                &input,
                base.join(format!("w-{:?}", kind)),
                PipelineConfig::fast(),
            )
            .unwrap();
            let report = run_pipeline(&ctx, kind).unwrap();
            assert_eq!(report.stages.len(), 11);
            assert_eq!(report.processes.len(), 17);
            assert!(stage_elapsed(&report.stages, StageId::IX).is_some());
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn measure_input_shape_counts_points() {
        let (base, input) = prepare("shape", 0.002);
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        let (files, points) = measure_input_shape(&ctx).unwrap();
        assert_eq!(files, 5);
        let expected = arp_synth::paper_event(0, 0.002).total_data_points();
        assert_eq!(points, expected);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn dag_parallel_runs_without_stages_and_reports_schedule() {
        let (base, input) = prepare("dag", 0.002);
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        let report = run_pipeline(&ctx, ImplKind::DagParallel).unwrap();
        assert_eq!(report.processes.len(), 17);
        for t in &report.processes {
            assert!(!matches!(t.process.0, 6 | 12 | 14));
        }
        assert!(
            report.stages.is_empty(),
            "the DAG path has no stage barriers"
        );
        let dag = report.dag.expect("DagParallel must attach a DagReport");
        assert!(!dag.critical_path.is_empty());
        assert!(dag.critical_path_len <= dag.dag_makespan);
        assert!(dag.dag_makespan <= dag.barrier_makespan);
        assert!(dag.barrier_makespan <= dag.node_total);
        assert!(dag.threads >= 1);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn dag_parallel_simulated_beats_or_matches_barrier_plan() {
        let mut cfg = PipelineConfig::fast();
        cfg.timing = TimingModel::Simulated { threads: 17 };
        let (base, input) = prepare("dagsim", 0.002);
        let ctx = RunContext::new(&input, base.join("w"), cfg).unwrap();
        let report = run_pipeline(&ctx, ImplKind::DagParallel).unwrap();
        let dag = report.dag.unwrap();
        assert_eq!(dag.threads, 17);
        assert!(dag.dag_makespan <= dag.barrier_makespan);
        assert_eq!(
            dag.barrier_saving() + dag.stage_saving(),
            dag.node_total - dag.dag_makespan,
        );
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn pool_stats_attach_when_the_shared_pool_is_used() {
        let (base, input) = prepare("dagstats", 0.002);
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        let report = run_pipeline(&ctx, ImplKind::DagParallel).unwrap();
        let pool = report.pool.expect("measured DAG runs dispatch on the pool");
        assert!(
            pool.dag_dispatches >= 17,
            "dispatches: {}",
            pool.dag_dispatches
        );
        assert!(pool.dags_completed >= 1);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn measure_input_shape_rejects_headerless_station() {
        let (base, input) = prepare("badshape", 0.002);
        std::fs::write(
            input.join("zz_bad.v1"),
            "station preamble\nno header here\n",
        )
        .unwrap();
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        let err = measure_input_shape(&ctx).unwrap_err();
        assert!(
            err.to_string().contains("BEGIN ACC"),
            "unexpected error: {err}"
        );
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn stages_sequential_covers_all_stages() {
        let (base, input) = prepare("stageseq", 0.002);
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        let stages = run_stages_sequential(&ctx).unwrap();
        assert_eq!(stages.len(), 11);
        assert!(stages_total(&stages) > Duration::ZERO);
        std::fs::remove_dir_all(&base).unwrap();
    }
}
