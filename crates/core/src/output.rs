//! Output snapshots — used to prove the four implementations equivalent.
//!
//! A snapshot maps artifact names to content hashes for the *final* outputs
//! of a run (V2, F, R, GEM, plots, max values, filter params). Flag files
//! and the intermediate copies are excluded: the original and optimized
//! versions intentionally differ in scratch artifacts, while their final
//! products must match.

use crate::error::{PipelineError, Result};
use std::collections::BTreeMap;
use std::path::Path;

/// FNV-1a content hash (stable, dependency-free).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// True if a file name is one of the pipeline's *final products*.
pub fn is_final_product(name: &str) -> bool {
    name.ends_with(".v2")
        || name.ends_with(".f")
        || name.ends_with(".r")
        || name.ends_with(".gem")
        || name.ends_with(".ps")
        || name == arp_formats::MaxValues::FILE_NAME
        || name == arp_formats::FilterParams::FILE_NAME
}

/// Collects a snapshot of a work directory's final products.
pub fn snapshot(dir: &Path) -> Result<BTreeMap<String, u64>> {
    let mut map = BTreeMap::new();
    let entries = std::fs::read_dir(dir).map_err(|e| PipelineError::io(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PipelineError::io(dir, e))?;
        if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if !is_final_product(&name) {
            continue;
        }
        let bytes = std::fs::read(entry.path()).map_err(|e| PipelineError::io(entry.path(), e))?;
        map.insert(name, fnv1a(&bytes));
    }
    Ok(map)
}

/// Compares two snapshots, returning human-readable differences.
pub fn diff_snapshots(a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>) -> Vec<String> {
    let mut diffs = Vec::new();
    for (name, hash) in a {
        match b.get(name) {
            None => diffs.push(format!("{name}: missing from second run")),
            Some(other) if other != hash => diffs.push(format!("{name}: content differs")),
            _ => {}
        }
    }
    for name in b.keys() {
        if !a.contains_key(name) {
            diffs.push(format!("{name}: missing from first run"));
        }
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn final_product_filter() {
        assert!(is_final_product("SSLBl.v2"));
        assert!(is_final_product("SSLBl.f"));
        assert!(is_final_product("SSLBl.r"));
        assert!(is_final_product("SSLBlGEM2A.gem"));
        assert!(is_final_product("SSLB.ps"));
        assert!(is_final_product("max-values.txt"));
        assert!(is_final_product("filter-params.txt"));
        assert!(!is_final_product("flag0.txt"));
        assert!(!is_final_product("SSLB.v1"));
        assert!(!is_final_product("SSLBl.v1"));
        assert!(!is_final_product("v1list.txt"));
    }

    #[test]
    fn snapshot_and_diff() {
        let base = std::env::temp_dir().join(format!("arp-snap-{}", std::process::id()));
        let a = base.join("a");
        let b = base.join("b");
        std::fs::create_dir_all(&a).unwrap();
        std::fs::create_dir_all(&b).unwrap();

        std::fs::write(a.join("X.v2"), "same").unwrap();
        std::fs::write(b.join("X.v2"), "same").unwrap();
        std::fs::write(a.join("Y.v2"), "one").unwrap();
        std::fs::write(b.join("Y.v2"), "two").unwrap();
        std::fs::write(a.join("only-a.r"), "x").unwrap();
        std::fs::write(b.join("only-b.gem"), "y").unwrap();
        std::fs::write(a.join("flag0.txt"), "ignored").unwrap();

        let sa = snapshot(&a).unwrap();
        let sb = snapshot(&b).unwrap();
        assert!(!sa.contains_key("flag0.txt"));
        let diffs = diff_snapshots(&sa, &sb);
        assert_eq!(diffs.len(), 3, "{diffs:?}");
        assert!(diffs.iter().any(|d| d.contains("Y.v2")));
        assert!(diffs.iter().any(|d| d.contains("only-a.r")));
        assert!(diffs.iter().any(|d| d.contains("only-b.gem")));

        // Identical dirs diff empty.
        assert!(diff_snapshots(&sa, &sa).is_empty());
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn missing_dir_errors() {
        assert!(snapshot(Path::new("/nonexistent/arp-snap")).is_err());
    }
}
