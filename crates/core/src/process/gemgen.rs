//! Process #19 — GEM file generation.
//!
//! From each station's V2/R file pair, eighteen GEM product files are
//! written: for each component, the corrected time series of acceleration,
//! velocity, and displacement (`GEM2A/2V/2D`), and the 5%-damped response
//! spectrum ordinates of the same quantities (`GEMRA/RV/RD`).
//!
//! The paper's Stage X parallelizes this as a flat loop over `2N` entries
//! (one V2 group and one R group per station), using all available
//! processors — `SetDataApart(files[i], isR)`. That structure is reproduced
//! here.

use crate::context::RunContext;
use crate::error::Result;
use arp_formats::gem::{GemFile, GemSource};
use arp_formats::{names, Component, Quantity, RFile, V2File};

/// Damping ratio whose spectra feed the `GEMR*` files.
const GEM_DAMPING: f64 = 0.05;

/// Writes the nine time-series GEM files for one station.
fn set_data_apart_v2(ctx: &RunContext, station: &str) -> Result<()> {
    for comp in Component::ALL {
        let v2 = V2File::read(&ctx.artifact(&names::v2_component(station, comp)))?;
        let t: Vec<f64> = (0..v2.data.len())
            .map(|i| i as f64 * v2.header.dt)
            .collect();
        for q in Quantity::ALL {
            let gem = GemFile::new(
                station,
                v2.header.event_id.clone(),
                comp,
                GemSource::TimeSeries,
                q,
                t.clone(),
                v2.data.get(q).to_vec(),
            )?;
            gem.write(&ctx.artifact(&gem.file_name()))?;
        }
    }
    Ok(())
}

/// Writes the nine response-spectrum GEM files for one station.
fn set_data_apart_r(ctx: &RunContext, station: &str) -> Result<()> {
    for comp in Component::ALL {
        let r = RFile::read(&ctx.artifact(&names::r_component(station, comp)))?;
        let spec = r
            .at_damping(GEM_DAMPING)
            .expect("validated RFile has at least one spectrum");
        for q in Quantity::ALL {
            let values = match q {
                Quantity::Acceleration => spec.sa.clone(),
                Quantity::Velocity => spec.sv.clone(),
                Quantity::Displacement => spec.sd.clone(),
            };
            let gem = GemFile::new(
                station,
                r.event_id.clone(),
                comp,
                GemSource::ResponseSpectrum,
                q,
                spec.periods.clone(),
                values,
            )?;
            gem.write(&ctx.artifact(&gem.file_name()))?;
        }
    }
    Ok(())
}

/// Runs process #19: the flat `2N` loop of the paper's `GenerateGEMFiles`.
pub fn generate_gem_files(ctx: &RunContext, parallel: bool) -> Result<()> {
    let stations = ctx.stations()?;
    let total = stations.len() * 2;
    let body = |i: usize| -> Result<()> {
        let station = &stations[i / 2];
        let is_r = i % 2 == 1;
        if is_r {
            set_data_apart_r(ctx, station)
        } else {
            set_data_apart_v2(ctx, station)
        }
    };
    if parallel {
        ctx.par_for_profiled(total, 0.67, body)
    } else {
        ctx.seq_for(total, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::context::RunContext;
    use crate::process::{filter, filterinit, gather, respspec, separate};

    fn prepare(tag: &str) -> (std::path::PathBuf, RunContext) {
        let base = std::env::temp_dir().join(format!("arp-gem-{tag}-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        let event = arp_synth::paper_event(0, 0.002);
        arp_synth::write_event_inputs(&event, &input).unwrap();
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        gather::gather_inputs(&ctx, false).unwrap();
        filterinit::init_filter_params(&ctx).unwrap();
        separate::separate_components(&ctx, false).unwrap();
        filter::correct_signals(&ctx, filter::CorrectionPass::Default, false).unwrap();
        respspec::response_spectrum_calc(&ctx, false).unwrap();
        (base, ctx)
    }

    #[test]
    fn writes_eighteen_gem_files_per_station() {
        let (base, ctx) = prepare("count");
        generate_gem_files(&ctx, false).unwrap();
        for s in ctx.stations().unwrap() {
            let mut count = 0;
            for comp in Component::ALL {
                for from_r in [false, true] {
                    for q in Quantity::ALL {
                        let name = names::gem(&s, comp, from_r, q);
                        let gem = GemFile::read(&ctx.artifact(&name)).unwrap();
                        assert!(gem.peak >= 0.0);
                        assert!(!gem.values.is_empty());
                        count += 1;
                    }
                }
            }
            assert_eq!(count, 18);
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn time_series_gem_matches_v2_trace() {
        let (base, ctx) = prepare("match");
        generate_gem_files(&ctx, true).unwrap();
        let s = ctx.stations().unwrap()[0].clone();
        let v2 =
            V2File::read(&ctx.artifact(&names::v2_component(&s, Component::Vertical))).unwrap();
        let gem = GemFile::read(&ctx.artifact(&names::gem(
            &s,
            Component::Vertical,
            false,
            Quantity::Velocity,
        )))
        .unwrap();
        assert_eq!(gem.values.len(), v2.data.vel.len());
        for (a, b) in gem.values.iter().zip(v2.data.vel.iter()) {
            assert!((a - b).abs() <= 1e-12 * b.abs().max(1e-12));
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn spectrum_gem_uses_five_percent_damping() {
        let (base, ctx) = prepare("damp");
        generate_gem_files(&ctx, false).unwrap();
        let s = ctx.stations().unwrap()[0].clone();
        let r =
            RFile::read(&ctx.artifact(&names::r_component(&s, Component::Longitudinal))).unwrap();
        let expected = r.at_damping(0.05).unwrap();
        let gem = GemFile::read(&ctx.artifact(&names::gem(
            &s,
            Component::Longitudinal,
            true,
            Quantity::Acceleration,
        )))
        .unwrap();
        assert_eq!(gem.values.len(), expected.sa.len());
        std::fs::remove_dir_all(&base).unwrap();
    }
}
