//! Processes #6, #9, #15, #18 — plot generation.
//!
//! Real PostScript documents are produced, as in the original pipeline:
//!
//! * **#6** — `<s>.ps` from the *uncorrected* V1 traces (redundant: its
//!   output is overwritten by #15 and never consumed; dropped by the
//!   optimized version);
//! * **#9** — `<s>f.ps`, log-log Fourier spectra from the F files;
//! * **#15** — `<s>.ps`, corrected accelerogram panels from the V2 files;
//! * **#18** — `<s>r.ps`, log-log response spectra from the R files.
//!
//! Stage XI of the paper runs #9, #15, #18 as three concurrent OpenMP tasks;
//! the executors express that with [`crate::context::RunContext::tasks`].

use crate::context::RunContext;
use crate::error::{PipelineError, Result};
use arp_formats::{names, Component, FFile, RFile, V1StationFile, V2File};
use arp_plot::{Figure, LineChart, Scale, Series};

fn time_axis(n: usize, dt: f64) -> Vec<f64> {
    (0..n).map(|i| i as f64 * dt).collect()
}

fn write_ps(ctx: &RunContext, name: &str, fig: &Figure) -> Result<()> {
    let path = ctx.artifact(name);
    std::fs::write(&path, fig.to_postscript()).map_err(|e| PipelineError::io(&path, e))
}

/// Builds the acc/vel/disp stacked figure for one component triple.
fn motion_figure(title: &str, dt: f64, triple: &arp_formats::MotionTriple) -> Figure {
    let t = time_axis(triple.len(), dt);
    let panels = vec![
        LineChart::new(format!("{title} — acceleration"))
            .labels("Time (s)", "cm/s2")
            .with_series(Series::from_xy("acc", &t, &triple.acc)),
        LineChart::new(format!("{title} — velocity"))
            .labels("Time (s)", "cm/s")
            .with_series(Series::from_xy("vel", &t, &triple.vel)),
        LineChart::new(format!("{title} — displacement"))
            .labels("Time (s)", "cm")
            .with_series(Series::from_xy("disp", &t, &triple.disp)),
    ];
    Figure::new(panels)
}

/// Process #6: plot the uncorrected signals (first component of each V1).
pub fn plot_uncorrected(ctx: &RunContext, parallel: bool) -> Result<()> {
    let stations = ctx.stations()?;
    let body = |i: usize| -> Result<()> {
        let station = &stations[i];
        let v1 = V1StationFile::read(&ctx.artifact(&names::v1_station(station)))?;
        let (comp, triple) = &v1.components[0];
        let fig = motion_figure(
            &format!("{station} {} (uncorrected)", comp.name()),
            v1.header.dt,
            triple,
        );
        write_ps(ctx, &names::plot_acc(station), &fig)
    };
    if parallel {
        ctx.par_for_profiled(stations.len(), 0.3, body)
    } else {
        ctx.seq_for(stations.len(), body)
    }
}

/// Process #15: plot the corrected accelerograph (three components stacked,
/// acceleration traces, plus the longitudinal vel/disp panels).
pub fn plot_accelerograph(ctx: &RunContext, parallel: bool) -> Result<()> {
    let stations = ctx.stations()?;
    let body = |i: usize| -> Result<()> {
        let station = &stations[i];
        let v2 =
            V2File::read(&ctx.artifact(&names::v2_component(station, Component::Longitudinal)))?;
        let fig = motion_figure(
            &format!("{station} LONGITUDINAL (corrected)"),
            v2.header.dt,
            &v2.data,
        );
        write_ps(ctx, &names::plot_acc(station), &fig)
    };
    if parallel {
        ctx.par_for_profiled(stations.len(), 0.3, body)
    } else {
        ctx.seq_for(stations.len(), body)
    }
}

/// Process #9: plot the Fourier spectra (`<s>f.ps`, log-log, three
/// quantities per component).
pub fn plot_fourier_spectrum(ctx: &RunContext, parallel: bool) -> Result<()> {
    let stations = ctx.stations()?;
    let body = |i: usize| -> Result<()> {
        let station = &stations[i];
        let mut panels = Vec::with_capacity(3);
        for comp in Component::ALL {
            let f = FFile::read(&ctx.artifact(&names::f_component(station, comp)))?;
            let periods: Vec<f64> = f.spectrum.periods();
            let chart = LineChart::new(format!("{station} {} Fourier spectra", comp.name()))
                .labels("Period (s)", "amplitude")
                .scales(Scale::Log10, Scale::Log10)
                .with_series(Series::from_xy(
                    "acceleration",
                    &periods,
                    &f.spectrum.acceleration,
                ))
                .with_series(Series::from_xy("velocity", &periods, &f.spectrum.velocity))
                .with_series(Series::from_xy(
                    "displacement",
                    &periods,
                    &f.spectrum.displacement,
                ));
            panels.push(chart);
        }
        write_ps(ctx, &names::plot_fourier(station), &Figure::new(panels))
    };
    if parallel {
        ctx.par_for_profiled(stations.len(), 0.3, body)
    } else {
        ctx.seq_for(stations.len(), body)
    }
}

/// Process #18: plot the response spectra (`<s>r.ps`, log-log SA/SV/SD at
/// the first configured damping).
pub fn plot_response_spectrum(ctx: &RunContext, parallel: bool) -> Result<()> {
    let stations = ctx.stations()?;
    let body = |i: usize| -> Result<()> {
        let station = &stations[i];
        let mut panels = Vec::with_capacity(3);
        for comp in Component::ALL {
            let r = RFile::read(&ctx.artifact(&names::r_component(station, comp)))?;
            let s = &r.spectra[0];
            let chart = LineChart::new(format!(
                "{station} {} response spectrum (damping {:.0}%)",
                comp.name(),
                s.damping * 100.0
            ))
            .labels("Period (s)", "response")
            .scales(Scale::Log10, Scale::Log10)
            .with_series(Series::from_xy("SA", &s.periods, &s.sa))
            .with_series(Series::from_xy("SV", &s.periods, &s.sv))
            .with_series(Series::from_xy("SD", &s.periods, &s.sd));
            panels.push(chart);
        }
        write_ps(ctx, &names::plot_response(station), &Figure::new(panels))
    };
    if parallel {
        ctx.par_for_profiled(stations.len(), 0.3, body)
    } else {
        ctx.seq_for(stations.len(), body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::process::{filter, filterinit, fourier, gather, respspec, separate};

    fn prepare(tag: &str) -> (std::path::PathBuf, RunContext) {
        let base = std::env::temp_dir().join(format!("arp-plot-{tag}-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        let event = arp_synth::paper_event(0, 0.002);
        arp_synth::write_event_inputs(&event, &input).unwrap();
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        gather::gather_inputs(&ctx, false).unwrap();
        filterinit::init_filter_params(&ctx).unwrap();
        separate::separate_components(&ctx, false).unwrap();
        filter::correct_signals(&ctx, filter::CorrectionPass::Default, false).unwrap();
        fourier::fourier_transform(&ctx, false).unwrap();
        respspec::response_spectrum_calc(&ctx, false).unwrap();
        (base, ctx)
    }

    #[test]
    fn all_plot_processes_produce_postscript() {
        let (base, ctx) = prepare("all");
        plot_uncorrected(&ctx, false).unwrap();
        plot_fourier_spectrum(&ctx, true).unwrap();
        plot_accelerograph(&ctx, false).unwrap();
        plot_response_spectrum(&ctx, true).unwrap();
        for s in ctx.stations().unwrap() {
            for name in [
                names::plot_acc(&s),
                names::plot_fourier(&s),
                names::plot_response(&s),
            ] {
                let text = std::fs::read_to_string(ctx.artifact(&name)).unwrap();
                assert!(text.starts_with("%!PS-Adobe"), "{name} not PostScript");
                assert!(text.len() > 500, "{name} suspiciously small");
            }
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn process_15_overwrites_process_6_output() {
        let (base, ctx) = prepare("overwrite");
        plot_uncorrected(&ctx, false).unwrap();
        let s0 = ctx.stations().unwrap()[0].clone();
        let before = std::fs::read_to_string(ctx.artifact(&names::plot_acc(&s0))).unwrap();
        assert!(before.contains("uncorrected"));
        plot_accelerograph(&ctx, false).unwrap();
        let after = std::fs::read_to_string(ctx.artifact(&names::plot_acc(&s0))).unwrap();
        assert!(after.contains("corrected"));
        assert!(!after.contains("uncorrected"));
        std::fs::remove_dir_all(&base).unwrap();
    }
}
