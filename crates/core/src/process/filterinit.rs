//! Process #2 — initialize filter parameters.
//!
//! Writes the filter-params metadata file holding the default band-pass
//! corners. Process #10 later appends the per-station FSL/FPL corners.

use crate::context::RunContext;
use crate::error::Result;
use arp_formats::FilterParams;

/// Runs process #2.
pub fn init_filter_params(ctx: &RunContext) -> Result<()> {
    FilterParams::new(ctx.config.default_band).write(&ctx.artifact(FilterParams::FILE_NAME))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;

    #[test]
    fn writes_default_band() {
        let base = std::env::temp_dir().join(format!("arp-fpinit-{}", std::process::id()));
        let ctx = RunContext::new(&base, base.join("w"), PipelineConfig::fast()).unwrap();
        init_filter_params(&ctx).unwrap();
        let fp = FilterParams::read(&ctx.artifact(FilterParams::FILE_NAME)).unwrap();
        assert_eq!(fp.default_band, ctx.config.default_band);
        assert!(fp.stations.is_empty());
        std::fs::remove_dir_all(&base).unwrap();
    }
}
