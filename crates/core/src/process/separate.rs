//! Processes #3 and #12 — separate station records by component.
//!
//! Reads each raw `<station>.v1` file and writes the three per-component
//! `<station><c>.v1` files (the unit the filtering processes consume). In
//! the fully parallelized version this is the Fortran `OMP DO` loop of
//! §VI-A: one iteration per station, each opening its own set of files.
//!
//! Process #12 repeats the same work and is one of the redundancies the
//! optimized version removes (V1 files are never modified in between).

use crate::context::RunContext;
use crate::error::Result;
use arp_formats::names;
use arp_formats::v1::V1StationReader;

/// Runs process #3 (or #12 — identical semantics).
///
/// Uses the streaming [`V1StationReader`]: each per-component record is
/// parsed, written, and dropped before the next is read, so a station's
/// whole multi-component file is never resident at once.
pub fn separate_components(ctx: &RunContext, parallel: bool) -> Result<()> {
    let stations = ctx.stations()?;
    let body = |i: usize| -> Result<()> {
        let station = &stations[i];
        let reader = V1StationReader::open(&ctx.artifact(&names::v1_station(station)))?;
        for part in reader {
            let part = part?;
            let name = names::v1_component(station, part.component);
            part.write(&ctx.artifact(&name))?;
        }
        Ok(())
    };
    if parallel {
        ctx.par_for_profiled(stations.len(), 0.55, body)
    } else {
        ctx.seq_for(stations.len(), body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::process::gather;
    use arp_formats::{Component, V1ComponentFile};
    use arp_synth::{paper_event, write_event_inputs};

    #[test]
    fn splits_every_station_into_three_components() {
        let base = std::env::temp_dir().join(format!("arp-sep-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        let event = paper_event(0, 0.005);
        write_event_inputs(&event, &input).unwrap();

        for parallel in [false, true] {
            let ctx = RunContext::new(
                &input,
                base.join(format!("w{parallel}")),
                PipelineConfig::fast(),
            )
            .unwrap();
            gather::gather_inputs(&ctx, false).unwrap();
            separate_components(&ctx, parallel).unwrap();
            for station in ctx.stations().unwrap() {
                for comp in Component::ALL {
                    let path = ctx.artifact(&names::v1_component(&station, comp));
                    let f = V1ComponentFile::read(&path).unwrap();
                    assert_eq!(f.component, comp);
                    assert_eq!(f.header.station, station);
                    assert!(!f.data.is_empty());
                }
            }
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn missing_v1list_errors() {
        let base = std::env::temp_dir().join(format!("arp-sep2-{}", std::process::id()));
        let ctx = RunContext::new(&base, base.join("w"), PipelineConfig::fast()).unwrap();
        assert!(separate_components(&ctx, false).is_err());
        std::fs::remove_dir_all(&base).unwrap();
    }
}
