//! The twenty pipeline processes (Fig. 5 of the paper).
//!
//! Each submodule implements one process (or a pair sharing code, like the
//! two "separate by components" processes). Every process is a pure function
//! of the work-directory contents: it reads its input artifacts, computes,
//! and writes its output artifacts, so the four executors can order and
//! parallelize them freely as long as the dependencies of
//! [`crate::plan`] are respected.

pub mod analyze;
pub mod filter;
pub mod filterinit;
pub mod flags;
pub mod fourier;
pub mod gather;
pub mod gemgen;
pub mod metainit;
pub mod plots;
pub mod respspec;
pub mod rotdgen;
pub mod separate;

use serde::{Deserialize, Serialize};

/// Identifier of one of the twenty processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProcessId(pub u8);

/// Workload category of a process (legend of Figs. 5–10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProcessKind {
    /// Dominated by file reads/writes.
    HeavyIo,
    /// Dominated by floating-point computation.
    HeavyFlops,
    /// Produces plot files.
    Plotting,
    /// Negligible cost (metadata/flag initialization).
    Light,
}

/// Implementation language in the original system (C++ driver or Fortran
/// program) — retained because the paper's parallelization strategy is
/// chosen per language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Language {
    /// C++ host code.
    Cpp,
    /// Legacy Fortran program.
    Fortran,
}

/// Static description of one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessInfo {
    /// Process number (0–19).
    pub id: ProcessId,
    /// Human-readable name.
    pub name: &'static str,
    /// Workload category.
    pub kind: ProcessKind,
    /// Original implementation language.
    pub language: Language,
    /// True for the redundant processes removed by the optimized version
    /// (#6, #12, #14).
    pub redundant: bool,
}

/// The full process table, indexed by process number.
pub const PROCESS_TABLE: [ProcessInfo; 20] = {
    use Language::*;
    use ProcessKind::*;
    [
        ProcessInfo {
            id: ProcessId(0),
            name: "Initialize flags",
            kind: Light,
            language: Cpp,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(1),
            name: "Gather input data files",
            kind: HeavyIo,
            language: Cpp,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(2),
            name: "Initialize filter parameters",
            kind: Light,
            language: Fortran,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(3),
            name: "Separate data by components",
            kind: HeavyIo,
            language: Fortran,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(4),
            name: "Apply default filters",
            kind: HeavyFlops,
            language: Fortran,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(5),
            name: "Initialize metadata files",
            kind: Light,
            language: Fortran,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(6),
            name: "Plot uncorrected signals",
            kind: Plotting,
            language: Fortran,
            redundant: true,
        },
        ProcessInfo {
            id: ProcessId(7),
            name: "Apply Fourier transformation",
            kind: HeavyFlops,
            language: Fortran,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(8),
            name: "Initialize filelist metadata",
            kind: Light,
            language: Fortran,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(9),
            name: "Plot Fourier spectrum",
            kind: Plotting,
            language: Fortran,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(10),
            name: "Obtain FSL & FPL values",
            kind: HeavyFlops,
            language: Cpp,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(11),
            name: "Initialize flags",
            kind: Light,
            language: Cpp,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(12),
            name: "Separate data by components (again)",
            kind: HeavyIo,
            language: Fortran,
            redundant: true,
        },
        ProcessInfo {
            id: ProcessId(13),
            name: "Obtain corrected signals",
            kind: HeavyFlops,
            language: Fortran,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(14),
            name: "Initialize metadata files (again)",
            kind: Light,
            language: Fortran,
            redundant: true,
        },
        ProcessInfo {
            id: ProcessId(15),
            name: "Plot accelerograph",
            kind: Plotting,
            language: Fortran,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(16),
            name: "Response spectrum calculation",
            kind: HeavyFlops,
            language: Fortran,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(17),
            name: "Initialize filelist metadata",
            kind: Light,
            language: Fortran,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(18),
            name: "Plot response spectrum",
            kind: Plotting,
            language: Fortran,
            redundant: false,
        },
        ProcessInfo {
            id: ProcessId(19),
            name: "Generate GEM files",
            kind: HeavyIo,
            language: Cpp,
            redundant: false,
        },
    ]
};

/// Looks up a process description.
pub fn process_info(id: ProcessId) -> &'static ProcessInfo {
    &PROCESS_TABLE[id.0 as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_complete_and_ordered() {
        assert_eq!(PROCESS_TABLE.len(), 20);
        for (i, p) in PROCESS_TABLE.iter().enumerate() {
            assert_eq!(p.id.0 as usize, i);
        }
    }

    #[test]
    fn redundant_processes_match_paper() {
        let redundant: Vec<u8> = PROCESS_TABLE
            .iter()
            .filter(|p| p.redundant)
            .map(|p| p.id.0)
            .collect();
        assert_eq!(redundant, vec![6, 12, 14]);
    }

    #[test]
    fn lookup_works() {
        assert_eq!(
            process_info(ProcessId(16)).name,
            "Response spectrum calculation"
        );
        assert_eq!(process_info(ProcessId(16)).kind, ProcessKind::HeavyFlops);
    }
}
