//! Processes #0 and #11 — flag initialization.
//!
//! The legacy system gates its control flow on ten flag files; both flag
//! processes write all ten. Process #11 is the only process never
//! parallelized in the paper (its runtime is under two milliseconds).

use crate::context::RunContext;
use crate::error::Result;
use arp_formats::FlagFile;

/// Number of flag files the legacy pipeline maintains.
pub const FLAG_COUNT: usize = 10;

/// Process #0: writes the ten flag files with value `false` (fresh run).
pub fn init_flags(ctx: &RunContext) -> Result<()> {
    write_flags(ctx, false)
}

/// Process #11: re-initializes the ten flags to `true` (the "definitive
/// correction pass has started" markers).
pub fn reinit_flags(ctx: &RunContext) -> Result<()> {
    write_flags(ctx, true)
}

fn write_flags(ctx: &RunContext, value: bool) -> Result<()> {
    for index in 0..FLAG_COUNT {
        let f = FlagFile { index, value };
        f.write(&ctx.artifact(&FlagFile::file_name(index)))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;

    #[test]
    fn writes_ten_flags_and_reinit_flips() {
        let base = std::env::temp_dir().join(format!("arp-flags-{}", std::process::id()));
        let ctx = RunContext::new(&base, base.join("w"), PipelineConfig::fast()).unwrap();

        init_flags(&ctx).unwrap();
        for i in 0..FLAG_COUNT {
            let f = FlagFile::read(&ctx.artifact(&FlagFile::file_name(i))).unwrap();
            assert_eq!(f.index, i);
            assert!(!f.value);
        }

        reinit_flags(&ctx).unwrap();
        for i in 0..FLAG_COUNT {
            let f = FlagFile::read(&ctx.artifact(&FlagFile::file_name(i))).unwrap();
            assert!(f.value);
        }
        std::fs::remove_dir_all(&base).unwrap();
    }
}
