//! Process #7 — Fourier transformation.
//!
//! For every corrected component (`<s><c>.v2`) computes the Fourier
//! amplitude spectra of acceleration, velocity, and displacement, writing
//! `<s><c>.f`. In the fully parallelized implementation this runs through
//! the temp-folder staging protocol (§VI-D), one folder per station.

use crate::context::RunContext;
use crate::error::Result;
use crate::stagedir::{run_staged, StagedKernel};
use arp_dsp::backend::DspBackend;
use arp_dsp::spectrum::fourier_spectrum_with;
use arp_formats::{names, Component, FFile, V2File};
use std::path::Path;

/// Transforms all components of one station inside `dir`.
fn fourier_station_in_dir(dir: &Path, station: &str, backend: DspBackend) -> Result<()> {
    for comp in Component::ALL {
        let v2 = V2File::read(&dir.join(names::v2_component(station, comp)))?;
        let spectrum = fourier_spectrum_with(&v2.data.acc, v2.header.dt, backend)?;
        let f = FFile {
            station: station.to_string(),
            event_id: v2.header.event_id.clone(),
            component: comp,
            dt: v2.header.dt,
            spectrum,
        };
        f.write(&dir.join(names::f_component(station, comp)))?;
    }
    Ok(())
}

/// Runs process #7 directly in the work directory.
pub fn fourier_transform(ctx: &RunContext, parallel: bool) -> Result<()> {
    let stations = ctx.stations()?;
    let body =
        |i: usize| fourier_station_in_dir(&ctx.work_dir, &stations[i], ctx.config.dsp_backend);
    if parallel {
        ctx.par_for_profiled(stations.len(), 0.59, body)
    } else {
        ctx.seq_for(stations.len(), body)
    }
}

/// Runs process #7 through the temp-folder staging protocol.
pub fn fourier_transform_staged(ctx: &RunContext, parallel: bool) -> Result<()> {
    let stations = ctx.stations()?;
    let kernel = StagedKernel {
        tag: "p07",
        serial_fraction: 0.59,
        inputs: &|station: &str| {
            Component::ALL
                .iter()
                .map(|&c| names::v2_component(station, c))
                .collect()
        },
        outputs: &|station: &str| {
            Component::ALL
                .iter()
                .map(|&c| names::f_component(station, c))
                .collect()
        },
        run: &|dir: &Path, _i: usize, station: &str| {
            fourier_station_in_dir(dir, station, ctx.config.dsp_backend)
        },
    };
    run_staged(ctx, &stations, parallel, &kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::process::{filter, filterinit, gather, separate};

    fn prepare(tag: &str) -> (std::path::PathBuf, RunContext) {
        let base = std::env::temp_dir().join(format!("arp-fft-{tag}-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        let event = arp_synth::paper_event(0, 0.003);
        arp_synth::write_event_inputs(&event, &input).unwrap();
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        gather::gather_inputs(&ctx, false).unwrap();
        filterinit::init_filter_params(&ctx).unwrap();
        separate::separate_components(&ctx, false).unwrap();
        filter::correct_signals(&ctx, filter::CorrectionPass::Default, false).unwrap();
        (base, ctx)
    }

    #[test]
    fn writes_f_files_for_every_component() {
        let (base, ctx) = prepare("basic");
        fourier_transform(&ctx, false).unwrap();
        for s in ctx.stations().unwrap() {
            for c in Component::ALL {
                let f = FFile::read(&ctx.artifact(&names::f_component(&s, c))).unwrap();
                assert_eq!(f.component, c);
                assert!(f.spectrum.len() > 10);
                // Velocity spectrum strictly derived from acceleration.
                assert!(f.spectrum.velocity[1] > 0.0);
            }
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn staged_and_direct_agree() {
        let (base, ctx) = prepare("staged");
        fourier_transform(&ctx, false).unwrap();
        let s0 = ctx.stations().unwrap()[0].clone();
        let direct =
            std::fs::read_to_string(ctx.artifact(&names::f_component(&s0, Component::Transversal)))
                .unwrap();
        fourier_transform_staged(&ctx, true).unwrap();
        let staged =
            std::fs::read_to_string(ctx.artifact(&names::f_component(&s0, Component::Transversal)))
                .unwrap();
        assert_eq!(direct, staged);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn requires_v2_files() {
        let base = std::env::temp_dir().join(format!("arp-fft-miss-{}", std::process::id()));
        let ctx = RunContext::new(base.join("in"), base.join("w"), PipelineConfig::fast()).unwrap();
        arp_formats::FileList::new("v1list", vec!["GHOST.v1".into()])
            .unwrap()
            .write(&ctx.artifact(crate::process::gather::V1LIST))
            .unwrap();
        assert!(fourier_transform(&ctx, false).is_err());
        std::fs::remove_dir_all(&base).unwrap();
    }
}
