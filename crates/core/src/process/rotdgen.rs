//! Extension process — orientation-independent RotD products.
//!
//! Not part of the paper's twenty processes: modern GEM ingestion asks for
//! RotD50/RotD100 spectral ordinates (Boore, 2010) computed from the two
//! horizontal components, instead of arbitrary as-installed orientations.
//! Enabled with [`crate::config::PipelineConfig::emit_rotd`]; runs after the
//! definitive correction (it only needs the final V2 files) and writes one
//! `<station>.rotd` file per station.

use crate::context::RunContext;
use crate::error::Result;
use arp_dsp::rotd::rotd_spectrum;
use arp_formats::numio::{write_block, write_kv, write_magic, Scanner};
use arp_formats::{names, Component, FormatError, V2File};
use std::path::Path;

/// Rotation angles evaluated per period (Boore recommends ≥ 30; 18 keeps
/// the product affordable while staying within a few percent of converged).
const ROTATION_ANGLES: usize = 18;

/// Periods at which RotD ordinates are archived (a compact engineering set).
pub const ROTD_PERIODS: [f64; 7] = [0.1, 0.2, 0.3, 0.5, 1.0, 2.0, 3.0];

/// One station's RotD product.
#[derive(Debug, Clone, PartialEq)]
pub struct RotDFile {
    /// Station code.
    pub station: String,
    /// Event identifier.
    pub event_id: String,
    /// Damping ratio of the ordinates.
    pub damping: f64,
    /// Periods (s).
    pub periods: Vec<f64>,
    /// RotD50 spectral displacement per period.
    pub rotd50: Vec<f64>,
    /// RotD100 spectral displacement per period.
    pub rotd100: Vec<f64>,
}

impl RotDFile {
    const MAGIC: &'static str = "ARP-ROTD";

    /// Conventional file name (`<station>.rotd`).
    pub fn file_name(station: &str) -> String {
        format!("{station}.rotd")
    }

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_magic(&mut out, Self::MAGIC);
        write_kv(&mut out, "STATION", &self.station);
        write_kv(&mut out, "EVENT", &self.event_id);
        write_kv(&mut out, "DAMPING", format!("{:.6}", self.damping));
        write_block(&mut out, "PERIODS", &self.periods);
        write_block(&mut out, "ROTD50", &self.rotd50);
        write_block(&mut out, "ROTD100", &self.rotd100);
        out
    }

    fn from_scanner<B: std::io::BufRead>(
        sc: &mut Scanner<B>,
    ) -> std::result::Result<Self, FormatError> {
        sc.expect_magic(Self::MAGIC)?;
        let station = sc.expect_kv("STATION")?;
        let event_id = sc.expect_kv("EVENT")?;
        let damping = sc.expect_kv_f64("DAMPING")?;
        let periods = sc.read_block("PERIODS")?;
        let rotd50 = sc.read_block("ROTD50")?;
        let rotd100 = sc.read_block("ROTD100")?;
        if rotd50.len() != periods.len() || rotd100.len() != periods.len() {
            return Err(FormatError::InvalidValue(
                "RotD column lengths differ".into(),
            ));
        }
        Ok(RotDFile {
            station,
            event_id,
            damping,
            periods,
            rotd50,
            rotd100,
        })
    }

    /// Parses from the text format.
    pub fn from_text(text: &str) -> std::result::Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::from_text(text))
    }

    /// Reads from `path`, streaming with a bounded buffer.
    pub fn read(path: &Path) -> std::result::Result<Self, FormatError> {
        let mut sc = Scanner::open(path)?;
        Self::from_scanner(&mut sc).map_err(|e| e.in_file(path))
    }
}

/// Runs the RotD extension for every station (horizontal components of the
/// definitive V2 records). No-op when the pipeline config has
/// `emit_rotd = false`; the executors gate the call.
pub fn generate_rotd(ctx: &RunContext, parallel: bool) -> Result<()> {
    let stations = ctx.stations()?;
    let damping = 0.05;
    let body = |i: usize| -> Result<()> {
        let station = &stations[i];
        let l =
            V2File::read(&ctx.artifact(&names::v2_component(station, Component::Longitudinal)))?;
        let t = V2File::read(&ctx.artifact(&names::v2_component(station, Component::Transversal)))?;
        let rotd = rotd_spectrum(
            &l.data.acc,
            &t.data.acc,
            l.header.dt,
            &ROTD_PERIODS,
            damping,
            ROTATION_ANGLES,
            ctx.config.response_method,
        )?;
        let file = RotDFile {
            station: station.clone(),
            event_id: l.header.event_id.clone(),
            damping,
            periods: ROTD_PERIODS.to_vec(),
            rotd50: rotd.iter().map(|r| r.rotd50).collect(),
            rotd100: rotd.iter().map(|r| r.rotd100).collect(),
        };
        arp_formats::fsio::write_file(
            &ctx.artifact(&RotDFile::file_name(station)),
            &file.to_text(),
        )?;
        Ok(())
    };
    if parallel {
        ctx.par_for_profiled(stations.len(), 0.08, body)
    } else {
        ctx.seq_for(stations.len(), body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::process::{filter, filterinit, gather, separate};

    fn prepare(tag: &str) -> (std::path::PathBuf, RunContext) {
        let base = std::env::temp_dir().join(format!("arp-rotd-{tag}-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        arp_synth::write_event_inputs(&arp_synth::paper_event(0, 0.002), &input).unwrap();
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        gather::gather_inputs(&ctx, false).unwrap();
        filterinit::init_filter_params(&ctx).unwrap();
        separate::separate_components(&ctx, false).unwrap();
        filter::correct_signals(&ctx, filter::CorrectionPass::Default, false).unwrap();
        (base, ctx)
    }

    #[test]
    fn writes_rotd_per_station_with_ordering_invariant() {
        let (base, ctx) = prepare("basic");
        generate_rotd(&ctx, false).unwrap();
        for s in ctx.stations().unwrap() {
            let f = RotDFile::read(&ctx.artifact(&RotDFile::file_name(&s))).unwrap();
            assert_eq!(f.periods.len(), ROTD_PERIODS.len());
            for k in 0..f.periods.len() {
                assert!(
                    f.rotd50[k] <= f.rotd100[k] + 1e-12,
                    "station {s} period {}: 50 {} > 100 {}",
                    f.periods[k],
                    f.rotd50[k],
                    f.rotd100[k]
                );
                assert!(f.rotd100[k] >= 0.0);
            }
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn parallel_matches_sequential() {
        let (base, ctx) = prepare("par");
        generate_rotd(&ctx, false).unwrap();
        let s0 = ctx.stations().unwrap()[0].clone();
        let seq = std::fs::read_to_string(ctx.artifact(&RotDFile::file_name(&s0))).unwrap();
        generate_rotd(&ctx, true).unwrap();
        let par = std::fs::read_to_string(ctx.artifact(&RotDFile::file_name(&s0))).unwrap();
        assert_eq!(seq, par);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn text_roundtrip() {
        let f = RotDFile {
            station: "SSLB".into(),
            event_id: "EV".into(),
            damping: 0.05,
            periods: vec![0.1, 1.0],
            rotd50: vec![0.5, 2.0],
            rotd100: vec![0.7, 2.5],
        };
        let back = RotDFile::from_text(&f.to_text()).unwrap();
        assert_eq!(back.station, f.station);
        assert!((back.rotd100[1] - 2.5).abs() < 1e-12);
        // Mismatched columns rejected.
        let bad = f.to_text().replace("BEGIN ROTD50 2", "BEGIN ROTD50 1");
        assert!(RotDFile::from_text(&bad).is_err());
    }
}
