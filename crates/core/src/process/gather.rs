//! Process #1 — gather input data files.
//!
//! Scans the input directory for raw `<station>.v1` files, copies them into
//! the work directory, and writes the `v1list` metadata every later process
//! keys off. The copy loop is the parallelizable part (heavy I/O, one file
//! per station).

use crate::context::{list_v1_station_files, RunContext};
use crate::error::{PipelineError, Result};
use arp_formats::FileList;

/// Name of the station-list metadata artifact.
pub const V1LIST: &str = "v1list.txt";

/// Runs process #1. `parallel` chooses whether the per-file copy loop uses
/// the parallel backend.
pub fn gather_inputs(ctx: &RunContext, parallel: bool) -> Result<()> {
    let names = list_v1_station_files(&ctx.input_dir)?;
    let copy_one = |i: usize| -> Result<()> {
        let name = &names[i];
        let src = ctx.input_dir.join(name);
        let dst = ctx.artifact(name);
        std::fs::copy(&src, &dst).map_err(|e| PipelineError::io(&src, e))?;
        Ok(())
    };
    if parallel {
        ctx.par_for_profiled(names.len(), 0.7, copy_one)?;
    } else {
        ctx.seq_for(names.len(), copy_one)?;
    }
    FileList::new("v1list", names)?.write(&ctx.artifact(V1LIST))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;

    #[test]
    fn copies_files_and_writes_list() {
        let base = std::env::temp_dir().join(format!("arp-gather-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        for s in ["BBB", "AAA"] {
            std::fs::write(input.join(format!("{s}.v1")), "data").unwrap();
        }
        std::fs::write(input.join("ignore.txt"), "x").unwrap();

        for parallel in [false, true] {
            let work = base.join(format!("w-{parallel}"));
            let ctx = RunContext::new(&input, &work, PipelineConfig::fast()).unwrap();
            gather_inputs(&ctx, parallel).unwrap();
            let list = FileList::read(&ctx.artifact(V1LIST)).unwrap();
            assert_eq!(list.entries, vec!["AAA.v1", "BBB.v1"]); // sorted
            assert!(ctx.artifact("AAA.v1").exists());
            assert!(ctx.artifact("BBB.v1").exists());
            assert!(!ctx.artifact("ignore.txt").exists());
            // stations() derives station codes
            assert_eq!(ctx.stations().unwrap(), vec!["AAA", "BBB"]);
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn missing_input_dir_errors() {
        let base = std::env::temp_dir().join(format!("arp-gather2-{}", std::process::id()));
        let ctx =
            RunContext::new(base.join("missing"), base.join("w"), PipelineConfig::fast()).unwrap();
        assert!(gather_inputs(&ctx, false).is_err());
        std::fs::remove_dir_all(&base).unwrap();
    }
}
