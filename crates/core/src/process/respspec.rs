//! Process #16 — response spectrum calculation.
//!
//! The pipeline's dominant cost (57.2% of the sequential time in the paper's
//! Fig. 11; sequential complexity `O(9000 · N · D²)` with the legacy
//! Duhamel kernel). For each of the `3N` corrected components, the elastic
//! response spectra for every configured damping ratio are computed and
//! stored in `<s><c>.r`.
//!
//! Parallelization (§VI-B) is a Fortran `OMP DO` over the `3N` component
//! files — reproduced here as a flat parallel loop over (station,
//! component) pairs using all available processors.

use crate::context::RunContext;
use crate::error::Result;
use arp_dsp::respspec::response_spectrum_with;
use arp_formats::{names, Component, RFile, V2File};

/// Runs process #16.
pub fn response_spectrum_calc(ctx: &RunContext, parallel: bool) -> Result<()> {
    let stations = ctx.stations()?;
    let periods = ctx.config.periods();
    // Flat 3N iteration space, exactly like the paper's `do i=1,<3N>`.
    let total = stations.len() * Component::ALL.len();
    let body = |k: usize| -> Result<()> {
        let station = &stations[k / 3];
        let comp = Component::ALL[k % 3];
        let v2 = V2File::read(&ctx.artifact(&names::v2_component(station, comp)))?;
        let spectra = ctx
            .config
            .dampings
            .iter()
            .map(|&z| {
                response_spectrum_with(
                    &v2.data.acc,
                    v2.header.dt,
                    &periods,
                    z,
                    ctx.config.response_method,
                    ctx.config.dsp_backend,
                )
            })
            .collect::<std::result::Result<Vec<_>, _>>()?;
        let r = RFile {
            station: station.clone(),
            event_id: v2.header.event_id.clone(),
            component: comp,
            spectra,
        };
        r.write(&ctx.artifact(&names::r_component(station, comp)))?;
        Ok(())
    };
    if parallel {
        ctx.par_for_profiled(total, 0.195, body)
    } else {
        ctx.seq_for(total, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::process::{filter, filterinit, gather, separate};

    fn prepare(tag: &str) -> (std::path::PathBuf, RunContext) {
        let base = std::env::temp_dir().join(format!("arp-rs-{tag}-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        let event = arp_synth::paper_event(0, 0.002);
        arp_synth::write_event_inputs(&event, &input).unwrap();
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        gather::gather_inputs(&ctx, false).unwrap();
        filterinit::init_filter_params(&ctx).unwrap();
        separate::separate_components(&ctx, false).unwrap();
        filter::correct_signals(&ctx, filter::CorrectionPass::Default, false).unwrap();
        (base, ctx)
    }

    #[test]
    fn writes_r_files_with_configured_dampings() {
        let (base, ctx) = prepare("basic");
        response_spectrum_calc(&ctx, false).unwrap();
        for s in ctx.stations().unwrap() {
            for c in Component::ALL {
                let r = RFile::read(&ctx.artifact(&names::r_component(&s, c))).unwrap();
                assert_eq!(r.spectra.len(), ctx.config.dampings.len());
                assert_eq!(r.spectra[0].periods.len(), ctx.config.period_count);
                // Responses are positive for a real record.
                assert!(r.spectra[0].sa.iter().all(|&v| v >= 0.0));
                assert!(r.spectra[0].sa.iter().any(|&v| v > 0.0));
            }
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn parallel_matches_sequential() {
        let (base, ctx) = prepare("par");
        response_spectrum_calc(&ctx, false).unwrap();
        let s0 = ctx.stations().unwrap()[0].clone();
        let seq =
            std::fs::read_to_string(ctx.artifact(&names::r_component(&s0, Component::Vertical)))
                .unwrap();
        response_spectrum_calc(&ctx, true).unwrap();
        let par =
            std::fs::read_to_string(ctx.artifact(&names::r_component(&s0, Component::Vertical)))
                .unwrap();
        assert_eq!(seq, par);
        std::fs::remove_dir_all(&base).unwrap();
    }
}
