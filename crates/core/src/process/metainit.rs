//! Processes #5, #8, #14, #17 — metadata (file-list) initialization.
//!
//! These lightweight Fortran programs derive, from the station list, the
//! file lists later processes iterate over:
//!
//! * **#5** (and its redundant twin **#14**): `acc-graph` (V2 names for the
//!   accelerograph plots), `fourier` (V2 names feeding the Fourier
//!   transform), and `response` (V2 names feeding the response-spectrum
//!   calculation);
//! * **#8**: `fourier-graph` (F names for the spectrum plots and analysis);
//! * **#17**: `response-graph` (R names for the response plots).

use crate::context::RunContext;
use crate::error::Result;
use arp_formats::{names, Component, FileList};

/// Artifact name for the `acc-graph` list.
pub const ACC_GRAPH: &str = "acc-graph.txt";
/// Artifact name for the `fourier` list.
pub const FOURIER: &str = "fourier.txt";
/// Artifact name for the `response` list.
pub const RESPONSE: &str = "response.txt";
/// Artifact name for the `fourier-graph` list.
pub const FOURIER_GRAPH: &str = "fourier-graph.txt";
/// Artifact name for the `response-graph` list.
pub const RESPONSE_GRAPH: &str = "response-graph.txt";

fn component_names(stations: &[String], f: impl Fn(&str, Component) -> String) -> Vec<String> {
    let mut names = Vec::with_capacity(stations.len() * Component::ALL.len());
    for s in stations {
        for &c in &Component::ALL {
            names.push(f(s, c));
        }
    }
    names
}

/// Process #5 (and #14): writes `acc-graph`, `fourier`, and `response`.
pub fn init_main_metadata(ctx: &RunContext) -> Result<()> {
    let stations = ctx.stations()?;
    let v2 = component_names(&stations, names::v2_component);
    FileList::new("acc-graph", v2.clone())?.write(&ctx.artifact(ACC_GRAPH))?;
    FileList::new("fourier", v2.clone())?.write(&ctx.artifact(FOURIER))?;
    FileList::new("response", v2)?.write(&ctx.artifact(RESPONSE))?;
    Ok(())
}

/// Process #8: writes `fourier-graph` (the F-file list).
pub fn init_fourier_graph(ctx: &RunContext) -> Result<()> {
    let stations = ctx.stations()?;
    let f = component_names(&stations, names::f_component);
    FileList::new("fourier-graph", f)?.write(&ctx.artifact(FOURIER_GRAPH))?;
    Ok(())
}

/// Process #17: writes `response-graph` (the R-file list).
pub fn init_response_graph(ctx: &RunContext) -> Result<()> {
    let stations = ctx.stations()?;
    let r = component_names(&stations, names::r_component);
    FileList::new("response-graph", r)?.write(&ctx.artifact(RESPONSE_GRAPH))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use arp_formats::FileList;

    fn ctx_with_stations(tag: &str, stations: &[&str]) -> (std::path::PathBuf, RunContext) {
        let base = std::env::temp_dir().join(format!("arp-meta-{tag}-{}", std::process::id()));
        let ctx = RunContext::new(base.join("in"), base.join("w"), PipelineConfig::fast()).unwrap();
        let entries: Vec<String> = stations.iter().map(|s| format!("{s}.v1")).collect();
        FileList::new("v1list", entries)
            .unwrap()
            .write(&ctx.artifact(crate::process::gather::V1LIST))
            .unwrap();
        (base, ctx)
    }

    #[test]
    fn main_metadata_lists_all_components() {
        let (base, ctx) = ctx_with_stations("main", &["AAA", "BBB"]);
        init_main_metadata(&ctx).unwrap();
        let acc = FileList::read(&ctx.artifact(ACC_GRAPH)).unwrap();
        assert_eq!(
            acc.entries,
            vec!["AAAl.v2", "AAAt.v2", "AAAv.v2", "BBBl.v2", "BBBt.v2", "BBBv.v2"]
        );
        let fr = FileList::read(&ctx.artifact(FOURIER)).unwrap();
        assert_eq!(fr.entries, acc.entries);
        let rs = FileList::read(&ctx.artifact(RESPONSE)).unwrap();
        assert_eq!(rs.entries.len(), 6);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn graph_lists_use_right_extensions() {
        let (base, ctx) = ctx_with_stations("graph", &["ZZZ"]);
        init_fourier_graph(&ctx).unwrap();
        init_response_graph(&ctx).unwrap();
        let fg = FileList::read(&ctx.artifact(FOURIER_GRAPH)).unwrap();
        assert_eq!(fg.entries, vec!["ZZZl.f", "ZZZt.f", "ZZZv.f"]);
        let rg = FileList::read(&ctx.artifact(RESPONSE_GRAPH)).unwrap();
        assert_eq!(rg.entries, vec!["ZZZl.r", "ZZZt.r", "ZZZv.r"]);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn requires_v1list() {
        let base = std::env::temp_dir().join(format!("arp-meta-miss-{}", std::process::id()));
        let ctx = RunContext::new(base.join("in"), base.join("w"), PipelineConfig::fast()).unwrap();
        assert!(init_main_metadata(&ctx).is_err());
        std::fs::remove_dir_all(&base).unwrap();
    }
}
