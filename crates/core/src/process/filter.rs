//! Processes #4 and #13 — band-pass correction of the signals.
//!
//! Both processes share one kernel: baseline removal, cosine tapering, the
//! Hamming windowed-sinc band-pass, re-integration to velocity/displacement,
//! and peak ("max values") extraction. They differ only in the band:
//!
//! * **#4** applies the *default* corners from the filter-params file;
//! * **#13** applies the event-specific `FSL`/`FPL` corners that process
//!   #10 recovered from the velocity Fourier spectra.
//!
//! In the fully parallelized implementation these run through the
//! temp-folder staging protocol ([`crate::stagedir`]) because the original
//! Fortran binaries could not be made thread-safe — see
//! [`correct_signals_staged`].

use crate::context::RunContext;
use crate::error::Result;
use crate::stagedir::{run_staged, StagedKernel};
use arp_dsp::baseline::{remove_baseline, Baseline};
use arp_dsp::fir::{BandPass, FirFilter};
use arp_dsp::peaks::peak_values;
use arp_dsp::window::cosine_taper;
use arp_formats::{
    names, Component, FilterParams, MaxEntry, MaxValues, MotionTriple, V1ComponentFile, V2File,
};
use parking_lot::Mutex;
use std::path::Path;

/// Fraction of the record tapered before filtering (standard Vol.2 choice).
const TAPER_FRACTION: f64 = 0.05;

/// Which band the correction pass uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectionPass {
    /// Process #4: the default band for every station.
    Default,
    /// Process #13: per-station corners from the Fourier analysis.
    Definitive,
}

/// Applies the correction kernel to one component file.
pub fn correct_component(
    v1: &V1ComponentFile,
    band: BandPass,
    config: &crate::config::PipelineConfig,
) -> Result<V2File> {
    let dt = v1.header.dt;
    let mut acc = v1.data.acc.clone();
    remove_baseline(&mut acc, Baseline::Linear)?;
    cosine_taper(&mut acc, TAPER_FRACTION);
    let filt = FirFilter::band_pass_with_max_taps(band, dt, config.window, config.max_fir_taps)?;
    let acc = filt.apply_fft_with(&acc, config.dsp_backend);
    let peaks = peak_values(&acc, dt)?;
    let data = MotionTriple::from_acceleration(acc, dt)?;
    Ok(V2File {
        header: v1.header.clone(),
        component: v1.component,
        band,
        peaks,
        data,
    })
}

/// Resolves the band for one station/component under a pass.
fn band_for(
    pass: CorrectionPass,
    params: &FilterParams,
    station: &str,
    comp_index: usize,
) -> Result<BandPass> {
    match pass {
        CorrectionPass::Default => Ok(params.default_band),
        CorrectionPass::Definitive => {
            let corners = params
                .corners_for(station)
                .and_then(|s| s.corners.get(comp_index))
                .copied();
            match corners {
                Some((fsl, fpl)) => params
                    .default_band
                    .with_low_corners(fsl, fpl)
                    .map_err(Into::into),
                // No corners recorded (clean record): keep the default band.
                None => Ok(params.default_band),
            }
        }
    }
}

/// Corrects all components of one station in `dir`, returning the peak
/// entries in component order. This is the unit of work the staging
/// protocol ships into a temp folder.
fn correct_station_in_dir(
    dir: &Path,
    station: &str,
    pass: CorrectionPass,
    config: &crate::config::PipelineConfig,
) -> Result<Vec<MaxEntry>> {
    let params = FilterParams::read(&dir.join(FilterParams::FILE_NAME))?;
    let mut entries = Vec::with_capacity(3);
    for (ci, comp) in Component::ALL.iter().enumerate() {
        let v1 = V1ComponentFile::read(&dir.join(names::v1_component(station, *comp)))?;
        let band = band_for(pass, &params, station, ci)?;
        let v2 = correct_component(&v1, band, config)?;
        entries.push(MaxEntry {
            station: station.to_string(),
            component: *comp,
            pga: v2.peaks.pga,
            pgv: v2.peaks.pgv,
            pgd: v2.peaks.pgd,
        });
        v2.write(&dir.join(names::v2_component(station, *comp)))?;
    }
    Ok(entries)
}

/// Runs process #4 (`pass = Default`) or #13 (`pass = Definitive`) directly
/// in the work directory, optionally with the per-station loop parallel.
pub fn correct_signals(ctx: &RunContext, pass: CorrectionPass, parallel: bool) -> Result<()> {
    let stations = ctx.stations()?;
    let collected: Vec<Mutex<Vec<MaxEntry>>> = (0..stations.len())
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    let body = |i: usize| -> Result<()> {
        let entries = correct_station_in_dir(&ctx.work_dir, &stations[i], pass, &ctx.config)?;
        *collected[i].lock() = entries;
        Ok(())
    };
    if parallel {
        ctx.par_for_profiled(stations.len(), 0.5, body)?;
    } else {
        ctx.seq_for(stations.len(), body)?;
    }
    write_max_values(ctx, collected)
}

/// Runs process #4/#13 through the temp-folder staging protocol of §VI-C:
/// inputs are copied into per-station temporary folders, the kernel runs
/// concurrently inside each folder, and outputs are moved back.
pub fn correct_signals_staged(
    ctx: &RunContext,
    pass: CorrectionPass,
    parallel: bool,
) -> Result<()> {
    let stations = ctx.stations()?;
    let collected: Vec<Mutex<Vec<MaxEntry>>> = (0..stations.len())
        .map(|_| Mutex::new(Vec::new()))
        .collect();
    let tag = match pass {
        CorrectionPass::Default => "p04",
        CorrectionPass::Definitive => "p13",
    };
    let kernel = StagedKernel {
        tag,
        serial_fraction: 0.5,
        inputs: &|station: &str| {
            let mut files: Vec<String> = Component::ALL
                .iter()
                .map(|&c| names::v1_component(station, c))
                .collect();
            files.push(FilterParams::FILE_NAME.to_string());
            files
        },
        outputs: &|station: &str| {
            Component::ALL
                .iter()
                .map(|&c| names::v2_component(station, c))
                .collect()
        },
        run: &|dir: &Path, i: usize, station: &str| {
            let entries = correct_station_in_dir(dir, station, pass, &ctx.config)?;
            *collected[i].lock() = entries;
            Ok(())
        },
    };
    run_staged(ctx, &stations, parallel, &kernel)?;
    write_max_values(ctx, collected)
}

/// Writes the accumulated peak values in station order — deterministic
/// regardless of which thread corrected which station.
fn write_max_values(ctx: &RunContext, collected: Vec<Mutex<Vec<MaxEntry>>>) -> Result<()> {
    let entries: Vec<MaxEntry> = collected.into_iter().flat_map(|m| m.into_inner()).collect();
    MaxValues { entries }.write(&ctx.artifact(MaxValues::FILE_NAME))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::process::{filterinit, gather, separate};
    use arp_synth::{paper_event, write_event_inputs};

    fn prepare(tag: &str) -> (std::path::PathBuf, RunContext) {
        let base = std::env::temp_dir().join(format!("arp-filt-{tag}-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        let event = paper_event(0, 0.004);
        write_event_inputs(&event, &input).unwrap();
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        gather::gather_inputs(&ctx, false).unwrap();
        filterinit::init_filter_params(&ctx).unwrap();
        separate::separate_components(&ctx, false).unwrap();
        (base, ctx)
    }

    #[test]
    fn default_pass_writes_v2_and_max_values() {
        let (base, ctx) = prepare("default");
        correct_signals(&ctx, CorrectionPass::Default, false).unwrap();
        let stations = ctx.stations().unwrap();
        for s in &stations {
            for c in Component::ALL {
                let v2 = V2File::read(&ctx.artifact(&names::v2_component(s, c))).unwrap();
                assert_eq!(v2.band, ctx.config.default_band);
                assert!(v2.peaks.pga > 0.0);
            }
        }
        let mv = MaxValues::read(&ctx.artifact(MaxValues::FILE_NAME)).unwrap();
        assert_eq!(mv.entries.len(), stations.len() * 3);
        // Entries grouped by station in station order.
        for (k, e) in mv.entries.iter().enumerate() {
            assert_eq!(e.station, stations[k / 3]);
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn parallel_matches_sequential_byte_for_byte() {
        let (base, ctx) = prepare("par");
        correct_signals(&ctx, CorrectionPass::Default, false).unwrap();
        let s0 = ctx.stations().unwrap()[0].clone();
        let seq_text =
            std::fs::read_to_string(ctx.artifact(&names::v2_component(&s0, Component::Vertical)))
                .unwrap();
        let seq_mv = std::fs::read_to_string(ctx.artifact(MaxValues::FILE_NAME)).unwrap();

        correct_signals(&ctx, CorrectionPass::Default, true).unwrap();
        let par_text =
            std::fs::read_to_string(ctx.artifact(&names::v2_component(&s0, Component::Vertical)))
                .unwrap();
        let par_mv = std::fs::read_to_string(ctx.artifact(MaxValues::FILE_NAME)).unwrap();

        assert_eq!(seq_text, par_text);
        assert_eq!(seq_mv, par_mv);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn staged_matches_direct() {
        let (base, ctx) = prepare("staged");
        correct_signals(&ctx, CorrectionPass::Default, false).unwrap();
        let s0 = ctx.stations().unwrap()[0].clone();
        let direct = std::fs::read_to_string(
            ctx.artifact(&names::v2_component(&s0, Component::Longitudinal)),
        )
        .unwrap();

        correct_signals_staged(&ctx, CorrectionPass::Default, true).unwrap();
        let staged = std::fs::read_to_string(
            ctx.artifact(&names::v2_component(&s0, Component::Longitudinal)),
        )
        .unwrap();
        assert_eq!(direct, staged);
        // No temp folders left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&ctx.work_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn definitive_pass_uses_station_corners() {
        let (base, ctx) = prepare("corners");
        // Record corners for the first station only.
        let stations = ctx.stations().unwrap();
        let mut fp = FilterParams::read(&ctx.artifact(FilterParams::FILE_NAME)).unwrap();
        fp.stations.push(arp_formats::StationCorners {
            station: stations[0].clone(),
            corners: vec![(0.15, 0.30), (0.2, 0.4), (0.1, 0.2)],
        });
        fp.write(&ctx.artifact(FilterParams::FILE_NAME)).unwrap();

        correct_signals(&ctx, CorrectionPass::Definitive, false).unwrap();
        let with_corners = V2File::read(
            &ctx.artifact(&names::v2_component(&stations[0], Component::Longitudinal)),
        )
        .unwrap();
        assert!((with_corners.band.fsl - 0.15).abs() < 1e-9);
        assert!((with_corners.band.fpl - 0.30).abs() < 1e-9);
        // Station without corners falls back to the default band.
        let fallback = V2File::read(
            &ctx.artifact(&names::v2_component(&stations[1], Component::Longitudinal)),
        )
        .unwrap();
        assert_eq!(fallback.band, ctx.config.default_band);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn correction_reduces_baseline_drift() {
        // A ramp baseline must be gone after correction.
        let (base, ctx) = prepare("drift");
        let stations = ctx.stations().unwrap();
        correct_signals(&ctx, CorrectionPass::Default, false).unwrap();
        let v2 = V2File::read(
            &ctx.artifact(&names::v2_component(&stations[0], Component::Longitudinal)),
        )
        .unwrap();
        let n = v2.data.acc.len();
        let mean: f64 = v2.data.acc.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05 * v2.peaks.pga, "mean {mean}");
        std::fs::remove_dir_all(&base).unwrap();
    }
}
