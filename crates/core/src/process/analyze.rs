//! Process #10 — obtain FSL & FPL values.
//!
//! For each station, reads the three Fourier-spectrum files and locates the
//! inflection point of each component's velocity spectrum (periods > 1 s,
//! early-termination search — see [`arp_dsp::inflection`]). The recovered
//! corners are appended to the filter-params file for process #13.
//!
//! The paper's Stage VI parallelizes the *inner* three-component loop
//! (`#pragma omp parallel for` over `j = 0..3` in `AnalyzeFourier`), which
//! is what `parallel = true` reproduces here.

use crate::context::RunContext;
use crate::error::Result;
use arp_dsp::inflection::find_filter_corners;
use arp_formats::{names, Component, FFile, FilterParams, StationCorners};
use parking_lot::Mutex;

/// Runs process #10.
pub fn analyze_fourier(ctx: &RunContext, parallel: bool) -> Result<()> {
    let stations = ctx.stations()?;
    let mut results: Vec<StationCorners> = Vec::with_capacity(stations.len());

    for station in &stations {
        let corners: Vec<Mutex<Option<(f64, f64)>>> = (0..Component::ALL.len())
            .map(|_| Mutex::new(None))
            .collect();
        let body = |j: usize| -> Result<()> {
            let comp = Component::ALL[j];
            let f = FFile::read(&ctx.artifact(&names::f_component(station, comp)))?;
            let found = find_filter_corners(&f.spectrum, &ctx.config.inflection)?;
            *corners[j].lock() = Some((found.fsl, found.fpl));
            Ok(())
        };
        if parallel {
            ctx.par_for_profiled(Component::ALL.len(), 0.05, body)?;
        } else {
            ctx.seq_for(Component::ALL.len(), body)?;
        }
        results.push(StationCorners {
            station: station.clone(),
            corners: corners
                .into_iter()
                .map(|m| m.into_inner().expect("component corner missing"))
                .collect(),
        });
    }

    let mut params = FilterParams::read(&ctx.artifact(FilterParams::FILE_NAME))?;
    params.stations = results;
    params.write(&ctx.artifact(FilterParams::FILE_NAME))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::process::{filter, filterinit, fourier, gather, separate};

    fn prepare(tag: &str) -> (std::path::PathBuf, RunContext) {
        let base = std::env::temp_dir().join(format!("arp-an-{tag}-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        let event = arp_synth::paper_event(0, 0.003);
        arp_synth::write_event_inputs(&event, &input).unwrap();
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        gather::gather_inputs(&ctx, false).unwrap();
        filterinit::init_filter_params(&ctx).unwrap();
        separate::separate_components(&ctx, false).unwrap();
        filter::correct_signals(&ctx, filter::CorrectionPass::Default, false).unwrap();
        fourier::fourier_transform(&ctx, false).unwrap();
        (base, ctx)
    }

    #[test]
    fn records_corners_for_every_station_and_component() {
        let (base, ctx) = prepare("basic");
        analyze_fourier(&ctx, false).unwrap();
        let params = FilterParams::read(&ctx.artifact(FilterParams::FILE_NAME)).unwrap();
        let stations = ctx.stations().unwrap();
        assert_eq!(params.stations.len(), stations.len());
        for sc in &params.stations {
            assert_eq!(sc.corners.len(), 3);
            for &(fsl, fpl) in &sc.corners {
                assert!(fsl > 0.0 && fpl > fsl, "bad corners ({fsl}, {fpl})");
                assert!(fpl <= 1.0 + 1e-9, "corner above the 1-s period bound");
            }
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let (base, ctx) = prepare("par");
        analyze_fourier(&ctx, false).unwrap();
        let seq = std::fs::read_to_string(ctx.artifact(FilterParams::FILE_NAME)).unwrap();
        // Re-initialize and re-run in parallel.
        filterinit::init_filter_params(&ctx).unwrap();
        analyze_fourier(&ctx, true).unwrap();
        let par = std::fs::read_to_string(ctx.artifact(FilterParams::FILE_NAME)).unwrap();
        assert_eq!(seq, par);
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn missing_f_files_error() {
        let base = std::env::temp_dir().join(format!("arp-an-miss-{}", std::process::id()));
        let ctx = RunContext::new(base.join("in"), base.join("w"), PipelineConfig::fast()).unwrap();
        arp_formats::FileList::new("v1list", vec!["GHOST.v1".into()])
            .unwrap()
            .write(&ctx.artifact(crate::process::gather::V1LIST))
            .unwrap();
        assert!(analyze_fourier(&ctx, false).is_err());
        std::fs::remove_dir_all(&base).unwrap();
    }
}
