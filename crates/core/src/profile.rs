//! Trace → profile extraction and the what-if speedup engine.
//!
//! `arp-trace` records *what ran where*; [`crate::dag::SuperDag`] knows
//! *what had to wait for what*. This module joins the two into the
//! attribution artifact of [`arp_trace::profile`]:
//!
//! 1. [`realize_batch`] folds a recorded trace's DAG-node spans back onto
//!    the super-DAG the batch executed: one realized node per span, with
//!    the recorded duration, plus the dependency edges the scheduler
//!    honored (edges through nodes missing from the trace are contracted
//!    to the nearest recorded ancestors, so partial traces still profile);
//! 2. [`profile_trace`] builds the [`Profile`] — per-kernel self-time,
//!    realized critical path, accounting identity — labeling kernels from
//!    [`crate::process::PROCESS_TABLE`];
//! 3. [`profile_trace_what_if`] adds Coz-style sensitivity curves: for the
//!    top-k kernels by self-time, the recorded durations are scaled and
//!    replayed through `arp-par`'s deterministic scheduling simulator
//!    ([`arp_par::super_dag_makespan_lanes_scaled`]), so every prediction
//!    is exactly reproducible by rerunning the sim on pre-scaled inputs.

use crate::dag::SuperDag;
use crate::process::{process_info, ProcessId, ProcessKind};
use arp_trace::profile::{Profile, ProfileNode, WhatIfCurve, WhatIfPoint};
use arp_trace::{Cat, Trace};
use std::time::Duration;

/// Speedup factors of the default what-if grid.
pub const WHAT_IF_SPEEDUPS: [f64; 4] = [1.5, 2.0, 4.0, 8.0];

/// Kernels (ranked by self-time) that get a sensitivity curve by default.
pub const WHAT_IF_TOP_K: usize = 3;

/// Label for a workload class, as it appears in profiles and folded stacks.
pub fn kind_label(kind: ProcessKind) -> &'static str {
    match kind {
        ProcessKind::HeavyIo => "heavy-io",
        ProcessKind::HeavyFlops => "heavy-flops",
        ProcessKind::Plotting => "plotting",
        ProcessKind::Light => "light",
    }
}

/// A recorded batch execution folded back onto its super-DAG: the inputs
/// of both the profile fold and the what-if replay.
pub struct RealizedBatch {
    /// The reconstructed super-DAG (events sorted by label).
    pub super_dag: SuperDag,
    /// One realized node per recorded DAG-node span.
    pub nodes: Vec<ProfileNode>,
    /// Dependency edges between realized nodes (indices into `nodes`).
    pub preds: Vec<Vec<usize>>,
    /// Recorded duration per super-DAG position, `[event][position]`,
    /// shaped for [`arp_par::super_dag_makespan`] (zero where the trace
    /// has no span).
    pub durations: Vec<Vec<Duration>>,
    /// Per-event predecessor tables, same shape.
    pub per_event_preds: Vec<Vec<Vec<usize>>>,
    /// Per-event I/O-lane hints, same shape.
    pub io_lanes: Vec<Vec<bool>>,
    /// Wall time of the traced run, ns.
    pub wall_ns: u64,
}

impl RealizedBatch {
    /// Selection mask (shaped like `durations`) marking every node of one
    /// kernel — the input to the scaled replay.
    pub fn kernel_select(&self, process: ProcessId) -> Vec<Vec<bool>> {
        let per: Vec<bool> = self
            .super_dag
            .per_event()
            .nodes()
            .iter()
            .map(|&p| p == process.0)
            .collect();
        vec![per; self.durations.len()]
    }

    /// Replayed makespan of the recorded durations on `threads` compute +
    /// `io_threads` I/O workers — the base the what-if deltas compare to.
    pub fn replay_makespan(&self, threads: usize, io_threads: usize) -> Duration {
        arp_par::super_dag_makespan_lanes(
            &self.durations,
            &self.per_event_preds,
            threads,
            io_threads,
            &self.io_lanes,
        )
    }
}

/// Folds a recorded trace's DAG-node spans onto the super-DAG the batch
/// ran. Errors when the trace has no attributed DAG-node spans or a span
/// names a process outside the per-event graph.
pub fn realize_batch(trace: &Trace) -> Result<RealizedBatch, String> {
    let spans: Vec<_> = trace
        .spans_of(Cat::DagNode)
        .filter(|s| s.process.is_some() && !s.event.is_empty())
        .collect();
    if spans.is_empty() {
        return Err(
            "profile: trace contains no attributed DAG-node spans (was the workload \
             a DAG batch run with tracing enabled?)"
                .into(),
        );
    }
    let mut events: Vec<String> = spans.iter().map(|s| s.event.clone()).collect();
    events.sort();
    events.dedup();
    let super_dag = SuperDag::union(&events);
    let per_nodes = super_dag.per_event().nodes().to_vec();
    let per = per_nodes.len();
    let position_of = |p: u8| per_nodes.iter().position(|&q| q == p);

    // Realized nodes, plus span indices grouped by flat super-DAG node.
    let mut nodes = Vec::with_capacity(spans.len());
    let mut at_flat: Vec<Vec<usize>> = vec![Vec::new(); super_dag.len()];
    let mut durations = vec![vec![Duration::ZERO; per]; events.len()];
    for span in &spans {
        let p = span.process.expect("filtered on is_some");
        let e = events
            .binary_search(&span.event)
            .expect("event list built from these spans");
        let pos = position_of(p).ok_or_else(|| {
            format!(
                "profile: span {:?} names process #{p} which is not in the per-event graph",
                span.name
            )
        })?;
        let info = process_info(ProcessId(p));
        at_flat[super_dag.event_offset(e) + pos].push(nodes.len());
        durations[e][pos] += Duration::from_nanos(span.dur_ns);
        nodes.push(ProfileNode {
            event: span.event.clone(),
            process: p,
            name: info.name.to_string(),
            kind: kind_label(info.kind).to_string(),
            lane: trace
                .lanes
                .get(span.lane)
                .cloned()
                .unwrap_or_else(|| format!("lane-{}", span.lane)),
            start_ns: span.start_ns,
            dur_ns: span.dur_ns,
        });
    }

    // Nearest *recorded* ancestors per flat node: a node missing from the
    // trace (skipped, or the trace is partial) contracts to its own
    // ancestors so dependency chains survive the gap. Super-DAG preds are
    // acyclic, so ancestors[q] is complete before any node that needs it
    // when filled in index order within an event... positions are not
    // topologically sorted, so recurse with memoization instead.
    let flat_preds = super_dag.preds();
    let mut ancestors: Vec<Option<Vec<usize>>> = vec![None; super_dag.len()];
    fn recorded_ancestors(
        q: usize,
        at_flat: &[Vec<usize>],
        flat_preds: &[Vec<usize>],
        ancestors: &mut Vec<Option<Vec<usize>>>,
    ) -> Vec<usize> {
        if let Some(done) = &ancestors[q] {
            return done.clone();
        }
        let mut found = Vec::new();
        for &p in &flat_preds[q] {
            if at_flat[p].is_empty() {
                found.extend(recorded_ancestors(p, at_flat, flat_preds, ancestors));
            } else {
                found.extend(at_flat[p].iter().copied());
            }
        }
        found.sort_unstable();
        found.dedup();
        ancestors[q] = Some(found.clone());
        found
    }
    let mut preds = vec![Vec::new(); nodes.len()];
    for (flat, here) in at_flat.iter().enumerate() {
        if here.is_empty() {
            continue;
        }
        let ps = recorded_ancestors(flat, &at_flat, flat_preds, &mut ancestors);
        for &i in here {
            preds[i] = ps.clone();
        }
    }

    // Event 0's flat predecessor lists are already event-local indices, so
    // the first `per` rows double as the per-event table (same trick as
    // the batch executor).
    let per_event_preds = vec![flat_preds[..per].to_vec(); events.len()];
    let io_lanes = vec![super_dag.per_event().io_lanes(); events.len()];
    Ok(RealizedBatch {
        super_dag,
        nodes,
        preds,
        durations,
        per_event_preds,
        io_lanes,
        wall_ns: trace.wall.as_nanos() as u64,
    })
}

/// Builds the attribution profile of a recorded trace (no what-if curves).
///
/// `threads`/`io_threads` document the worker topology the what-if replay
/// would use; they do not change the fold itself.
pub fn profile_trace(trace: &Trace, threads: usize, io_threads: usize) -> Result<Profile, String> {
    let batch = realize_batch(trace)?;
    Profile::build(
        &batch.nodes,
        &batch.preds,
        threads,
        io_threads,
        batch.wall_ns,
    )
}

/// Builds the profile *and* the what-if sensitivity curves for the `top_k`
/// kernels by self-time, replaying each speedup in `speedups` through the
/// deterministic scheduler on `threads + io_threads` workers.
pub fn profile_trace_what_if(
    trace: &Trace,
    threads: usize,
    io_threads: usize,
    top_k: usize,
    speedups: &[f64],
) -> Result<Profile, String> {
    let batch = realize_batch(trace)?;
    let mut profile = Profile::build(
        &batch.nodes,
        &batch.preds,
        threads,
        io_threads,
        batch.wall_ns,
    )?;
    let base = batch.replay_makespan(threads, io_threads);
    profile.replay_base_ns = base.as_nanos() as u64;
    for kernel in profile.kernels.iter().filter(|k| k.self_ns > 0).take(top_k) {
        let select = batch.kernel_select(ProcessId(kernel.process));
        let mut points = Vec::with_capacity(speedups.len());
        for &speedup in speedups {
            let predicted = arp_par::super_dag_makespan_lanes_scaled(
                &batch.durations,
                &batch.per_event_preds,
                threads,
                io_threads,
                &batch.io_lanes,
                &select,
                speedup,
            );
            let predicted_ns = predicted.as_nanos() as u64;
            let saving = if profile.replay_base_ns == 0 {
                0.0
            } else {
                1.0 - predicted_ns as f64 / profile.replay_base_ns as f64
            };
            points.push(WhatIfPoint {
                speedup,
                predicted_ns,
                saving,
                bottleneck: scaled_bottleneck(&batch, kernel.process, speedup),
            });
        }
        profile.what_if.push(WhatIfCurve {
            process: kernel.process,
            name: kernel.name.clone(),
            points,
        });
    }
    Ok(profile)
}

/// The kernel dominating the realized critical path once `process` runs
/// `speedup`× faster — where the next bottleneck moves to.
fn scaled_bottleneck(batch: &RealizedBatch, process: u8, speedup: f64) -> String {
    let scaled: Vec<ProfileNode> = batch
        .nodes
        .iter()
        .map(|n| {
            let mut n = n.clone();
            if n.process == process {
                n.dur_ns = (n.dur_ns as f64 / speedup).round() as u64;
            }
            n
        })
        .collect();
    match Profile::build(&scaled, &batch.preds, 1, 0, 0) {
        Ok(p) => p
            .kernels
            .iter()
            .max_by_key(|k| (k.cp_ns, std::cmp::Reverse(k.process)))
            .map(|k| k.name.clone())
            .unwrap_or_default(),
        Err(_) => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_trace::Span;

    /// A synthetic two-event measured batch: every super-DAG node gets one
    /// span, laid out on three workers with event-major start times.
    fn synthetic_trace() -> Trace {
        let events = ["ev-a".to_string(), "ev-b".to_string()];
        let super_dag = SuperDag::union(&events);
        let lanes = vec![
            "main".to_string(),
            "arp-par-0".to_string(),
            "arp-io-0".to_string(),
        ];
        let mut spans = Vec::new();
        let mut clocks = [0u64; 3];
        for (i, node) in super_dag.nodes().iter().enumerate() {
            let p = node.process.0;
            let lane = i % 3;
            let dur = 1_000 * (p as u64 + 1);
            let start = clocks[lane];
            clocks[lane] = start + dur;
            spans.push(Span {
                name: format!("{}/#{p}", events[node.event]),
                cat: Cat::DagNode,
                process: Some(p),
                event: events[node.event].clone(),
                lane,
                start_ns: start,
                dur_ns: dur,
                queue_ns: 0,
                bytes: 0,
            });
        }
        Trace {
            spans,
            lanes,
            counters: Vec::new(),
            wall: Duration::from_micros(400),
            dropped: 0,
        }
    }

    #[test]
    fn realize_maps_every_span_onto_the_super_dag() {
        let trace = synthetic_trace();
        let batch = realize_batch(&trace).unwrap();
        assert_eq!(batch.nodes.len(), batch.super_dag.len());
        assert_eq!(batch.durations.len(), 2);
        let per = batch.super_dag.per_event().nodes().len();
        assert!(batch.durations.iter().all(|d| d.len() == per));
        // Total realized duration equals the spans' sum.
        let total: Duration = batch.durations.iter().flatten().sum();
        let spans_total: u64 = trace.spans.iter().map(|s| s.dur_ns).sum();
        assert_eq!(total, Duration::from_nanos(spans_total));
    }

    #[test]
    fn profile_satisfies_identity_and_validates() {
        let trace = synthetic_trace();
        let p = profile_trace(&trace, 2, 1).unwrap();
        // One span at a time per worker: the identity is exact.
        assert_eq!(p.self_total_ns, p.worker_busy_ns);
        p.validate(0.0).unwrap();
        assert_eq!(p.events, vec!["ev-a".to_string(), "ev-b".to_string()]);
        // Kernel names come from the process table.
        assert!(p.kernels.iter().any(|k| k.name == "Apply default filters"));
    }

    #[test]
    fn what_if_prediction_equals_scaled_resimulation() {
        let trace = synthetic_trace();
        let p = profile_trace_what_if(&trace, 2, 1, 3, &WHAT_IF_SPEEDUPS).unwrap();
        assert!(!p.what_if.is_empty());
        p.validate(0.0).unwrap();
        let batch = realize_batch(&trace).unwrap();
        assert_eq!(
            p.replay_base_ns,
            batch.replay_makespan(2, 1).as_nanos() as u64
        );
        for curve in &p.what_if {
            let select = batch.kernel_select(ProcessId(curve.process));
            for point in &curve.points {
                let rerun = arp_par::super_dag_makespan_lanes(
                    &arp_par::scale_super_durations(&batch.durations, &select, point.speedup),
                    &batch.per_event_preds,
                    2,
                    1,
                    &batch.io_lanes,
                );
                assert_eq!(point.predicted_ns, rerun.as_nanos() as u64);
            }
        }
    }

    #[test]
    fn partial_traces_contract_missing_nodes() {
        let mut trace = synthetic_trace();
        // Drop one mid-graph node; the fold must still succeed and keep
        // the dependency chain through the gap.
        let victim = trace.spans.len() / 2;
        trace.spans.remove(victim);
        let batch = realize_batch(&trace).unwrap();
        assert_eq!(batch.nodes.len(), batch.super_dag.len() - 1);
        let p = Profile::build(&batch.nodes, &batch.preds, 2, 1, batch.wall_ns).unwrap();
        p.validate(0.0).unwrap();
    }

    #[test]
    fn empty_traces_are_an_error() {
        let trace = Trace {
            spans: Vec::new(),
            lanes: Vec::new(),
            counters: Vec::new(),
            wall: Duration::ZERO,
            dropped: 0,
        };
        assert!(profile_trace(&trace, 1, 0).is_err());
    }
}
