//! Artifact inventory: what a completed run must contain, and verification
//! that it does.
//!
//! Downstream consumers (observatory dashboards, GEM exports) need a cheap
//! way to confirm a work directory holds a complete, well-formed run
//! before ingesting it. [`expected_artifacts`] enumerates the products for
//! a station set; [`verify_run`] checks presence *and* parses every product
//! with its typed reader.

use crate::context::RunContext;
use crate::error::Result;
use arp_formats::{
    names, Component, FFile, FilterParams, GemFile, MaxValues, Quantity, RFile, V2File,
};

/// One expected artifact and its kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpectedArtifact {
    /// File name within the work directory.
    pub name: String,
    /// Artifact class (used to pick the validating parser).
    pub kind: ArtifactKind,
}

/// Classes of final products.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// Corrected record (`.v2`).
    V2,
    /// Fourier spectrum (`.f`).
    Fourier,
    /// Response spectrum (`.r`).
    Response,
    /// GEM product (`.gem`).
    Gem,
    /// PostScript plot (`.ps`).
    Plot,
    /// Max-values metadata.
    MaxValues,
    /// Filter-params metadata.
    FilterParams,
}

/// Enumerates every final product a completed run must contain for the
/// given stations.
pub fn expected_artifacts(stations: &[String]) -> Vec<ExpectedArtifact> {
    let mut out = Vec::new();
    for s in stations {
        for c in Component::ALL {
            out.push(ExpectedArtifact {
                name: names::v2_component(s, c),
                kind: ArtifactKind::V2,
            });
            out.push(ExpectedArtifact {
                name: names::f_component(s, c),
                kind: ArtifactKind::Fourier,
            });
            out.push(ExpectedArtifact {
                name: names::r_component(s, c),
                kind: ArtifactKind::Response,
            });
            for from_r in [false, true] {
                for q in Quantity::ALL {
                    out.push(ExpectedArtifact {
                        name: names::gem(s, c, from_r, q),
                        kind: ArtifactKind::Gem,
                    });
                }
            }
        }
        for plot in [
            names::plot_acc(s),
            names::plot_fourier(s),
            names::plot_response(s),
        ] {
            out.push(ExpectedArtifact {
                name: plot,
                kind: ArtifactKind::Plot,
            });
        }
    }
    out.push(ExpectedArtifact {
        name: MaxValues::FILE_NAME.to_string(),
        kind: ArtifactKind::MaxValues,
    });
    out.push(ExpectedArtifact {
        name: FilterParams::FILE_NAME.to_string(),
        kind: ArtifactKind::FilterParams,
    });
    out
}

/// A verification problem found by [`verify_run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyIssue {
    /// The artifact file does not exist.
    Missing(String),
    /// The artifact exists but failed to parse/validate.
    Corrupt {
        /// File name.
        name: String,
        /// Parser error text.
        error: String,
    },
}

impl std::fmt::Display for VerifyIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyIssue::Missing(name) => write!(f, "missing: {name}"),
            VerifyIssue::Corrupt { name, error } => write!(f, "corrupt: {name} ({error})"),
        }
    }
}

/// Verifies a completed run: every expected artifact exists and parses with
/// its typed reader. Returns the issues found (empty = verified).
pub fn verify_run(ctx: &RunContext) -> Result<Vec<VerifyIssue>> {
    let stations = ctx.stations()?;
    let mut issues = Vec::new();
    for artifact in expected_artifacts(&stations) {
        let path = ctx.artifact(&artifact.name);
        if !path.exists() {
            issues.push(VerifyIssue::Missing(artifact.name));
            continue;
        }
        let parse_result: std::result::Result<(), String> = match artifact.kind {
            ArtifactKind::V2 => V2File::read(&path).map(|_| ()).map_err(|e| e.to_string()),
            ArtifactKind::Fourier => FFile::read(&path).map(|_| ()).map_err(|e| e.to_string()),
            ArtifactKind::Response => RFile::read(&path).map(|_| ()).map_err(|e| e.to_string()),
            ArtifactKind::Gem => GemFile::read(&path).map(|_| ()).map_err(|e| e.to_string()),
            ArtifactKind::MaxValues => MaxValues::read(&path)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            ArtifactKind::FilterParams => FilterParams::read(&path)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            ArtifactKind::Plot => std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| {
                    if text.starts_with("%!PS-Adobe") {
                        Ok(())
                    } else {
                        Err("not a PostScript document".to_string())
                    }
                }),
        };
        if let Err(error) = parse_result {
            issues.push(VerifyIssue::Corrupt {
                name: artifact.name,
                error,
            });
        }
    }
    Ok(issues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::executor::run_pipeline;
    use crate::report::ImplKind;

    #[test]
    fn expected_count_per_station() {
        let stations = vec!["AAA".to_string(), "BBB".to_string()];
        let expected = expected_artifacts(&stations);
        // Per station: 3 v2 + 3 f + 3 r + 18 gem + 3 plots = 30; plus 2 shared.
        assert_eq!(expected.len(), 2 * 30 + 2);
    }

    #[test]
    fn verify_passes_on_complete_run_and_detects_damage() {
        let base = std::env::temp_dir().join(format!("arp-verify-{}", std::process::id()));
        let input = base.join("in");
        std::fs::create_dir_all(&input).unwrap();
        arp_synth::write_event_inputs(&arp_synth::paper_event(0, 0.003), &input).unwrap();
        let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
        run_pipeline(&ctx, ImplKind::FullyParallel).unwrap();

        assert!(verify_run(&ctx).unwrap().is_empty());

        // Delete one product -> Missing.
        let stations = ctx.stations().unwrap();
        let victim = names::r_component(&stations[0], Component::Vertical);
        std::fs::remove_file(ctx.artifact(&victim)).unwrap();
        let issues = verify_run(&ctx).unwrap();
        assert!(
            issues.contains(&VerifyIssue::Missing(victim.clone())),
            "{issues:?}"
        );

        // Corrupt another -> Corrupt.
        let corrupt_name = names::v2_component(&stations[0], Component::Vertical);
        std::fs::write(ctx.artifact(&corrupt_name), "junk").unwrap();
        let issues = verify_run(&ctx).unwrap();
        assert!(
            issues
                .iter()
                .any(|i| matches!(i, VerifyIssue::Corrupt { name, .. } if name == &corrupt_name)),
            "{issues:?}"
        );
        // Display impl renders readably.
        let text = issues
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("missing:") && text.contains("corrupt:"));

        std::fs::remove_dir_all(&base).unwrap();
    }
}
