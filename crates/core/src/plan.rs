//! The eleven-stage execution plan (Fig. 9 of the paper).
//!
//! The twenty processes are reordered into eleven stages with valid
//! dependencies; each stage carries the parallelization strategy used by the
//! partially and fully parallelized implementations:
//!
//! | Stage | Processes | Partial | Full |
//! |-------|-----------|---------|------|
//! | I     | 0, 1      | Task    | Task |
//! | II    | 2, 5, 8, 17 | Task  | Task |
//! | III   | 3         | Seq     | Loop (Fortran `OMP DO`) |
//! | IV    | 4         | Seq     | Loop (temp folders) |
//! | V     | 7         | Seq     | Loop (temp folders) |
//! | VI    | 10        | Loop    | Loop |
//! | VII   | 11        | Seq     | Seq (never parallelized) |
//! | VIII  | 13        | Seq     | Loop (temp folders) |
//! | IX    | 16        | Seq     | Loop (Fortran `OMP DO`) |
//! | X     | 19        | Loop    | Loop |
//! | XI    | 9, 15, 18 | Task    | Task |

use serde::{Deserialize, Serialize};

/// Stage identifier (I–XI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StageId {
    /// Stage I — flags + input gathering.
    I,
    /// Stage II — metadata initialization.
    II,
    /// Stage III — component separation.
    III,
    /// Stage IV — default filtering.
    IV,
    /// Stage V — Fourier transformation.
    V,
    /// Stage VI — FPL/FSL analysis.
    VI,
    /// Stage VII — flag re-initialization (never parallel).
    VII,
    /// Stage VIII — definitive correction.
    VIII,
    /// Stage IX — response spectra.
    IX,
    /// Stage X — GEM generation.
    X,
    /// Stage XI — plotting.
    XI,
}

impl StageId {
    /// All stages in execution order.
    pub const ALL: [StageId; 11] = [
        StageId::I,
        StageId::II,
        StageId::III,
        StageId::IV,
        StageId::V,
        StageId::VI,
        StageId::VII,
        StageId::VIII,
        StageId::IX,
        StageId::X,
        StageId::XI,
    ];

    /// Roman-numeral label.
    pub fn label(self) -> &'static str {
        match self {
            StageId::I => "I",
            StageId::II => "II",
            StageId::III => "III",
            StageId::IV => "IV",
            StageId::V => "V",
            StageId::VI => "VI",
            StageId::VII => "VII",
            StageId::VIII => "VIII",
            StageId::IX => "IX",
            StageId::X => "X",
            StageId::XI => "XI",
        }
    }
}

/// How a stage is executed in a given implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Run sequentially.
    Sequential,
    /// OpenMP-style task parallelism over heterogeneous processes.
    Tasks,
    /// Parallel loop over stations/files.
    Loop,
    /// Parallel loop through the temp-folder staging protocol.
    StagedLoop,
}

/// Static description of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageInfo {
    /// Stage identifier.
    pub id: StageId,
    /// The processes the stage runs (in order, for sequential execution).
    pub processes: &'static [u8],
    /// Strategy in the partially parallelized implementation.
    pub partial: Strategy,
    /// Strategy in the fully parallelized implementation.
    pub full: Strategy,
}

/// The full stage table in execution order.
pub const STAGE_TABLE: [StageInfo; 11] = {
    use StageId::*;
    use Strategy::*;
    [
        StageInfo {
            id: I,
            processes: &[0, 1],
            partial: Tasks,
            full: Tasks,
        },
        StageInfo {
            id: II,
            processes: &[2, 5, 8, 17],
            partial: Tasks,
            full: Tasks,
        },
        StageInfo {
            id: III,
            processes: &[3],
            partial: Sequential,
            full: Loop,
        },
        StageInfo {
            id: IV,
            processes: &[4],
            partial: Sequential,
            full: StagedLoop,
        },
        StageInfo {
            id: V,
            processes: &[7],
            partial: Sequential,
            full: StagedLoop,
        },
        StageInfo {
            id: VI,
            processes: &[10],
            partial: Loop,
            full: Loop,
        },
        StageInfo {
            id: VII,
            processes: &[11],
            partial: Sequential,
            full: Sequential,
        },
        StageInfo {
            id: VIII,
            processes: &[13],
            partial: Sequential,
            full: StagedLoop,
        },
        StageInfo {
            id: IX,
            processes: &[16],
            partial: Sequential,
            full: Loop,
        },
        StageInfo {
            id: X,
            processes: &[19],
            partial: Loop,
            full: Loop,
        },
        StageInfo {
            id: XI,
            processes: &[9, 15, 18],
            partial: Tasks,
            full: Tasks,
        },
    ]
};

/// Looks up a stage description.
pub fn stage_info(id: StageId) -> &'static StageInfo {
    &STAGE_TABLE[StageId::ALL.iter().position(|&s| s == id).unwrap()]
}

/// The stage a process occupies in the eleven-stage plan, or `None` for the
/// redundant processes (#6, #12, #14), which the plan does not schedule.
/// The DAG executors use this to inherit a node's inner-loop strategy from
/// the stage plan.
pub fn stage_of(p: u8) -> Option<&'static StageInfo> {
    STAGE_TABLE.iter().find(|s| s.processes.contains(&p))
}

/// Declared input/output artifacts per process, used to validate the plan.
/// Artifact classes are coarse (file families, not individual stations).
pub fn process_reads(p: u8) -> &'static [&'static str] {
    match p {
        0 => &[],
        1 => &["input-dir"],
        2 => &[],
        3 => &["v1list", "v1-station"],
        4 => &["v1list", "filter-params", "v1-component"],
        5 | 8 | 17 | 14 => &["v1list"],
        6 => &["v1list", "v1-station"],
        7 => &["v1list", "v2"],
        9 => &["v1list", "f"],
        10 => &["v1list", "f", "filter-params"],
        11 => &[],
        12 => &["v1list", "v1-station"],
        13 => &["v1list", "filter-params", "v1-component"],
        15 => &["v1list", "v2"],
        16 => &["v1list", "v2"],
        18 => &["v1list", "r"],
        19 => &["v1list", "v2", "r"],
        _ => panic!("unknown process {p}"),
    }
}

/// Declared outputs per process (see [`process_reads`]).
pub fn process_writes(p: u8) -> &'static [&'static str] {
    match p {
        0 | 11 => &["flags"],
        1 => &["v1list", "v1-station"],
        2 => &["filter-params"],
        3 | 12 => &["v1-component"],
        4 | 13 => &["v2", "max-values"],
        5 | 14 => &["acc-graph", "fourier", "response"],
        6 => &["ps-acc"],
        7 => &["f"],
        8 => &["fourier-graph"],
        9 => &["ps-fourier"],
        10 => &["filter-params"],
        15 => &["ps-acc"],
        16 => &["r"],
        17 => &["response-graph"],
        18 => &["ps-response"],
        19 => &["gem"],
        _ => panic!("unknown process {p}"),
    }
}

/// Checks that the stage ordering satisfies every read-after-write
/// dependency: any artifact a process reads must have been written by an
/// earlier stage (or an earlier process in the same stage for sequential
/// stages). Returns the violations found.
pub fn validate_plan() -> Vec<String> {
    let mut violations = Vec::new();
    let mut written: Vec<&'static str> = vec!["input-dir"];
    for stage in &STAGE_TABLE {
        // Within a stage, processes may run concurrently (tasks), so reads
        // must be satisfied by *prior stages* only — except purely
        // sequential single-process stages.
        let stage_written: Vec<&'static str> = stage
            .processes
            .iter()
            .flat_map(|&p| process_writes(p).iter().copied())
            .collect();
        for &p in stage.processes {
            for &artifact in process_reads(p) {
                if !written.contains(&artifact) {
                    // A same-stage producer is fine only when it is the same
                    // process (self-update like #10's filter-params).
                    let self_writes = process_writes(p).contains(&artifact);
                    if !self_writes {
                        violations.push(format!(
                            "stage {} process #{p} reads {artifact:?} before it is written",
                            stage.id.label()
                        ));
                    }
                }
            }
        }
        written.extend(stage_written);
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_table_covers_all_non_redundant_processes() {
        let mut covered: Vec<u8> = STAGE_TABLE
            .iter()
            .flat_map(|s| s.processes.iter().copied())
            .collect();
        covered.sort_unstable();
        // 17 processes (the optimized set: 20 minus #6, #12, #14).
        assert_eq!(covered.len(), 17);
        for p in 0..20u8 {
            let redundant = matches!(p, 6 | 12 | 14);
            assert_eq!(covered.contains(&p), !redundant, "process {p}");
        }
    }

    #[test]
    fn partial_parallelizes_exactly_five_stages() {
        let parallel: Vec<&str> = STAGE_TABLE
            .iter()
            .filter(|s| s.partial != Strategy::Sequential)
            .map(|s| s.id.label())
            .collect();
        assert_eq!(parallel, vec!["I", "II", "VI", "X", "XI"]);
    }

    #[test]
    fn full_parallelizes_all_but_stage_vii() {
        for s in &STAGE_TABLE {
            if s.id == StageId::VII {
                assert_eq!(s.full, Strategy::Sequential);
            } else {
                assert_ne!(s.full, Strategy::Sequential, "stage {}", s.id.label());
            }
        }
        let parallel = STAGE_TABLE
            .iter()
            .filter(|s| s.full != Strategy::Sequential)
            .count();
        assert_eq!(parallel, 10); // "10 out of 11 stages"
    }

    #[test]
    fn plan_has_no_dependency_violations() {
        let v = validate_plan();
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn stage_lookup() {
        assert_eq!(stage_info(StageId::IX).processes, &[16]);
        assert_eq!(stage_info(StageId::XI).processes, &[9, 15, 18]);
        assert_eq!(StageId::IX.label(), "IX");
    }

    #[test]
    fn stage_of_covers_scheduled_processes_only() {
        for p in 0..20u8 {
            match stage_of(p) {
                Some(stage) => assert!(stage.processes.contains(&p)),
                None => assert!(matches!(p, 6 | 12 | 14), "process {p}"),
            }
        }
        assert_eq!(stage_of(16).unwrap().id, StageId::IX);
    }

    #[test]
    fn reads_writes_defined_for_all_processes() {
        for p in 0..20u8 {
            let _ = process_reads(p);
            let _ = process_writes(p);
        }
    }
}
