//! Site-response amplification for the synthetic generator.
//!
//! Stations of the Salvadoran network sit on everything from volcanic rock
//! to lacustrine sediments; site response changes both the amplitude and
//! the frequency content of what an instrument records. The generator
//! models this with the standard single-layer-over-halfspace transfer
//! function: resonant amplification at `f0 (2k+1)` harmonics with
//! impedance-contrast amplitude, plus kappa-style damping.

/// Simplified site classes (NEHRP-flavoured).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// Hard rock: essentially flat response.
    Rock,
    /// Stiff soil: mild broadband amplification, f0 ~ 4 Hz.
    StiffSoil,
    /// Soft soil: strong resonant amplification, f0 ~ 1 Hz.
    SoftSoil,
}

impl SiteClass {
    /// Fundamental site frequency in Hz (`∞` conceptually for rock; a large
    /// value is used so the response stays flat in-band).
    pub fn fundamental_frequency_hz(self) -> f64 {
        match self {
            SiteClass::Rock => 50.0,
            SiteClass::StiffSoil => 4.0,
            SiteClass::SoftSoil => 1.0,
        }
    }

    /// Peak amplification at resonance (impedance contrast).
    pub fn peak_amplification(self) -> f64 {
        match self {
            SiteClass::Rock => 1.0,
            SiteClass::StiffSoil => 1.8,
            SiteClass::SoftSoil => 3.0,
        }
    }

    /// Site damping ratio controlling resonance width.
    pub fn damping(self) -> f64 {
        match self {
            SiteClass::Rock => 0.5,
            SiteClass::StiffSoil => 0.20,
            SiteClass::SoftSoil => 0.10,
        }
    }

    /// Amplitude transfer function |H(f)|: a damped-resonator comb over the
    /// odd harmonics of `f0`, normalized to 1 at DC.
    pub fn amplification(self, f: f64) -> f64 {
        if f <= 0.0 {
            return 1.0;
        }
        let f0 = self.fundamental_frequency_hz();
        let a_peak = self.peak_amplification();
        let zeta = self.damping();
        // First three odd harmonics carry the visible response.
        let mut h: f64 = 1.0;
        for k in 0..3 {
            let fk = f0 * (2 * k + 1) as f64;
            let r = f / fk;
            // Resonator amplitude: peak (a_peak-1)/(2k+1) above unity.
            let bump = (a_peak - 1.0) / (2 * k + 1) as f64;
            let resonance = bump
                / (((1.0 - r * r) * (1.0 - r * r)) + (2.0 * zeta * r).powi(2)).sqrt()
                * (2.0 * zeta);
            h += resonance;
        }
        h
    }

    /// Deterministic class assignment used by the dataset builder: spreads
    /// classes across stations.
    pub fn for_station_index(i: usize) -> SiteClass {
        match i % 3 {
            0 => SiteClass::Rock,
            1 => SiteClass::StiffSoil,
            _ => SiteClass::SoftSoil,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rock_is_nearly_flat_in_band() {
        for &f in &[0.1, 0.5, 1.0, 5.0, 10.0] {
            let h = SiteClass::Rock.amplification(f);
            assert!((h - 1.0).abs() < 0.15, "at {f}: {h}");
        }
    }

    #[test]
    fn soft_soil_amplifies_at_resonance() {
        let soft = SiteClass::SoftSoil;
        let f0 = soft.fundamental_frequency_hz();
        let at_res = soft.amplification(f0);
        let off_res = soft.amplification(f0 * 3.5);
        assert!(at_res > 2.0, "resonant amp {at_res}");
        assert!(at_res > off_res);
    }

    #[test]
    fn stiff_soil_between_rock_and_soft() {
        let f = 3.0;
        let rock = SiteClass::Rock.amplification(f);
        let stiff = SiteClass::StiffSoil.amplification(f);
        let soft = SiteClass::SoftSoil.amplification(1.0);
        assert!(rock < stiff, "{rock} {stiff}");
        assert!(stiff < soft, "{stiff} {soft}");
    }

    #[test]
    fn dc_normalized() {
        for c in [SiteClass::Rock, SiteClass::StiffSoil, SiteClass::SoftSoil] {
            assert_eq!(c.amplification(0.0), 1.0);
        }
    }

    #[test]
    fn station_assignment_cycles() {
        assert_eq!(SiteClass::for_station_index(0), SiteClass::Rock);
        assert_eq!(SiteClass::for_station_index(1), SiteClass::StiffSoil);
        assert_eq!(SiteClass::for_station_index(2), SiteClass::SoftSoil);
        assert_eq!(SiteClass::for_station_index(3), SiteClass::Rock);
    }

    #[test]
    fn finite_everywhere() {
        for c in [SiteClass::Rock, SiteClass::StiffSoil, SiteClass::SoftSoil] {
            for k in 0..500 {
                let f = k as f64 * 0.1;
                let h = c.amplification(f);
                assert!(h.is_finite() && h > 0.0, "{c:?} at {f}: {h}");
            }
        }
    }
}
