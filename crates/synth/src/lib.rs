//! # arp-synth — synthetic strong-motion records
//!
//! Replaces the paper's proprietary Salvadoran dataset with a deterministic
//! stochastic-method simulator:
//!
//! * [`source`] — ω² (Brune) source spectrum with geometric spreading,
//!   anelastic attenuation `Q(f)`, and site kappa;
//! * [`envelope`] — Saragoni–Hart shaping envelope;
//! * [`generate`] — component/station/event record synthesis (three
//!   components per station, mixed sampling rates, instrument noise floor
//!   and offset so every pipeline correction step has real work to do);
//! * [`dataset`] — the paper's six-event Table I dataset, reproduced at any
//!   scale.

#![warn(missing_docs)]

pub mod dataset;
pub mod envelope;
pub mod generate;
pub mod site;
pub mod source;

pub use dataset::{paper_dataset, paper_event, PAPER_EVENT_SHAPES};
pub use envelope::SaragoniHart;
pub use generate::{generate_component, generate_event, generate_station, EventSpec, StationSpec};
pub use site::SiteClass;
pub use source::SourceModel;

/// Writes every `<station>.v1` file of an event into `dir`, returning the
/// file names written. This is the entry point pipeline tests and the bench
/// harness use to stage an input directory.
pub fn write_event_inputs(
    event: &EventSpec,
    dir: &std::path::Path,
) -> Result<Vec<String>, arp_formats::FormatError> {
    let files = generate_event(event)?;
    let mut names = Vec::with_capacity(files.len());
    for f in &files {
        let name = arp_formats::names::v1_station(&f.header.station);
        f.write(&dir.join(&name))?;
        names.push(name);
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_event_inputs_creates_files() {
        let dir = std::env::temp_dir().join(format!("arp-synth-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let event = paper_event(0, 0.01);
        let names = write_event_inputs(&event, &dir).unwrap();
        assert_eq!(names.len(), 5);
        for n in &names {
            assert!(dir.join(n).exists(), "{n} missing");
            let f = arp_formats::V1StationFile::read(&dir.join(n)).unwrap();
            f.validate().unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
