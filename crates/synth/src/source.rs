//! Seismological source and path model: the ω² (Brune) spectrum with
//! geometric spreading, anelastic attenuation, and site kappa.
//!
//! Used to shape the white-noise spectrum so synthetic records have the
//! frequency content of real accelerograms — including the low-frequency
//! deficit that makes the FPL/FSL inflection detection meaningful.

/// Point-source spectral model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SourceModel {
    /// Moment magnitude.
    pub magnitude: f64,
    /// Stress drop in bars (typical 50–200).
    pub stress_drop_bars: f64,
    /// Shear-wave velocity at the source, km/s.
    pub beta_km_s: f64,
    /// Crustal density, g/cm³.
    pub density_g_cm3: f64,
    /// Quality factor `Q0` in `Q(f) = Q0 f^q_exp`.
    pub q0: f64,
    /// Frequency exponent of Q.
    pub q_exp: f64,
    /// Site kappa (high-frequency diminution), seconds.
    pub kappa_s: f64,
}

impl Default for SourceModel {
    fn default() -> Self {
        SourceModel {
            magnitude: 5.5,
            stress_drop_bars: 100.0,
            beta_km_s: 3.5,
            density_g_cm3: 2.8,
            q0: 200.0,
            q_exp: 0.8,
            kappa_s: 0.04,
        }
    }
}

impl SourceModel {
    /// Seismic moment in dyne·cm from moment magnitude.
    pub fn moment_dyne_cm(&self) -> f64 {
        10f64.powf(1.5 * self.magnitude + 16.05)
    }

    /// Brune corner frequency in Hz.
    pub fn corner_frequency_hz(&self) -> f64 {
        4.9e6 * self.beta_km_s * (self.stress_drop_bars / self.moment_dyne_cm()).powf(1.0 / 3.0)
    }

    /// Relative acceleration spectral amplitude at frequency `f` Hz for a
    /// station at `distance_km`. Units are arbitrary (the generator rescales
    /// to a target PGA); the *shape* is what matters:
    ///
    /// `A(f) ∝ (2πf)² · M0 / (1 + (f/fc)²) · G(R) · exp(-πfR/(Q(f)β)) · exp(-πκf)`
    pub fn acceleration_spectrum(&self, f: f64, distance_km: f64) -> f64 {
        if f <= 0.0 {
            return 0.0;
        }
        let fc = self.corner_frequency_hz();
        let w = 2.0 * std::f64::consts::PI * f;
        let source = w * w / (1.0 + (f / fc).powi(2));
        let r = distance_km.max(1.0);
        let geometric = 1.0 / r;
        let q = self.q0 * f.powf(self.q_exp);
        let anelastic = (-std::f64::consts::PI * f * r / (q * self.beta_km_s)).exp();
        let site = (-std::f64::consts::PI * self.kappa_s * f).exp();
        source * geometric * anelastic * site
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_frequency_decreases_with_magnitude() {
        let small = SourceModel {
            magnitude: 4.0,
            ..Default::default()
        };
        let big = SourceModel {
            magnitude: 7.0,
            ..Default::default()
        };
        assert!(small.corner_frequency_hz() > big.corner_frequency_hz());
        // Sanity: M5.5 with 100-bar stress drop has fc of order 0.5-2 Hz.
        let mid = SourceModel::default();
        let fc = mid.corner_frequency_hz();
        assert!(fc > 0.1 && fc < 5.0, "fc = {fc}");
    }

    #[test]
    fn moment_scales_with_magnitude() {
        let m5 = SourceModel {
            magnitude: 5.0,
            ..Default::default()
        };
        let m6 = SourceModel {
            magnitude: 6.0,
            ..Default::default()
        };
        let ratio = m6.moment_dyne_cm() / m5.moment_dyne_cm();
        assert!((ratio - 10f64.powf(1.5)).abs() / ratio < 1e-9);
    }

    #[test]
    fn spectrum_zero_at_dc_and_finite() {
        let m = SourceModel::default();
        assert_eq!(m.acceleration_spectrum(0.0, 10.0), 0.0);
        for &f in &[0.01, 0.1, 1.0, 10.0, 50.0] {
            let a = m.acceleration_spectrum(f, 20.0);
            assert!(a.is_finite() && a >= 0.0, "at {f}: {a}");
        }
    }

    #[test]
    fn spectrum_attenuates_with_distance() {
        let m = SourceModel::default();
        let near = m.acceleration_spectrum(2.0, 5.0);
        let far = m.acceleration_spectrum(2.0, 100.0);
        assert!(near > 5.0 * far);
    }

    #[test]
    fn high_frequencies_killed_by_kappa() {
        let m = SourceModel::default();
        // Beyond the corner the ω² growth is overwhelmed by kappa decay.
        let mid = m.acceleration_spectrum(5.0, 10.0);
        let high = m.acceleration_spectrum(60.0, 10.0);
        assert!(high < mid, "mid {mid} high {high}");
    }

    #[test]
    fn low_frequency_falls_off_as_omega_squared() {
        let m = SourceModel::default();
        // Well below the corner, A(f) ~ f^2 (ratio of 4 for doubling).
        let a1 = m.acceleration_spectrum(0.01, 10.0);
        let a2 = m.acceleration_spectrum(0.02, 10.0);
        let ratio = a2 / a1;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }
}
