//! Time-domain envelopes for stochastic ground-motion simulation.

/// Saragoni–Hart envelope: `e(t) = a (t/tn)^b exp(-c t/tn)`, normalized so
/// the peak value is 1. The canonical shape function used by stochastic
/// strong-motion simulation (Boore's SMSIM family).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaragoniHart {
    /// Normalizing duration `tn` (seconds) — roughly the strong-shaking span.
    pub duration: f64,
    /// Fraction of `duration` at which the envelope peaks (0 < peak_frac < 1).
    pub peak_fraction: f64,
    /// Envelope value at `t = duration` relative to the peak (0 < tail < 1).
    pub tail_level: f64,
}

impl Default for SaragoniHart {
    fn default() -> Self {
        // Boore (2003) standard choices: peak at 20% of duration, decayed to
        // 5% at the end of the window.
        SaragoniHart {
            duration: 20.0,
            peak_fraction: 0.2,
            tail_level: 0.05,
        }
    }
}

impl SaragoniHart {
    /// Envelope value at time `t` seconds (0 for negative `t`).
    pub fn value(&self, t: f64) -> f64 {
        if t <= 0.0 {
            return 0.0;
        }
        let eps = self.peak_fraction;
        let eta = self.tail_level;
        // b and c from the constraint that the peak is at eps*tn and the
        // value at tn is eta (Boore 2003, eqs. 71-73).
        let b = -(eps * eta.ln()) / (1.0 + eps * (eps.ln() - 1.0));
        let c = b / eps;
        let a = (std::f64::consts::E / eps).powf(b);
        let x = t / self.duration;
        a * x.powf(b) * (-c * x).exp()
    }

    /// Samples the envelope over `n` points at interval `dt`.
    pub fn samples(&self, n: usize, dt: f64) -> Vec<f64> {
        (0..n).map(|i| self.value(i as f64 * dt)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_near_one_at_peak_fraction() {
        let env = SaragoniHart::default();
        let tp = env.peak_fraction * env.duration;
        assert!((env.value(tp) - 1.0).abs() < 1e-9, "peak {}", env.value(tp));
        // Neighbors are lower.
        assert!(env.value(tp * 0.5) < 1.0);
        assert!(env.value(tp * 2.0) < 1.0);
    }

    #[test]
    fn tail_matches_requested_level() {
        let env = SaragoniHart::default();
        let v = env.value(env.duration);
        assert!((v - env.tail_level).abs() < 1e-9, "tail {v}");
    }

    #[test]
    fn zero_before_start() {
        let env = SaragoniHart::default();
        assert_eq!(env.value(0.0), 0.0);
        assert_eq!(env.value(-1.0), 0.0);
    }

    #[test]
    fn samples_shape() {
        let env = SaragoniHart::default();
        let s = env.samples(1000, 0.05); // 50 s
        assert_eq!(s.len(), 1000);
        let peak_idx = s
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        // Peak at ~4 s = index 80.
        assert!((peak_idx as isize - 80).abs() <= 2, "peak at {peak_idx}");
        // Monotone decay after ~2x the peak.
        assert!(s[400] > s[600] && s[600] > s[900]);
    }

    #[test]
    fn custom_parameters_respected() {
        let env = SaragoniHart {
            duration: 10.0,
            peak_fraction: 0.4,
            tail_level: 0.01,
        };
        assert!((env.value(4.0) - 1.0).abs() < 1e-9);
        assert!((env.value(10.0) - 0.01).abs() < 1e-9);
    }
}
