//! Synthetic accelerogram generation.
//!
//! The generator substitutes for the paper's 71 real Salvadoran V1 files.
//! Each component is produced by the standard stochastic-method recipe:
//! envelope-modulated Gaussian noise, spectrally shaped to the ω² source
//! model, rescaled to a distance-attenuated target PGA, plus a small
//! low-frequency instrument-noise floor so the records exhibit the velocity-
//! spectrum turn-up that process #10's FPL/FSL search relies on.

use crate::envelope::SaragoniHart;
use crate::site::SiteClass;
use crate::source::SourceModel;
use arp_formats::types::{Component, MotionTriple, RecordHeader};
use arp_formats::v1::V1StationFile;
use arp_formats::FormatError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// One synthetic station in an event.
#[derive(Debug, Clone, PartialEq)]
pub struct StationSpec {
    /// Station code (alphanumeric).
    pub code: String,
    /// Epicentral distance in km.
    pub distance_km: f64,
    /// Sampling interval in seconds.
    pub dt: f64,
    /// Number of acceleration samples per component.
    pub npts: usize,
    /// Site class controlling local amplification.
    pub site: SiteClass,
}

/// A synthetic seismic event: source model plus recording stations.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// Event identifier (used in file headers).
    pub id: String,
    /// Origin time (opaque ISO-8601 text).
    pub origin_time: String,
    /// Source spectral model.
    pub source: SourceModel,
    /// Stations that recorded the event.
    pub stations: Vec<StationSpec>,
    /// RNG seed; everything generated from an `EventSpec` is deterministic.
    pub seed: u64,
}

impl EventSpec {
    /// Total data points of the event = sum of per-station sample counts
    /// (the paper's per-event "Data Points" measure).
    pub fn total_data_points(&self) -> usize {
        self.stations.iter().map(|s| s.npts).sum()
    }

    /// Number of V1 files (= stations).
    pub fn v1_file_count(&self) -> usize {
        self.stations.len()
    }
}

/// Standard normal sample via Box–Muller (rand 0.8 without rand_distr).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Generates one component's acceleration trace (cm/s²).
pub fn generate_component(
    source: &SourceModel,
    station: &StationSpec,
    component: Component,
    seed: u64,
) -> Vec<f64> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ (component as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n = station.npts;
    if n < 2 {
        return vec![0.0; n];
    }
    let dt = station.dt;

    // 1. Envelope-modulated white noise. Strong-shaking duration grows with
    //    source size (1/fc) and distance (0.05 R, Boore's rule of thumb).
    let duration = (1.0 / source.corner_frequency_hz() + 0.05 * station.distance_km)
        .max(3.0)
        .min(0.8 * n as f64 * dt);
    let env = SaragoniHart {
        duration,
        ..Default::default()
    };
    let mut signal: Vec<f64> = (0..n)
        .map(|i| normal(&mut rng) * env.value(i as f64 * dt))
        .collect();

    // 2. Shape the spectrum to the source model.
    let mut spec = arp_dsp::fft::rfft(&signal);
    let len = spec.len();
    for (k, z) in spec.iter_mut().enumerate() {
        let f = arp_dsp::fft::bin_frequency(k, len, dt).abs();
        let shape =
            source.acceleration_spectrum(f, station.distance_km) * station.site.amplification(f);
        *z = z.scale(shape);
    }
    signal = arp_dsp::fft::irfft(&spec);

    // 3. Rescale to a distance-attenuated target PGA (simple attenuation:
    //    ~180 cm/s² at 10 km for M 6, falling as 1/R, scaling with moment^0.5).
    let target_pga =
        180.0 * 10f64.powf(0.5 * (source.magnitude - 6.0)) * (10.0 / station.distance_km.max(1.0));
    let peak = signal.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    if peak > 0.0 {
        let k = target_pga / peak;
        for v in signal.iter_mut() {
            *v *= k;
        }
    }

    // 4. Low-frequency instrument noise: a slow random-walk-flavoured sum of
    //    long-period sines, a fraction of a percent of PGA — invisible in
    //    acceleration, dominant in the velocity spectrum at long periods.
    let n_tones = 6;
    for tone in 0..n_tones {
        let f = 0.01 * (tone as f64 + 1.0) + rng.gen::<f64>() * 0.005;
        let amp = target_pga * 2e-3 / (tone as f64 + 1.0);
        let phase = rng.gen::<f64>() * 2.0 * PI;
        for (i, v) in signal.iter_mut().enumerate() {
            *v += amp * (2.0 * PI * f * i as f64 * dt + phase).sin();
        }
    }

    // 5. Small constant instrument offset the pipeline must remove.
    let offset = target_pga * 1e-3 * (rng.gen::<f64>() - 0.5);
    for v in signal.iter_mut() {
        *v += offset;
    }

    signal
}

/// Generates the raw `<station>.v1` file contents for one station.
pub fn generate_station(
    event: &EventSpec,
    station: &StationSpec,
) -> Result<V1StationFile, FormatError> {
    let header = RecordHeader::new(
        station.code.clone(),
        event.id.clone(),
        event.origin_time.clone(),
        station.dt,
    )?;
    let mut components = Vec::with_capacity(3);
    // Per-station sub-seed keeps stations independent but reproducible.
    let station_seed = event.seed ^ fxhash_str(&station.code);
    for comp in Component::ALL {
        let acc = generate_component(&event.source, station, comp, station_seed);
        let triple = MotionTriple::from_acceleration(acc, station.dt)?;
        components.push((comp, triple));
    }
    Ok(V1StationFile { header, components })
}

/// Generates every station file of an event.
pub fn generate_event(event: &EventSpec) -> Result<Vec<V1StationFile>, FormatError> {
    event
        .stations
        .iter()
        .map(|s| generate_station(event, s))
        .collect()
}

/// Tiny deterministic string hash (FNV-1a) for seeding per station.
fn fxhash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> (EventSpec, StationSpec) {
        let station = StationSpec {
            code: "SSLB".into(),
            distance_km: 25.0,
            dt: 0.01,
            npts: 4096,
            site: SiteClass::Rock,
        };
        let event = EventSpec {
            id: "TEST-EV".into(),
            origin_time: "2019-07-31T03:04:05Z".into(),
            source: SourceModel::default(),
            stations: vec![station.clone()],
            seed: 42,
        };
        (event, station)
    }

    #[test]
    fn generation_is_deterministic() {
        let (event, station) = spec();
        let a = generate_component(&event.source, &station, Component::Longitudinal, 7);
        let b = generate_component(&event.source, &station, Component::Longitudinal, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn components_differ() {
        let (event, station) = spec();
        let l = generate_component(&event.source, &station, Component::Longitudinal, 7);
        let t = generate_component(&event.source, &station, Component::Transversal, 7);
        assert_ne!(l, t);
    }

    #[test]
    fn seeds_differ() {
        let (event, station) = spec();
        let a = generate_component(&event.source, &station, Component::Vertical, 1);
        let b = generate_component(&event.source, &station, Component::Vertical, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn pga_near_target() {
        let (event, station) = spec();
        let acc = generate_component(&event.source, &station, Component::Longitudinal, 42);
        let pga = acc.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        // target at M5.5, R=25: 180 * 10^-0.25 * 10/25 ≈ 40.5 cm/s²; noise
        // and offset perturb it a little.
        let target = 180.0 * 10f64.powf(-0.25) * (10.0 / 25.0);
        assert!(
            (pga - target).abs() / target < 0.1,
            "pga {pga} target {target}"
        );
    }

    #[test]
    fn record_has_finite_values_and_zero_start() {
        let (event, station) = spec();
        let acc = generate_component(&event.source, &station, Component::Vertical, 9);
        assert_eq!(acc.len(), station.npts);
        assert!(acc.iter().all(|v| v.is_finite()));
        // Envelope suppresses the record onset relative to the peak (the
        // spectral shaping and noise floor leave a small residue).
        let pga = acc.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(acc[0].abs() < 0.2 * pga, "onset {} pga {pga}", acc[0]);
    }

    #[test]
    fn station_file_valid_and_three_components() {
        let (event, station) = spec();
        let file = generate_station(&event, &station).unwrap();
        file.validate().unwrap();
        assert_eq!(file.components.len(), 3);
        assert_eq!(file.header.station, "SSLB");
        assert_eq!(file.data_points(), 3 * station.npts);
    }

    #[test]
    fn event_generation_counts() {
        let (mut event, station) = spec();
        let mut s2 = station.clone();
        s2.code = "QCAL".into();
        s2.npts = 2048;
        event.stations.push(s2);
        let files = generate_event(&event).unwrap();
        assert_eq!(files.len(), 2);
        assert_eq!(event.total_data_points(), 4096 + 2048);
        assert_eq!(event.v1_file_count(), 2);
    }

    #[test]
    fn spectrum_has_low_frequency_deficit() {
        // The generated record's acceleration spectrum must fall toward DC
        // (omega-squared source) — this is what makes FPL/FSL detection work.
        let (event, station) = spec();
        let acc = generate_component(&event.source, &station, Component::Longitudinal, 42);
        let spec = arp_dsp::spectrum::fourier_spectrum(&acc, station.dt).unwrap();
        let amp_at = |f_target: f64| -> f64 {
            let idx = spec
                .frequency_hz
                .iter()
                .position(|&f| f >= f_target)
                .unwrap();
            // average a few bins for stability
            let lo = idx.saturating_sub(3);
            let hi = (idx + 3).min(spec.len() - 1);
            spec.acceleration[lo..=hi].iter().sum::<f64>() / (hi - lo + 1) as f64
        };
        let low = amp_at(0.05);
        let mid = amp_at(2.0);
        // The exact ratio depends on the noise stream the seed produces;
        // 2x is a comfortable margin for the deficit itself.
        assert!(mid > 2.0 * low, "mid {mid} low {low}");
    }

    #[test]
    fn tiny_record_does_not_panic() {
        let (event, mut station) = spec();
        station.npts = 1;
        let acc = generate_component(&event.source, &station, Component::Vertical, 1);
        assert_eq!(acc.len(), 1);
        station.npts = 0;
        let acc0 = generate_component(&event.source, &station, Component::Vertical, 1);
        assert!(acc0.is_empty());
    }
}
