//! The paper's six-event experimental dataset, replicated synthetically.
//!
//! Table I of the paper lists, per event, the number of V1 files and total
//! data points:
//!
//! | Event   | V1 files | Data points |
//! |---------|----------|-------------|
//! | Nov'18  | 5        | 56 K        |
//! | Apr'18  | 5        | 115 K       |
//! | Jul'19  | 9        | 145 K       |
//! | Apr'17  | 15       | 309 K       |
//! | May'19  | 18       | 361 K       |
//! | Jul'19b | 19       | 384 K       |
//!
//! [`paper_dataset`] reproduces those shapes exactly (at `scale = 1.0`);
//! smaller scales shrink per-station sample counts proportionally for tests
//! and CI-speed benchmarks while preserving the file counts and the spread
//! of per-file sizes (the paper: 7,300–35,000 points per file) and sampling
//! rates ("a variety of equipment types and sampling rates").

use crate::generate::{EventSpec, StationSpec};
use crate::site::SiteClass;
use crate::source::SourceModel;

/// Shape of one paper event: `(label, v1_files, total_points, magnitude)`.
pub const PAPER_EVENT_SHAPES: [(&str, usize, usize, f64); 6] = [
    ("Nov-24-2018", 5, 56_000, 4.8),
    ("Apr-02-2018", 5, 115_000, 5.0),
    ("Jul-10-2019", 9, 145_000, 5.2),
    ("Apr-10-2017", 15, 309_000, 5.9),
    ("May-30-2019", 18, 361_000, 6.1),
    ("Jul-31-2019", 19, 384_000, 6.2),
];

/// Station codes modeled on the Salvadoran strong-motion network.
const STATION_CODES: [&str; 24] = [
    "SSLB", "QCAL", "SMIG", "UCAX", "LUNA", "SNJE", "ACAJ", "SONS", "AHUA", "CHAL", "SVIC", "USUL",
    "LAUN", "SMAR", "PERQ", "CBRR", "TECL", "ZACA", "METP", "ILOP", "APAS", "COMA", "JUCU", "GUAY",
];

/// The sampling intervals found in the network (100, 200, 50 sps).
const SAMPLING_INTERVALS: [f64; 3] = [0.01, 0.005, 0.02];

/// Builds one paper event at the given scale (`1.0` = paper size).
///
/// Per-station sample counts vary deterministically around the mean in a
/// ±40% band (mirroring the paper's 7.3K–35K per-file spread) and are
/// adjusted so they sum exactly to `round(total_points * scale)`.
pub fn paper_event(index: usize, scale: f64) -> EventSpec {
    assert!(index < PAPER_EVENT_SHAPES.len(), "event index out of range");
    assert!(scale > 0.0, "scale must be positive");
    let (label, files, total_points, magnitude) = PAPER_EVENT_SHAPES[index];
    let total = ((total_points as f64 * scale).round() as usize).max(files * 16);

    // Deterministic per-station weights in [0.6, 1.4].
    let weights: Vec<f64> = (0..files)
        .map(|i| {
            let x = ((index * 31 + i * 17 + 7) % 101) as f64 / 100.0;
            0.6 + 0.8 * x
        })
        .collect();
    let wsum: f64 = weights.iter().sum();
    let mut npts: Vec<usize> = weights
        .iter()
        .map(|w| ((w / wsum) * total as f64).floor() as usize)
        .collect();
    // Distribute the rounding remainder.
    let assigned: usize = npts.iter().sum();
    for k in 0..total - assigned {
        npts[k % files] += 1;
    }

    let stations = (0..files)
        .map(|i| StationSpec {
            code: STATION_CODES[i % STATION_CODES.len()].to_string(),
            distance_km: 8.0 + 7.0 * i as f64,
            dt: SAMPLING_INTERVALS[(index + i) % SAMPLING_INTERVALS.len()],
            npts: npts[i].max(16),
            site: SiteClass::for_station_index(i),
        })
        .collect();

    EventSpec {
        id: format!("ES-{label}"),
        origin_time: format!("20{}-01-01T00:00:00Z", 17 + index % 3),
        source: SourceModel {
            magnitude,
            ..Default::default()
        },
        stations,
        seed: 0xA5EED + index as u64,
    }
}

/// All six paper events at the given scale.
pub fn paper_dataset(scale: f64) -> Vec<EventSpec> {
    (0..PAPER_EVENT_SHAPES.len())
        .map(|i| paper_event(i, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper_shapes() {
        for (i, &(_, files, points, _)) in PAPER_EVENT_SHAPES.iter().enumerate() {
            let ev = paper_event(i, 1.0);
            assert_eq!(ev.v1_file_count(), files);
            assert_eq!(ev.total_data_points(), points);
        }
    }

    #[test]
    fn per_file_sizes_in_realistic_band() {
        // Paper: 7,300 to 35,000 points per file at full scale.
        for i in 0..6 {
            let ev = paper_event(i, 1.0);
            for s in &ev.stations {
                assert!(
                    s.npts >= 7_000 && s.npts <= 36_000,
                    "event {i} station {} has {}",
                    s.code,
                    s.npts
                );
            }
        }
    }

    #[test]
    fn scaling_shrinks_proportionally() {
        let full = paper_event(5, 1.0);
        let tenth = paper_event(5, 0.1);
        assert_eq!(tenth.v1_file_count(), full.v1_file_count());
        let ratio = tenth.total_data_points() as f64 / full.total_data_points() as f64;
        assert!((ratio - 0.1).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn dataset_has_six_events() {
        let ds = paper_dataset(0.05);
        assert_eq!(ds.len(), 6);
        // Ascending data points (as in the paper's Fig 13 x-axis).
        for w in ds.windows(2) {
            assert!(w[1].total_data_points() >= w[0].total_data_points());
        }
    }

    #[test]
    fn station_codes_unique_within_event() {
        for i in 0..6 {
            let ev = paper_event(i, 0.02);
            let mut codes: Vec<&str> = ev.stations.iter().map(|s| s.code.as_str()).collect();
            codes.sort_unstable();
            codes.dedup();
            assert_eq!(codes.len(), ev.stations.len(), "event {i} repeats a code");
        }
    }

    #[test]
    fn mixed_sampling_rates_present() {
        let ev = paper_event(5, 0.02);
        let mut dts: Vec<f64> = ev.stations.iter().map(|s| s.dt).collect();
        dts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        dts.dedup();
        assert!(dts.len() >= 2, "expected multiple sampling rates");
    }

    #[test]
    fn deterministic_specs() {
        assert_eq!(paper_event(2, 0.1), paper_event(2, 0.1));
    }

    #[test]
    #[should_panic]
    fn out_of_range_event_panics() {
        paper_event(6, 1.0);
    }
}
