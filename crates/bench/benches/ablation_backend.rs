//! Ablation: rayon's work-stealing pool vs the `arp-par` OpenMP-style pool
//! across its three schedules, on a compute-bound loop. On multi-core hosts
//! this compares real scaling; on single-core CI it quantifies the pure
//! dispatch overhead of each backend.

use arp_par::{Schedule, ThreadPool};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn work_unit(i: usize) -> u64 {
    let mut acc = i as u64;
    for k in 0..400u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
    }
    acc
}

fn bench_backends(c: &mut Criterion) {
    let n = 4096usize;
    let pool = ThreadPool::new(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4),
    );

    let mut group = c.benchmark_group("ablation/backend");
    group.sample_size(20);

    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for i in 0..n {
                sum = sum.wrapping_add(work_unit(i));
            }
            sum
        })
    });

    group.bench_function("rayon", |b| {
        b.iter(|| {
            (0..n)
                .into_par_iter()
                .map(work_unit)
                .reduce(|| 0u64, u64::wrapping_add)
        })
    });

    for schedule in [Schedule::Static, Schedule::Dynamic(64), Schedule::Guided(8)] {
        group.bench_with_input(
            BenchmarkId::new("arp_par", format!("{schedule:?}")),
            &schedule,
            |b, &schedule| {
                b.iter(|| {
                    let sum = AtomicU64::new(0);
                    pool.parallel_for(0..n, schedule, |i| {
                        sum.fetch_add(work_unit(i), Ordering::Relaxed);
                    });
                    sum.into_inner()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_backends);
criterion_main!(benches);
