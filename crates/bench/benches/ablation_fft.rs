//! Ablation: the FFT engine across input classes — power-of-two radix-2,
//! arbitrary-length Bluestein, and the naive `O(N²)` DFT reference — plus
//! the full Fourier-spectrum computation of process #7.

use arp_dsp::backend::DspBackend;
use arp_dsp::complex::Complex;
use arp_dsp::fft::{dft_naive, fft, fft_with, rfft};
use arp_dsp::spectrum::fourier_spectrum;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn complex_signal(n: usize) -> Vec<Complex> {
    (0..n)
        .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/fft");
    group.sample_size(20);

    for &n in &[1024usize, 4096] {
        let x = complex_signal(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("radix2", n), &x, |b, x| b.iter(|| fft(x)));
    }
    for &n in &[1000usize, 4093] {
        let x = complex_signal(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("bluestein", n), &x, |b, x| {
            b.iter(|| fft(x))
        });
    }
    // Naive reference at a size where it is still measurable quickly.
    let x = complex_signal(512);
    group.bench_with_input(BenchmarkId::new("naive_dft", 512), &x, |b, x| {
        b.iter(|| dft_naive(x))
    });
    // Scalar vs SIMD butterfly backends (`--dsp-backend`), radix-2 and
    // Bluestein paths. Bitwise-identical output; these rows measure pure
    // throughput of the blocked butterflies.
    for (tag, n) in [("radix2", 4096usize), ("bluestein", 4093)] {
        let x = complex_signal(n);
        group.throughput(Throughput::Elements(n as u64));
        for backend in [DspBackend::Scalar, DspBackend::Simd] {
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_{backend}"), n),
                &x,
                |b, x| b.iter(|| fft_with(x, backend)),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("process7/fourier_spectrum");
    group.sample_size(20);
    for &n in &[2000usize, 8000, 20000] {
        let acc: Vec<f64> = (0..n).map(|i| (i as f64 * 0.05).sin()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &acc, |b, acc| {
            b.iter(|| fourier_spectrum(acc, 0.01).unwrap())
        });
        // rfft alone, to separate transform cost from spectrum assembly.
        group.bench_with_input(BenchmarkId::new("rfft_only", n), &acc, |b, acc| {
            b.iter(|| rfft(acc))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
