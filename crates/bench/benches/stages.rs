//! Bench for Fig. 11: the cost of each heavy pipeline process on a fixed
//! staged input — the sequential bars of the per-stage comparison. The
//! parallel bars come from the scheduling simulator (`report fig11`).

use arp_core::process::{analyze, filter, fourier, gemgen, plots, respspec, separate};
use arp_core::{PipelineConfig, RunContext};
use arp_synth::paper_event;
use criterion::{criterion_group, criterion_main, Criterion};
use std::path::PathBuf;

/// Prepares a work directory with the pipeline advanced far enough that
/// every benched process has its inputs available.
fn prepare() -> (PathBuf, RunContext) {
    let base = std::env::temp_dir().join(format!("arp-crit-stages-{}", std::process::id()));
    let input = base.join("in");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&input).unwrap();
    let event = paper_event(0, 0.01);
    arp_synth::write_event_inputs(&event, &input).unwrap();
    let ctx = RunContext::new(&input, base.join("w"), PipelineConfig::fast()).unwrap();
    arp_core::process::gather::gather_inputs(&ctx, false).unwrap();
    arp_core::process::filterinit::init_filter_params(&ctx).unwrap();
    separate::separate_components(&ctx, false).unwrap();
    filter::correct_signals(&ctx, filter::CorrectionPass::Default, false).unwrap();
    fourier::fourier_transform(&ctx, false).unwrap();
    analyze::analyze_fourier(&ctx, false).unwrap();
    respspec::response_spectrum_calc(&ctx, false).unwrap();
    (base, ctx)
}

fn bench_stages(c: &mut Criterion) {
    let (base, ctx) = prepare();
    let mut group = c.benchmark_group("pipeline/stages");
    group.sample_size(10);

    group.bench_function("III_separate", |b| {
        b.iter(|| separate::separate_components(&ctx, false).unwrap())
    });
    group.bench_function("IV_default_filter", |b| {
        b.iter(|| filter::correct_signals(&ctx, filter::CorrectionPass::Default, false).unwrap())
    });
    group.bench_function("V_fourier", |b| {
        b.iter(|| fourier::fourier_transform(&ctx, false).unwrap())
    });
    group.bench_function("VI_analyze", |b| {
        b.iter(|| analyze::analyze_fourier(&ctx, false).unwrap())
    });
    group.bench_function("VIII_definitive_filter", |b| {
        b.iter(|| filter::correct_signals(&ctx, filter::CorrectionPass::Definitive, false).unwrap())
    });
    group.bench_function("IX_response_spectrum", |b| {
        b.iter(|| respspec::response_spectrum_calc(&ctx, false).unwrap())
    });
    group.bench_function("X_gem", |b| {
        b.iter(|| gemgen::generate_gem_files(&ctx, false).unwrap())
    });
    group.bench_function("XI_plots", |b| {
        b.iter(|| {
            plots::plot_fourier_spectrum(&ctx, false).unwrap();
            plots::plot_accelerograph(&ctx, false).unwrap();
            plots::plot_response_spectrum(&ctx, false).unwrap();
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&base);
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
