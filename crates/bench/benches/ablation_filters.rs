//! Ablation: the legacy windowed-sinc Hamming FIR (the paper's filter) vs a
//! modern Butterworth IIR `filtfilt` at matched band edges — design cost
//! and application cost.

use arp_dsp::fir::{BandPass, FirFilter};
use arp_dsp::iir::IirFilter;
use arp_dsp::window::WindowKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_filter_families(c: &mut Criterion) {
    let dt = 0.01;
    let band = BandPass::new(0.1, 0.2, 20.0, 24.0).unwrap();

    let mut group = c.benchmark_group("ablation/filter_design");
    group.sample_size(20);
    group.bench_function("fir_hamming", |b| {
        b.iter(|| FirFilter::band_pass(band, dt, WindowKind::Hamming).unwrap())
    });
    group.bench_function("iir_butterworth4", |b| {
        b.iter(|| IirFilter::butterworth_band_pass(4, 0.15, 22.0, dt).unwrap())
    });
    group.finish();

    let fir = FirFilter::band_pass(band, dt, WindowKind::Hamming).unwrap();
    let iir = IirFilter::butterworth_band_pass(4, 0.15, 22.0, dt).unwrap();
    let mut group = c.benchmark_group("ablation/filter_apply");
    group.sample_size(20);
    for &n in &[2000usize, 10000] {
        let x: Vec<f64> = (0..n).map(|i| ((i * 31) % 97) as f64 * 0.1 - 4.0).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fir_fft", n), &x, |b, x| {
            b.iter(|| fir.apply_fft(x))
        });
        group.bench_with_input(BenchmarkId::new("iir_filtfilt", n), &x, |b, x| {
            b.iter(|| iir.filtfilt(x))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filter_families);
criterion_main!(benches);
