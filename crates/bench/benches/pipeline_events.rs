//! Bench for Table I / Fig. 12: the five pipeline implementations (the
//! paper's four plus the DAG scheduler) on a
//! scaled paper event. Reported wall times are the real sequential costs;
//! the multi-core comparison (with simulated scheduling) is produced by the
//! `report` binary, which this bench complements with statistically robust
//! per-implementation costs.

use arp_bench::{run_once, stage_event_inputs};
use arp_core::{ImplKind, PipelineConfig};
use arp_synth::paper_event;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_implementations(c: &mut Criterion) {
    // Smallest paper event at 1% scale so a full pipeline run is quick.
    let event = paper_event(0, 0.01);
    let input = stage_event_inputs(&event, "crit-pipeline").unwrap();
    let config = PipelineConfig::fast();

    let mut group = c.benchmark_group("pipeline/table1");
    group.sample_size(10);
    for kind in ImplKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label().replace([' ', '.'], "")),
            &kind,
            |b, &kind| {
                b.iter(|| run_once(&input, &config, kind, "bench").unwrap());
            },
        );
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&input);
}

criterion_group!(benches, bench_implementations);
criterion_main!(benches);
