//! Ablation: direct `O(N·taps)` convolution vs FFT-based `O(N log N)`
//! application of the Hamming band-pass filter — the crossover justifies the
//! pipeline's choice of the FFT path for its long default filters — plus the
//! scalar vs SIMD backend rows for the convolution and frequency-response
//! kernels (`--dsp-backend`; both backends are bitwise-identical, so these
//! rows measure pure throughput).

use arp_dsp::backend::DspBackend;
use arp_dsp::fir::{frequency_gain_with, BandPass, FirFilter};
use arp_dsp::window::WindowKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const BACKENDS: [DspBackend; 2] = [DspBackend::Scalar, DspBackend::Simd];

fn bench_fir_application(c: &mut Criterion) {
    let dt = 0.01;
    let mut group = c.benchmark_group("ablation/fir_apply");
    group.sample_size(10);

    // A narrow transition band forces many taps (the pipeline's default
    // long-period cut); a wide one keeps the filter short.
    let bands = [
        ("short_filter", BandPass::new(1.0, 3.0, 20.0, 24.0).unwrap()),
        ("long_filter", BandPass::DEFAULT),
    ];
    for (tag, band) in bands {
        let filt = FirFilter::band_pass(band, dt, WindowKind::Hamming).unwrap();
        for &n in &[2000usize, 8000] {
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * 13 % 101) as f64 - 50.0) * 0.1)
                .collect();
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_{}taps_direct", filt.taps()), n),
                &x,
                |b, x| b.iter(|| filt.apply(x)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_{}taps_fft", filt.taps()), n),
                &x,
                |b, x| b.iter(|| filt.apply_fft(x)),
            );
        }
    }
    group.finish();
}

/// Scalar vs SIMD rows for the two FIR hot kernels: direct convolution
/// (`apply`, the serial-reduction-chain kernel the 4-lane accumulators are
/// aimed at) and the frequency-response probe used by filter design.
fn bench_fir_backends(c: &mut Criterion) {
    let dt = 0.01;
    let mut group = c.benchmark_group("ablation/fir_backend");
    group.sample_size(10);

    let filt = FirFilter::band_pass(
        BandPass::new(1.0, 3.0, 20.0, 24.0).unwrap(),
        dt,
        WindowKind::Hamming,
    )
    .unwrap();
    for &n in &[2000usize, 8000] {
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 13 % 101) as f64 - 50.0) * 0.1)
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        for backend in BACKENDS {
            group.bench_with_input(
                BenchmarkId::new(format!("apply_direct_{backend}"), n),
                &x,
                |b, x| b.iter(|| filt.apply_with(x, backend)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("apply_fft_{backend}"), n),
                &x,
                |b, x| b.iter(|| filt.apply_fft_with(x, backend)),
            );
        }
    }

    let long = FirFilter::band_pass(BandPass::DEFAULT, dt, WindowKind::Hamming).unwrap();
    let coeffs: Vec<f64> = long.coeffs().to_vec();
    group.throughput(Throughput::Elements(coeffs.len() as u64));
    for backend in BACKENDS {
        group.bench_with_input(
            BenchmarkId::new(format!("frequency_gain_{backend}"), coeffs.len()),
            &coeffs,
            |b, coeffs| b.iter(|| frequency_gain_with(coeffs, 7.3, dt, backend)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fir_application, bench_fir_backends);
criterion_main!(benches);
