//! Ablation: direct `O(N·taps)` convolution vs FFT-based `O(N log N)`
//! application of the Hamming band-pass filter — the crossover justifies the
//! pipeline's choice of the FFT path for its long default filters.

use arp_dsp::fir::{BandPass, FirFilter};
use arp_dsp::window::WindowKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_fir_application(c: &mut Criterion) {
    let dt = 0.01;
    let mut group = c.benchmark_group("ablation/fir_apply");
    group.sample_size(10);

    // A narrow transition band forces many taps (the pipeline's default
    // long-period cut); a wide one keeps the filter short.
    let bands = [
        ("short_filter", BandPass::new(1.0, 3.0, 20.0, 24.0).unwrap()),
        ("long_filter", BandPass::DEFAULT),
    ];
    for (tag, band) in bands {
        let filt = FirFilter::band_pass(band, dt, WindowKind::Hamming).unwrap();
        for &n in &[2000usize, 8000] {
            let x: Vec<f64> = (0..n)
                .map(|i| ((i * 13 % 101) as f64 - 50.0) * 0.1)
                .collect();
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_{}taps_direct", filt.taps()), n),
                &x,
                |b, x| b.iter(|| filt.apply(x)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_{}taps_fft", filt.taps()), n),
                &x,
                |b, x| b.iter(|| filt.apply_fft(x)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fir_application);
criterion_main!(benches);
