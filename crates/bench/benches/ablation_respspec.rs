//! Ablation: the legacy Duhamel kernel (`O(D²)` per period) vs the exact
//! Nigam–Jennings recurrence (`O(D)` per period). Demonstrates the paper's
//! stated sequential complexity of process #16 and quantifies what its
//! "advanced optimization" future work would buy.

use arp_dsp::backend::DspBackend;
use arp_dsp::respspec::{response_spectrum_with, sdof_peaks, ResponseMethod};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn record(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 * 0.01;
            (2.0 * std::f64::consts::PI * 1.3 * t).sin() * (-((t - 5.0) / 4.0f64).powi(2)).exp()
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/respspec_kernel");
    group.sample_size(10);
    for &n in &[250usize, 500, 1000, 2000] {
        let acc = record(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("duhamel", n), &acc, |b, acc| {
            b.iter(|| sdof_peaks(acc, 0.01, 0.5, 0.05, ResponseMethod::Duhamel).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("nigam_jennings", n), &acc, |b, acc| {
            b.iter(|| sdof_peaks(acc, 0.01, 0.5, 0.05, ResponseMethod::NigamJennings).unwrap())
        });
    }
    group.finish();
}

/// Scalar vs SIMD backend rows for the full spectrum (`--dsp-backend`):
/// the SIMD backend integrates four periods' independent SDOF recurrences
/// per step, breaking the per-period serial dependency chain that bounds
/// the scalar Nigam–Jennings kernel.
fn bench_backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/respspec_backend");
    group.sample_size(10);
    let periods: Vec<f64> = (1..=64).map(|i| 0.05 * i as f64).collect();
    // Records sized so one iteration stays sub-second: Duhamel is O(D²)
    // per period, Nigam–Jennings O(D).
    for (tag, method, n) in [
        ("duhamel", ResponseMethod::Duhamel, 500usize),
        ("nigam_jennings", ResponseMethod::NigamJennings, 2000),
    ] {
        let acc = record(n);
        group.throughput(Throughput::Elements((acc.len() * periods.len()) as u64));
        for backend in [DspBackend::Scalar, DspBackend::Simd] {
            group.bench_with_input(
                BenchmarkId::new(format!("{tag}_{backend}"), periods.len()),
                &acc,
                |b, acc| {
                    b.iter(|| {
                        response_spectrum_with(acc, 0.01, &periods, 0.05, method, backend).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels, bench_backends);
criterion_main!(benches);
