//! `report` — regenerates the paper's tables and figures.
//!
//! ```text
//! report <command> [--scale X] [--full] [--duhamel] [--out DIR] [--event N]
//!
//! commands:
//!   table1   Table I  — per-event times of all five implementations
//!            (the paper's four plus the DAG scheduler) and the DAG
//!            schedule decomposition
//!   fig11    Fig. 11  — per-stage seq vs full-par times (largest event)
//!   fig12    Fig. 12  — grouped bars per event (SVG + CSV)
//!   fig13    Fig. 13  — speedup & throughput vs problem size (SVG + CSV)
//!   amdahl   Amdahl check — measured vs predicted speedup
//!   sweep    speedup vs virtual processor count (1..16)
//!   scaling  execution time vs data points (linearity check, §VII-C)
//!   batch    six-event cross-event super-DAG vs per-event DAG loop
//!            (writes BENCH_batch.json, including measured per-worker
//!            utilization, queue-wait percentiles from the span trace,
//!            and the diagnostics-ring overhead ratio)
//!   trace-overhead
//!            instrumentation cost check: the six-event super-DAG batch run
//!            uninstrumented vs traced vs live-metrics vs diagnostics-armed,
//!            best of --reps each (budget: ≤1% per collector)
//!   compare OLD.json NEW.json
//!            bench regression gate: diff two BENCH_batch.json files and
//!            exit nonzero when the candidate regressed beyond --tolerance
//!            (also enforces the ≤1% diagnostics budget on the candidate's
//!            diag_overhead when the field is present)
//!   all      run everything
//!
//! options:
//!   --scale X    data-point scale relative to the paper (default 0.05)
//!   --full       paper-size run (scale 1.0) — takes a long time
//!   --duhamel    use the legacy O(D²)-per-period response-spectrum kernel
//!   --out DIR    where CSV/SVG artifacts go (default ./report-out)
//!   --event N    event index for fig11/amdahl (default 5, the largest)
//!   --threads P  virtual processors for the simulated schedule (default 8,
//!                the paper's testbed core count)
//!   --measured   use real wall-clock parallel timing instead of the
//!                simulated schedule (only meaningful on multi-core hosts)
//!   --reps N     repetitions per measurement, median kept (default 1)
//!   --tolerance N
//!                compare: allowed regression percent (default 10)
//!   --relative-only
//!                compare: gate only machine-stable metrics (utilization),
//!                skipping absolute seconds and noise-prone speedups
//! ```

use arp_bench as bench;
use arp_core::config::TimingModel;
use arp_core::PipelineConfig;
use arp_dsp::respspec::ResponseMethod;
use std::path::PathBuf;

struct Options {
    command: String,
    scale: f64,
    duhamel: bool,
    out: PathBuf,
    event: usize,
    threads: usize,
    measured: bool,
    reps: usize,
    /// Positional file arguments (the two BENCH_*.json paths of `compare`).
    files: Vec<PathBuf>,
    tolerance: f64,
    relative_only: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command; try `report all`")?;
    let mut opts = Options {
        command,
        scale: 0.05,
        duhamel: false,
        out: PathBuf::from("report-out"),
        event: 5,
        threads: 8,
        measured: false,
        reps: 1,
        files: Vec::new(),
        tolerance: 0.10,
        relative_only: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                opts.scale = v.parse().map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--full" => opts.scale = 1.0,
            "--duhamel" => opts.duhamel = true,
            "--out" => {
                opts.out = PathBuf::from(args.next().ok_or("--out needs a value")?);
            }
            "--event" => {
                let v = args.next().ok_or("--event needs a value")?;
                opts.event = v.parse().map_err(|e| format!("bad --event: {e}"))?;
                if opts.event > 5 {
                    return Err("--event must be 0..=5".into());
                }
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a value")?;
                opts.threads = v.parse().map_err(|e| format!("bad --threads: {e}"))?;
                if opts.threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
            }
            "--measured" => opts.measured = true,
            "--reps" => {
                let v = args.next().ok_or("--reps needs a value")?;
                opts.reps = v.parse().map_err(|e| format!("bad --reps: {e}"))?;
                if opts.reps == 0 {
                    return Err("--reps must be >= 1".into());
                }
            }
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a value")?;
                let pct: f64 = v.parse().map_err(|e| format!("bad --tolerance: {e}"))?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err("--tolerance must be a percent in 0..=100".into());
                }
                opts.tolerance = pct / 100.0;
            }
            "--relative-only" => opts.relative_only = true,
            other if !other.starts_with("--") => opts.files.push(PathBuf::from(other)),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if opts.scale <= 0.0 {
        return Err("--scale must be positive".into());
    }
    Ok(opts)
}

fn config_for(opts: &Options) -> PipelineConfig {
    let mut config = PipelineConfig::default();
    if opts.duhamel {
        config.response_method = ResponseMethod::Duhamel;
    }
    config.timing = if opts.measured {
        TimingModel::Measured
    } else {
        TimingModel::Simulated {
            threads: opts.threads,
        }
    };
    config
}

fn save(out_dir: &PathBuf, name: &str, contents: &str) {
    std::fs::create_dir_all(out_dir).expect("create output dir");
    let path = out_dir.join(name);
    std::fs::write(&path, contents).expect("write artifact");
    println!("  wrote {}", path.display());
}

fn run_table_experiments(opts: &Options, config: &PipelineConfig) -> Vec<bench::EventRun> {
    eprintln!(
        "running Table I experiment at scale {} ({} kernel, {})...",
        opts.scale,
        if opts.duhamel {
            "Duhamel"
        } else {
            "Nigam-Jennings"
        },
        if opts.measured {
            "measured wall-clock".to_string()
        } else {
            format!("simulated {}-thread schedule", opts.threads)
        }
    );
    bench::warmup(config).expect("warmup failed");
    bench::table1_reps(opts.scale, config, opts.reps).expect("table1 run failed")
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: report <table1|fig11|fig12|fig13|amdahl|scaling|sweep|batch|trace-overhead|compare|all> [--scale X] [--full] [--duhamel] [--out DIR] [--event N]");
            std::process::exit(2);
        }
    };
    let config = config_for(&opts);

    let needs_table = matches!(opts.command.as_str(), "table1" | "fig12" | "fig13" | "all");
    let rows = if needs_table {
        Some(run_table_experiments(&opts, &config))
    } else {
        None
    };

    match opts.command.as_str() {
        "table1" => {
            let rows = rows.as_ref().unwrap();
            println!("\nTABLE I (reproduced, scale {}):\n", opts.scale);
            print!("{}", bench::format_table1(rows));
            println!();
            print!("{}", bench::format_dag_decomposition(rows));
            save(&opts.out, "table1.csv", &bench::table1_csv(rows));
        }
        "fig11" => {
            bench::warmup(&config).expect("warmup failed");
            let f = bench::fig11_reps(opts.event, opts.scale, &config, opts.reps)
                .expect("fig11 run failed");
            println!("\nFIG. 11 (reproduced, scale {}):\n", opts.scale);
            print!("{}", bench::format_fig11(&f));
            println!(
                "\nstage IX sequential share: {:.1}% (paper: 57.2%)",
                100.0 * f.sequential_fraction(arp_core::StageId::IX)
            );
        }
        "fig12" => {
            let rows = rows.as_ref().unwrap();
            save(&opts.out, "fig12.svg", &bench::fig12_svg(rows));
            save(&opts.out, "fig12.csv", &bench::table1_csv(rows));
        }
        "fig13" => {
            let rows = rows.as_ref().unwrap();
            println!("\nFIG. 13 (reproduced):\n\n{}", bench::fig13_csv(rows));
            save(&opts.out, "fig13.svg", &bench::fig13_svg(rows));
            save(&opts.out, "fig13.csv", &bench::fig13_csv(rows));
        }
        "amdahl" => {
            bench::warmup(&config).expect("warmup failed");
            let f = bench::fig11_reps(opts.event, opts.scale, &config, opts.reps)
                .expect("fig11 run failed");
            let threads = if opts.measured {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            } else {
                opts.threads
            };
            let (serial, predicted) = bench::amdahl_prediction(&f, threads);
            let seq: f64 = f.sequential.iter().map(|s| s.elapsed.as_secs_f64()).sum();
            let par: f64 = f.parallel.iter().map(|s| s.elapsed.as_secs_f64()).sum();
            println!("Amdahl check ({threads} threads):");
            println!("  measured stage-sum speedup: {:.2}x", seq / par.max(1e-12));
            println!("  implied serial fraction:    {:.1}%", serial * 100.0);
            println!("  Amdahl-predicted speedup:   {predicted:.2}x");
        }
        "scaling" => {
            bench::warmup(&config).expect("warmup failed");
            let scales = [0.01, 0.02, 0.04, 0.08, 0.16];
            let rows = bench::scaling_experiment(
                opts.event,
                &scales,
                &config,
                arp_core::ImplKind::FullyParallel,
            )
            .expect("scaling run failed");
            println!("\nExecution time vs data points (event {}):\n", opts.event);
            println!("{:<12} {:>10}", "points", "time (s)");
            for (p, t) in &rows {
                println!("{p:<12} {t:>10.4}");
            }
            let (a, b, r2) = bench::linear_fit(&rows);
            println!(
                "\nlinear fit: time = {a:.4} + {:.3e}·points   (R² = {r2:.4})",
                b
            );
            println!("paper claim (§VII-C): execution time is linear in data points.");
        }
        "sweep" => {
            bench::warmup(&config).expect("warmup failed");
            let counts = [1usize, 2, 4, 8, 12, 16];
            let rows = bench::thread_sweep(opts.event, opts.scale, &config, &counts)
                .expect("sweep failed");
            println!("\nSpeedup vs virtual processors (event {}):\n", opts.event);
            println!("{:<10} {:>8}", "threads", "speedup");
            for (t, s) in &rows {
                println!("{t:<10} {s:>7.2}x");
            }
            save(&opts.out, "sweep.csv", &bench::sweep_csv(&rows));
        }
        "batch" => {
            bench::warmup(&config).expect("warmup failed");
            eprintln!(
                "running batch experiment at scale {} ({})...",
                opts.scale,
                if opts.measured {
                    "measured wall-clock".to_string()
                } else {
                    format!("simulated {}-thread schedule", opts.threads)
                }
            );
            let b = bench::batch_experiment(opts.scale, &config, 6).expect("batch run failed");
            println!();
            print!("{}", bench::format_batch_experiment(&b));
            save(&opts.out, "BENCH_batch.json", &bench::batch_json(&b));
        }
        "trace-overhead" => {
            bench::warmup(&config).expect("warmup failed");
            eprintln!(
                "measuring instrumentation overhead at scale {} ({} reps per mode)...",
                opts.scale, opts.reps
            );
            let t = bench::trace_overhead_experiment(opts.scale, &config, opts.reps)
                .expect("overhead run failed");
            println!();
            print!("{}", bench::format_trace_overhead(&t));
        }
        "compare" => {
            if opts.files.len() != 2 {
                eprintln!(
                    "usage: report compare OLD.json NEW.json [--tolerance PCT] [--relative-only]"
                );
                std::process::exit(2);
            }
            let read = |p: &PathBuf| {
                std::fs::read_to_string(p).unwrap_or_else(|e| {
                    eprintln!("error: {}: {e}", p.display());
                    std::process::exit(2);
                })
            };
            let old = read(&opts.files[0]);
            let new = read(&opts.files[1]);
            let report = bench::compare_batch_json(&old, &new, opts.tolerance, opts.relative_only)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                });
            print!("{}", report.render());
            if report.failed() {
                eprintln!("regression gate FAILED");
                std::process::exit(1);
            }
            println!("regression gate passed");
        }
        "all" => {
            let rows = rows.as_ref().unwrap();
            println!("\nTABLE I (reproduced, scale {}):\n", opts.scale);
            print!("{}", bench::format_table1(rows));
            println!();
            print!("{}", bench::format_dag_decomposition(rows));
            save(&opts.out, "table1.csv", &bench::table1_csv(rows));
            save(&opts.out, "fig12.svg", &bench::fig12_svg(rows));
            save(&opts.out, "fig13.svg", &bench::fig13_svg(rows));
            save(&opts.out, "fig13.csv", &bench::fig13_csv(rows));
            let f = bench::fig11_reps(opts.event, opts.scale, &config, opts.reps)
                .expect("fig11 run failed");
            println!("\nFIG. 11 (reproduced):\n");
            print!("{}", bench::format_fig11(&f));
            println!(
                "\nstage IX sequential share: {:.1}% (paper: 57.2%)",
                100.0 * f.sequential_fraction(arp_core::StageId::IX)
            );
        }
        other => {
            eprintln!("unknown command {other:?}");
            std::process::exit(2);
        }
    }
}
