//! # arp-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§VII):
//!
//! * [`table1`] — Table I: per-event wall times of the implementations
//!   (the paper's four plus the DAG scheduler) and the overall speedup;
//! * [`fig11`] — Fig. 11: per-stage sequential vs fully-parallel times for
//!   the largest event;
//! * [`fig12_svg`] — Fig. 12: grouped bars of the five implementations per
//!   event;
//! * [`fig13`] / [`fig13_svg`] — Fig. 13: speedup and throughput vs problem
//!   size;
//! * [`batch_experiment`] — beyond the paper: the six events processed as
//!   one cross-event super-DAG vs a per-event DAG loop.
//!
//! The `report` binary drives these from the command line; the Criterion
//! benches reuse the same building blocks at reduced scale.

#![warn(missing_docs)]

use arp_core::report::StageTiming;
use arp_core::{
    run_pipeline_labeled, run_stages_sequential, ImplKind, PipelineConfig, PipelineError,
    RunContext, RunReport, StageId,
};
use arp_synth::{paper_event, write_event_inputs, EventSpec, PAPER_EVENT_SHAPES};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Results of running one event under every implementation.
#[derive(Debug, Clone)]
pub struct EventRun {
    /// Event label (Table I row name).
    pub label: String,
    /// Number of V1 files.
    pub v1_files: usize,
    /// Total data points.
    pub data_points: usize,
    /// Wall time per implementation.
    pub times: BTreeMap<&'static str, Duration>,
    /// Full reports per implementation.
    pub reports: Vec<RunReport>,
}

impl EventRun {
    /// Wall time of one implementation.
    pub fn time_of(&self, kind: ImplKind) -> Duration {
        self.times[kind.label()]
    }

    /// Overall speedup: Sequential Original vs Fully Parallelized
    /// (Table I's right-most column).
    pub fn speedup(&self) -> f64 {
        let seq = self.time_of(ImplKind::SequentialOriginal).as_secs_f64();
        let par = self.time_of(ImplKind::FullyParallel).as_secs_f64();
        if par > 0.0 {
            seq / par
        } else {
            0.0
        }
    }

    /// Data points per second of the fully parallelized run.
    pub fn throughput(&self) -> f64 {
        let par = self.time_of(ImplKind::FullyParallel).as_secs_f64();
        if par > 0.0 {
            self.data_points as f64 / par
        } else {
            0.0
        }
    }

    /// Speedup of the DAG scheduler over Sequential Original (the column
    /// the paper does not have: what barrier-free scheduling adds).
    pub fn dag_speedup(&self) -> f64 {
        let seq = self.time_of(ImplKind::SequentialOriginal).as_secs_f64();
        let dag = self.time_of(ImplKind::DagParallel).as_secs_f64();
        if dag > 0.0 {
            seq / dag
        } else {
            0.0
        }
    }

    /// The schedule analysis of this event's DAG run, if one was recorded.
    pub fn dag_report(&self) -> Option<&arp_core::DagReport> {
        self.reports
            .iter()
            .find(|r| r.implementation == ImplKind::DagParallel)
            .and_then(|r| r.dag.as_ref())
    }
}

/// Scratch directory for harness runs.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("arp-bench-{tag}-{}", std::process::id()))
}

/// Stages an event's input files into a fresh directory.
pub fn stage_event_inputs(event: &EventSpec, tag: &str) -> Result<PathBuf, PipelineError> {
    let dir = scratch(&format!("in-{tag}"));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).map_err(|e| PipelineError::io(&dir, e))?;
    }
    std::fs::create_dir_all(&dir).map_err(|e| PipelineError::io(&dir, e))?;
    write_event_inputs(event, &dir)?;
    Ok(dir)
}

/// Runs one event under one implementation in a fresh work directory,
/// returning the report. The work directory is deleted afterwards.
pub fn run_once(
    input_dir: &Path,
    config: &PipelineConfig,
    kind: ImplKind,
    label: &str,
) -> Result<RunReport, PipelineError> {
    let work = scratch(&format!(
        "w-{label}-{}",
        kind.label().replace([' ', '.'], "")
    ));
    if work.exists() {
        std::fs::remove_dir_all(&work).map_err(|e| PipelineError::io(&work, e))?;
    }
    let ctx = RunContext::new(input_dir, &work, config.clone())?;
    let report = run_pipeline_labeled(&ctx, kind, label)?;
    std::fs::remove_dir_all(&work).map_err(|e| PipelineError::io(&work, e))?;
    Ok(report)
}

/// Runs one event under all five implementations.
pub fn run_event_all_impls(
    event: &EventSpec,
    config: &PipelineConfig,
    label: &str,
) -> Result<EventRun, PipelineError> {
    run_event_all_impls_reps(event, config, label, 1)
}

/// As [`run_event_all_impls`], repeating each measurement `reps` times and
/// keeping the median total (reduces filesystem-cache noise).
pub fn run_event_all_impls_reps(
    event: &EventSpec,
    config: &PipelineConfig,
    label: &str,
    reps: usize,
) -> Result<EventRun, PipelineError> {
    let reps = reps.max(1);
    let input_dir = stage_event_inputs(event, label)?;
    let mut times = BTreeMap::new();
    let mut reports = Vec::with_capacity(4);
    let mut v1_files = 0;
    let mut data_points = 0;
    for kind in ImplKind::ALL {
        let mut samples = Vec::with_capacity(reps);
        let mut last = None;
        for _ in 0..reps {
            let report = run_once(&input_dir, config, kind, label)?;
            samples.push(report.total);
            last = Some(report);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let mut report = last.expect("reps >= 1");
        report.total = median;
        v1_files = report.v1_files;
        data_points = report.data_points;
        times.insert(kind.label(), median);
        reports.push(report);
    }
    std::fs::remove_dir_all(&input_dir).map_err(|e| PipelineError::io(&input_dir, e))?;
    Ok(EventRun {
        label: label.to_string(),
        v1_files,
        data_points,
        times,
        reports,
    })
}

/// Runs the full six-event Table I experiment at the given scale.
pub fn table1(scale: f64, config: &PipelineConfig) -> Result<Vec<EventRun>, PipelineError> {
    table1_reps(scale, config, 1)
}

/// As [`table1`] with `reps` repetitions per measurement (median kept).
pub fn table1_reps(
    scale: f64,
    config: &PipelineConfig,
    reps: usize,
) -> Result<Vec<EventRun>, PipelineError> {
    let mut rows = Vec::with_capacity(PAPER_EVENT_SHAPES.len());
    for (i, &(label, _, _, _)) in PAPER_EVENT_SHAPES.iter().enumerate() {
        let event = paper_event(i, scale);
        rows.push(run_event_all_impls_reps(&event, config, label, reps)?);
    }
    Ok(rows)
}

/// Formats Table I as fixed-width text (same columns as the paper).
pub fn format_table1(rows: &[EventRun]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}\n",
        "Event",
        "V1 Files",
        "Points",
        "Seq.Ori.",
        "Seq.Opt.",
        "Part.Par.",
        "Full.Par.",
        "DAG.Par.",
        "SpeedUp",
        "DAG.Up"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>8} {:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>7.2}x {:>7.2}x\n",
            r.label,
            r.v1_files,
            r.data_points,
            r.time_of(ImplKind::SequentialOriginal).as_secs_f64(),
            r.time_of(ImplKind::SequentialOptimized).as_secs_f64(),
            r.time_of(ImplKind::PartiallyParallel).as_secs_f64(),
            r.time_of(ImplKind::FullyParallel).as_secs_f64(),
            r.time_of(ImplKind::DagParallel).as_secs_f64(),
            r.speedup(),
            r.dag_speedup()
        ));
    }
    out
}

/// Formats the DAG schedule analysis per event: where each event's speedup
/// comes from (stage-internal parallelism vs. barrier removal) and the
/// critical path that bounds it.
pub fn format_dag_decomposition(rows: &[EventRun]) -> String {
    let mut out =
        String::from("DAG schedule decomposition (simulated on the run's own node times):\n");
    out.push_str(&format!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}  critical path\n",
        "Event", "NodeSum", "Barrier", "DAG", "CP floor"
    ));
    for r in rows {
        let Some(d) = r.dag_report() else {
            out.push_str(&format!("{:<12} (no DAG report)\n", r.label));
            continue;
        };
        let path: Vec<String> = d
            .critical_path
            .iter()
            .map(|p| format!("#{}", p.0))
            .collect();
        out.push_str(&format!(
            "{:<12} {:>10.4} {:>10.4} {:>10.4} {:>10.4}  {}\n",
            r.label,
            d.node_total.as_secs_f64(),
            d.barrier_makespan.as_secs_f64(),
            d.dag_makespan.as_secs_f64(),
            d.critical_path_len.as_secs_f64(),
            path.join("->")
        ));
    }
    out
}

/// Emits Table I as CSV.
pub fn table1_csv(rows: &[EventRun]) -> String {
    let mut out = String::from(
        "event,v1_files,data_points,seq_ori_s,seq_opt_s,part_par_s,full_par_s,dag_par_s,speedup,dag_speedup\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.4},{:.4}\n",
            r.label,
            r.v1_files,
            r.data_points,
            r.time_of(ImplKind::SequentialOriginal).as_secs_f64(),
            r.time_of(ImplKind::SequentialOptimized).as_secs_f64(),
            r.time_of(ImplKind::PartiallyParallel).as_secs_f64(),
            r.time_of(ImplKind::FullyParallel).as_secs_f64(),
            r.time_of(ImplKind::DagParallel).as_secs_f64(),
            r.speedup(),
            r.dag_speedup()
        ));
    }
    out
}

/// Fig. 11 data: per-stage `(sequential, fully parallel)` times for one
/// event (the paper uses the largest, index 5).
pub struct Fig11 {
    /// Event label.
    pub label: String,
    /// Stage timings of the sequential execution (11 stages).
    pub sequential: Vec<StageTiming>,
    /// Stage timings of the fully parallel execution.
    pub parallel: Vec<StageTiming>,
}

impl Fig11 {
    /// Per-stage speedups `(stage, seq, par, speedup)`.
    pub fn speedups(&self) -> Vec<(StageId, f64, f64, f64)> {
        self.sequential
            .iter()
            .zip(&self.parallel)
            .map(|(s, p)| {
                let sq = s.elapsed.as_secs_f64();
                let pr = p.elapsed.as_secs_f64();
                (s.stage, sq, pr, if pr > 0.0 { sq / pr } else { 0.0 })
            })
            .collect()
    }

    /// Fraction of total sequential time spent in a stage.
    pub fn sequential_fraction(&self, id: StageId) -> f64 {
        let total: f64 = self
            .sequential
            .iter()
            .map(|s| s.elapsed.as_secs_f64())
            .sum();
        let stage = self
            .sequential
            .iter()
            .find(|s| s.stage == id)
            .map(|s| s.elapsed.as_secs_f64())
            .unwrap_or(0.0);
        if total > 0.0 {
            stage / total
        } else {
            0.0
        }
    }
}

/// Runs the Fig. 11 experiment: per-stage times, sequential vs fully
/// parallel, for the chosen paper event.
pub fn fig11(
    event_index: usize,
    scale: f64,
    config: &PipelineConfig,
) -> Result<Fig11, PipelineError> {
    fig11_reps(event_index, scale, config, 1)
}

/// As [`fig11`], repeating each measurement `reps` times and keeping the
/// per-stage median.
pub fn fig11_reps(
    event_index: usize,
    scale: f64,
    config: &PipelineConfig,
    reps: usize,
) -> Result<Fig11, PipelineError> {
    let reps = reps.max(1);
    let label = PAPER_EVENT_SHAPES[event_index].0;
    let event = paper_event(event_index, scale);
    let input_dir = stage_event_inputs(&event, &format!("fig11-{label}"))?;

    let median_stages = |samples: Vec<Vec<StageTiming>>| -> Vec<StageTiming> {
        let stages = samples[0].len();
        (0..stages)
            .map(|k| {
                let mut times: Vec<Duration> = samples.iter().map(|run| run[k].elapsed).collect();
                times.sort();
                StageTiming {
                    stage: samples[0][k].stage,
                    elapsed: times[times.len() / 2],
                }
            })
            .collect()
    };

    // Sequential per-stage baseline (median of reps runs).
    let mut seq_samples = Vec::with_capacity(reps);
    for r in 0..reps {
        let work_seq = scratch(&format!("fig11-seq-{r}"));
        let _ = std::fs::remove_dir_all(&work_seq);
        let ctx = RunContext::new(&input_dir, &work_seq, config.clone())?;
        seq_samples.push(run_stages_sequential(&ctx)?);
        std::fs::remove_dir_all(&work_seq).map_err(|e| PipelineError::io(&work_seq, e))?;
    }
    let sequential = median_stages(seq_samples);

    // Fully parallel runs (median of reps).
    let mut par_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let report = run_once(&input_dir, config, ImplKind::FullyParallel, label)?;
        par_samples.push(report.stages);
    }
    let parallel = median_stages(par_samples);

    std::fs::remove_dir_all(&input_dir).map_err(|e| PipelineError::io(&input_dir, e))?;

    Ok(Fig11 {
        label: label.to_string(),
        sequential,
        parallel,
    })
}

/// Runs a throwaway small pipeline to warm caches and the allocator before
/// measurement.
pub fn warmup(config: &PipelineConfig) -> Result<(), PipelineError> {
    let event = paper_event(0, 0.002);
    let input_dir = stage_event_inputs(&event, "warmup")?;
    let _ = run_once(&input_dir, config, ImplKind::SequentialOptimized, "warmup")?;
    std::fs::remove_dir_all(&input_dir).map_err(|e| PipelineError::io(&input_dir, e))?;
    Ok(())
}

/// Formats Fig. 11 as a text table.
pub fn format_fig11(f: &Fig11) -> String {
    let mut out = format!(
        "Per-stage timings, event {} (sequential vs fully parallel)\n{:<6} {:>12} {:>12} {:>9} {:>8}\n",
        f.label, "Stage", "Seq (s)", "Par (s)", "Speedup", "Seq %"
    );
    let total: f64 = f.sequential.iter().map(|s| s.elapsed.as_secs_f64()).sum();
    for (stage, seq, par, speedup) in f.speedups() {
        out.push_str(&format!(
            "{:<6} {:>12.4} {:>12.4} {:>8.2}x {:>7.1}%\n",
            stage.label(),
            seq,
            par,
            speedup,
            if total > 0.0 {
                100.0 * seq / total
            } else {
                0.0
            }
        ));
    }
    out
}

/// Renders Fig. 12 (grouped bars per event) as SVG.
pub fn fig12_svg(rows: &[EventRun]) -> String {
    let chart = arp_plot::GroupedBarChart {
        title: "Execution time per event and implementation".into(),
        y_label: "Time (s)".into(),
        groups: rows.iter().map(|r| r.label.clone()).collect(),
        series: ImplKind::ALL
            .iter()
            .map(|&k| {
                (
                    k.label().to_string(),
                    rows.iter().map(|r| r.time_of(k).as_secs_f64()).collect(),
                )
            })
            .collect(),
    };
    chart.to_svg(760.0, 420.0)
}

/// Fig. 13 series: per event `(data_points, speedup, throughput)`.
pub fn fig13(rows: &[EventRun]) -> Vec<(usize, f64, f64)> {
    rows.iter()
        .map(|r| (r.data_points, r.speedup(), r.throughput()))
        .collect()
}

/// Formats Fig. 13 as CSV.
pub fn fig13_csv(rows: &[EventRun]) -> String {
    let mut out = String::from("data_points,speedup,points_per_second\n");
    for (points, speedup, tput) in fig13(rows) {
        out.push_str(&format!("{points},{speedup:.4},{tput:.1}\n"));
    }
    out
}

/// Renders Fig. 13 (speedup and throughput vs problem size) as SVG.
pub fn fig13_svg(rows: &[EventRun]) -> String {
    let series = fig13(rows);
    let xs: Vec<f64> = series.iter().map(|&(p, _, _)| p as f64).collect();
    let speedups: Vec<f64> = series.iter().map(|&(_, s, _)| s).collect();
    let tputs: Vec<f64> = series.iter().map(|&(_, _, t)| t).collect();
    let panels = vec![
        arp_plot::LineChart::new("Overall speedup vs problem size")
            .labels("Data points per event", "Speedup (x)")
            .with_series(arp_plot::Series::from_xy("speedup", &xs, &speedups)),
        arp_plot::LineChart::new("Throughput vs problem size")
            .labels("Data points per event", "Data points / s")
            .with_series(arp_plot::Series::from_xy("throughput", &xs, &tputs)),
    ];
    arp_plot::Figure::new(panels).to_svg()
}

/// Scaling experiment — the paper's §VII-C claim that "execution time is
/// linearly proportional to the total amount of data points". Runs one
/// event at several data scales and returns `(data_points, seconds)` pairs
/// for the chosen implementation.
pub fn scaling_experiment(
    event_index: usize,
    scales: &[f64],
    config: &PipelineConfig,
    kind: ImplKind,
) -> Result<Vec<(usize, f64)>, PipelineError> {
    let label = PAPER_EVENT_SHAPES[event_index].0;
    let mut rows = Vec::with_capacity(scales.len());
    for (k, &scale) in scales.iter().enumerate() {
        let event = paper_event(event_index, scale);
        let input_dir = stage_event_inputs(&event, &format!("scal-{label}-{k}"))?;
        let report = run_once(&input_dir, config, kind, label)?;
        std::fs::remove_dir_all(&input_dir).map_err(|e| PipelineError::io(&input_dir, e))?;
        rows.push((report.data_points, report.total.as_secs_f64()));
    }
    Ok(rows)
}

/// Least-squares fit of `time = a + b·points`; returns `(a, b, r²)`.
pub fn linear_fit(rows: &[(usize, f64)]) -> (f64, f64, f64) {
    let n = rows.len() as f64;
    if rows.len() < 2 {
        return (0.0, 0.0, 0.0);
    }
    let sx: f64 = rows.iter().map(|(p, _)| *p as f64).sum();
    let sy: f64 = rows.iter().map(|(_, t)| *t).sum();
    let sxx: f64 = rows.iter().map(|(p, _)| (*p as f64).powi(2)).sum();
    let sxy: f64 = rows.iter().map(|(p, t)| *p as f64 * t).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (sy / n, 0.0, 0.0);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    // R² against the fit.
    let mean_y = sy / n;
    let ss_tot: f64 = rows.iter().map(|(_, t)| (t - mean_y).powi(2)).sum();
    let ss_res: f64 = rows
        .iter()
        .map(|(p, t)| (t - (a + b * *p as f64)).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    (a, b, r2)
}

/// Results of the batch experiment: the same paper events processed twice,
/// once by a per-event DAG loop (events strictly in sequence, each
/// internally parallel) and once as one cross-event super-DAG
/// ([`arp_core::run_batch_dag`]). The difference isolates what scheduling
/// the whole batch as a single graph buys.
#[derive(Debug)]
pub struct BatchExperiment {
    /// Data-point scale the events were synthesized at.
    pub scale: f64,
    /// Per-event DAG loop: the sequential-across-events baseline.
    pub loop_report: arp_core::BatchReport,
    /// Cross-event super-DAG run (critical-path ready order).
    pub dag_report: arp_core::BatchReport,
    /// Span trace of the measured scheduler-health pass: per-worker
    /// utilization and queue-wait percentiles (the scheduler-health
    /// columns of `BENCH_batch.json`). Always recorded on the real worker
    /// pool — for simulated-timing configs a dedicated measured run is
    /// added, so the rows name actual pool threads (`arp-par-*`,
    /// `arp-io-*`, plus the helping caller) instead of collapsing onto
    /// the caller thread.
    pub trace: arp_trace::TraceSummary,
    /// Live-metrics digest of the pool's queue-wait histogram over the
    /// scheduler-health pass (`None` if nothing was recorded).
    pub queue_wait: Option<HistDigest>,
    /// Live-metrics digest of the pool's execute-time histogram.
    pub execute: Option<HistDigest>,
    /// Relative wall-time cost of arming the diagnostics ring on a
    /// measured super-DAG run (`diag/plain − 1`; negative = within
    /// noise). Gated at ≤1% by `report compare`.
    pub diag_overhead: f64,
    /// Attribution profile of the same scheduler-health trace: per-kernel
    /// exclusive self-time, the realized critical path's composition, the
    /// accounting identity (gated by `report compare`), and what-if
    /// speedup curves replayed through the deterministic scheduler.
    pub profile: arp_trace::profile::Profile,
    /// Format-layer residency comparison: peak reader bytes-in-flight,
    /// whole-file vs streaming, over the largest paper event.
    pub reader_peak: ReaderPeak,
    /// Scalar-vs-SIMD DSP backend comparison: per-kernel micro throughput,
    /// the measured whole-batch saving of `--dsp-backend simd` over
    /// `scalar`, and the saving the profile's what-if curves *predicted*
    /// for the measured kernel speedups.
    pub simd: SimdExperiment,
}

/// One DSP kernel measured under both backends (`--dsp-backend`), seconds
/// per call on a fixed synthetic input. Backends are bitwise-identical, so
/// the ratio is pure throughput.
#[derive(Debug, Clone)]
pub struct SimdKernelRow {
    /// Kernel tag (`fir_convolve`, `fir_apply_fft`, `frequency_gain`,
    /// `fft_radix2`, `respspec_nj`).
    pub kernel: &'static str,
    /// Elements processed per call (for throughput context).
    pub elements: usize,
    /// Seconds per call, scalar backend.
    pub scalar_s: f64,
    /// Seconds per call, SIMD backend.
    pub simd_s: f64,
}

impl SimdKernelRow {
    /// Scalar-to-SIMD speedup (`> 1` = SIMD faster).
    pub fn speedup(&self) -> f64 {
        if self.simd_s > 0.0 {
            self.scalar_s / self.simd_s
        } else {
            0.0
        }
    }

    fn json(&self) -> String {
        format!(
            "    {{\"kernel\": {}, \"elements\": {}, \"scalar_s\": {:.9}, \"simd_s\": {:.9}, \"speedup\": {:.4}}}",
            json_str(self.kernel),
            self.elements,
            self.scalar_s,
            self.simd_s,
            self.speedup()
        )
    }
}

/// Results of the SIMD-backend experiment: what the 4-lane kernels buy at
/// micro scale (per kernel) and at batch scale (whole super-DAG run), next
/// to what the critical-path profiler's what-if curves predicted a kernel
/// speedup of that size would buy.
#[derive(Debug, Clone)]
pub struct SimdExperiment {
    /// Per-kernel micro rows.
    pub kernels: Vec<SimdKernelRow>,
    /// Measured super-DAG batch wall time, `--dsp-backend scalar`
    /// (mean of the two bracketing scalar runs).
    pub batch_scalar_s: f64,
    /// Measured super-DAG batch wall time, `--dsp-backend simd`.
    pub batch_simd_s: f64,
    /// Batch saving the what-if curves predict for the measured per-kernel
    /// speedups: Σ over profiled kernels of the curve interpolated at that
    /// kernel's measured micro speedup. `0` when no curve maps.
    pub predicted_saving: f64,
}

impl SimdExperiment {
    /// Measured whole-batch saving, `1 − simd/scalar` (positive = SIMD
    /// batch faster).
    pub fn measured_saving(&self) -> f64 {
        if self.batch_scalar_s > 0.0 {
            1.0 - self.batch_simd_s / self.batch_scalar_s
        } else {
            0.0
        }
    }

    /// Largest per-kernel speedup — the headline the compare gate holds:
    /// the SIMD backend must keep beating scalar on at least one kernel.
    pub fn best_kernel_speedup(&self) -> f64 {
        self.kernels
            .iter()
            .map(SimdKernelRow::speedup)
            .fold(0.0, f64::max)
    }

    fn json(&self) -> String {
        let rows: Vec<String> = self.kernels.iter().map(SimdKernelRow::json).collect();
        format!(
            "{{\n  \"kernels\": [\n{}\n  ],\n  \"best_kernel_speedup\": {:.4},\n  \
             \"batch_scalar_s\": {:.6},\n  \"batch_simd_s\": {:.6},\n  \
             \"measured_saving\": {:.4},\n  \"predicted_saving\": {:.4}\n  }}",
            rows.join(",\n"),
            self.best_kernel_speedup(),
            self.batch_scalar_s,
            self.batch_simd_s,
            self.measured_saving(),
            self.predicted_saving
        )
    }
}

/// Seconds per call of `f`: one warmup call, then doubling iteration
/// counts until the timed block covers ≥10 ms.
fn time_call<F: FnMut()>(mut f: F) -> f64 {
    f();
    let mut iters = 1usize;
    loop {
        let start = std::time::Instant::now();
        for _ in 0..iters {
            f();
        }
        let secs = start.elapsed().as_secs_f64();
        if secs >= 0.01 || iters >= 1 << 22 {
            return secs / iters as f64;
        }
        iters *= 2;
    }
}

/// Linear interpolation of a what-if curve's predicted saving at the
/// measured kernel `speedup`. The curve starts implicitly at `(1.0, 0.0)`
/// (no speedup saves nothing); beyond the last point the saving plateaus
/// (the kernel has left the critical path).
fn interp_what_if_saving(curve: &arp_trace::profile::WhatIfCurve, speedup: f64) -> f64 {
    if speedup <= 1.0 {
        return 0.0;
    }
    let (mut x0, mut y0) = (1.0, 0.0);
    for p in &curve.points {
        if speedup <= p.speedup {
            let span = p.speedup - x0;
            if span <= 0.0 {
                return p.saving;
            }
            return y0 + (p.saving - y0) * (speedup - x0) / span;
        }
        (x0, y0) = (p.speedup, p.saving);
    }
    y0
}

/// Runs the SIMD-backend experiment: micro-times each vectorized kernel
/// under both backends, replays the measured speedups through `profile`'s
/// what-if curves (prediction), and measures the real batch saving by
/// running the super-DAG batch with `--dsp-backend scalar` vs `simd`
/// (scalar–simd–scalar, bracketing scalar runs averaged so monotone host
/// drift cancels to first order).
pub fn simd_experiment(
    items: &[arp_core::BatchItem],
    measured_config: &PipelineConfig,
    profile: &arp_trace::profile::Profile,
) -> Result<SimdExperiment, PipelineError> {
    use arp_dsp::backend::DspBackend;
    use arp_dsp::fir::{frequency_gain_with, BandPass, FirFilter};
    use arp_dsp::respspec::{response_spectrum_with, ResponseMethod};
    use arp_dsp::window::WindowKind;

    let dt = 0.01;
    let n = 4096usize;
    let x: Vec<f64> = (0..n)
        .map(|i| ((i * 13 % 101) as f64 - 50.0) * 0.1)
        .collect();
    let filt = FirFilter::band_pass(
        BandPass::new(1.0, 3.0, 20.0, 24.0).unwrap(),
        dt,
        WindowKind::Hamming,
    )?;
    let coeffs = filt.coeffs().to_vec();
    let periods: Vec<f64> = (1..=16).map(|i| 0.05 * i as f64).collect();
    let pair = |mut f: Box<dyn FnMut(DspBackend)>| -> (f64, f64) {
        (
            time_call(|| f(DspBackend::Scalar)),
            time_call(|| f(DspBackend::Simd)),
        )
    };
    let mut kernels = Vec::new();
    let mut push = |kernel: &'static str, elements: usize, (scalar_s, simd_s): (f64, f64)| {
        kernels.push(SimdKernelRow {
            kernel,
            elements,
            scalar_s,
            simd_s,
        });
    };
    push(
        "fir_convolve",
        n,
        pair(Box::new(|b| {
            std::hint::black_box(filt.apply_with(&x, b));
        })),
    );
    push(
        "fir_apply_fft",
        n,
        pair(Box::new(|b| {
            std::hint::black_box(filt.apply_fft_with(&x, b));
        })),
    );
    push(
        "frequency_gain",
        coeffs.len(),
        pair(Box::new(|b| {
            std::hint::black_box(frequency_gain_with(&coeffs, 7.3, dt, b));
        })),
    );
    push(
        "fft_radix2",
        n,
        pair(Box::new(|b| {
            std::hint::black_box(arp_dsp::fft::rfft_with(&x, b));
        })),
    );
    push(
        "respspec_nj",
        n * periods.len(),
        pair(Box::new(|b| {
            std::hint::black_box(
                response_spectrum_with(&x, dt, &periods, 0.05, ResponseMethod::NigamJennings, b)
                    .unwrap(),
            );
        })),
    );

    // Predicted batch saving: each profiled kernel's what-if curve,
    // interpolated at the measured micro speedup of the DSP kernel that
    // dominates it (#4/#13 filter → FFT-based FIR apply, #7 fourier →
    // rfft, #16 respspec → the Nigam–Jennings recurrence). Savings of
    // disjoint kernels add to first order on the replayed makespan.
    let speedup_of = |kernel: &str| {
        kernels
            .iter()
            .find(|k| k.kernel == kernel)
            .map_or(1.0, SimdKernelRow::speedup)
    };
    let predicted_saving = profile
        .what_if
        .iter()
        .map(|curve| {
            let measured = match curve.process {
                4 | 13 => speedup_of("fir_apply_fft"),
                7 => speedup_of("fft_radix2"),
                16 => speedup_of("respspec_nj"),
                _ => return 0.0,
            };
            interp_what_if_saving(curve, measured)
        })
        .sum();

    // Measured batch saving: the same super-DAG batch under each backend,
    // scalar runs bracketing the SIMD run.
    let work = scratch("batch-simd-w");
    let run = |backend: DspBackend| -> Result<f64, PipelineError> {
        if work.exists() {
            std::fs::remove_dir_all(&work).map_err(|e| PipelineError::io(&work, e))?;
        }
        let mut config = measured_config.clone();
        config.dsp_backend = backend;
        let report =
            arp_core::run_batch_dag(items, &work, &config, arp_core::ReadyOrder::CriticalPath)?;
        Ok(report.total.as_secs_f64())
    };
    let scalar_a = run(DspBackend::Scalar)?;
    let batch_simd_s = run(DspBackend::Simd)?;
    let scalar_b = run(DspBackend::Scalar)?;
    if work.exists() {
        std::fs::remove_dir_all(&work).map_err(|e| PipelineError::io(&work, e))?;
    }
    Ok(SimdExperiment {
        kernels,
        batch_scalar_s: (scalar_a + scalar_b) / 2.0,
        batch_simd_s,
        predicted_saving,
    })
}

/// Peak resident bytes-in-flight of the format layer while parsing every
/// station file of one event, measured two ways: the whole-file path
/// (`read_file` + `from_text`, the pre-streaming behaviour) and the
/// streaming path (`Scanner::open` with its bounded 64 KiB buffer). The
/// gap is what the streaming readers buy: residency stops scaling with
/// file size.
#[derive(Debug, Clone)]
pub struct ReaderPeak {
    /// Event the files belong to (the largest paper event).
    pub event: String,
    /// Data-point scale the files were synthesized at (floored at 0.05 so
    /// the largest station file exceeds the streaming buffer).
    pub scale: f64,
    /// Station files parsed.
    pub files: usize,
    /// Peak bytes-in-flight of the whole-file path.
    pub whole_bytes: u64,
    /// Peak bytes-in-flight of the streaming path.
    pub stream_bytes: u64,
}

impl ReaderPeak {
    /// Fractional residency reduction, `1 − stream/whole`.
    pub fn reduction(&self) -> f64 {
        if self.whole_bytes == 0 {
            return 0.0;
        }
        1.0 - self.stream_bytes as f64 / self.whole_bytes as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"event\": {}, \"scale\": {}, \"files\": {}, \"whole_bytes\": {}, \"stream_bytes\": {}, \"reduction\": {:.4}}}",
            json_str(&self.event),
            self.scale,
            self.files,
            self.whole_bytes,
            self.stream_bytes,
            self.reduction()
        )
    }
}

/// Measures [`ReaderPeak`] on the largest paper event. The requested scale
/// is floored at 0.05: below that every station file fits inside the
/// streaming buffer and both paths report the same residency.
pub fn reader_peak_experiment(scale: f64) -> Result<ReaderPeak, PipelineError> {
    use arp_formats::stats;
    let scale = scale.max(0.05);
    let index = PAPER_EVENT_SHAPES.len() - 1;
    let label = PAPER_EVENT_SHAPES[index].0;
    let event = paper_event(index, scale);
    let input_dir = stage_event_inputs(&event, "reader-peak")?;
    let mut files: Vec<PathBuf> = std::fs::read_dir(&input_dir)
        .map_err(|e| PipelineError::io(&input_dir, e))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "v1"))
        .collect();
    files.sort();

    // Whole-file path: the file's full text is resident for the parse.
    stats::reset_peak();
    for path in &files {
        let text = arp_formats::fsio::read_file(path)?;
        let _ = arp_formats::V1StationFile::from_text(&text)?;
    }
    let whole_bytes = stats::peak();

    // Streaming path: only the scanner's bounded buffer is resident.
    stats::reset_peak();
    for path in &files {
        let _ = arp_formats::V1StationFile::read(path)?;
    }
    let stream_bytes = stats::peak();

    std::fs::remove_dir_all(&input_dir).map_err(|e| PipelineError::io(&input_dir, e))?;
    Ok(ReaderPeak {
        event: label.to_string(),
        scale,
        files: files.len(),
        whole_bytes,
        stream_bytes,
    })
}

/// Percentile digest of one live-metrics histogram, in seconds. The
/// quantiles come from the log-linear buckets, so each carries the
/// registry's ≤1/16 relative bucketing error.
#[derive(Debug, Clone, Copy)]
pub struct HistDigest {
    /// Samples recorded.
    pub count: u64,
    /// Median, seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
}

impl HistDigest {
    /// Digests a snapshot; `None` when the histogram recorded nothing
    /// (empty distributions have no percentiles).
    pub fn from_snapshot(s: &arp_metrics::HistogramSnapshot) -> Option<HistDigest> {
        Some(HistDigest {
            count: s.count,
            p50_s: s.quantile(0.50)?,
            p95_s: s.quantile(0.95)?,
            p99_s: s.quantile(0.99)?,
        })
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\": {}, \"p50_s\": {:.6}, \"p95_s\": {:.6}, \"p99_s\": {:.6}}}",
            self.count, self.p50_s, self.p95_s, self.p99_s
        )
    }
}

impl BatchExperiment {
    /// Wall-time speedup of the super-DAG run over the per-event loop.
    pub fn measured_speedup(&self) -> f64 {
        if self.dag_report.total.is_zero() {
            return 0.0;
        }
        self.loop_report.total.as_secs_f64() / self.dag_report.total.as_secs_f64()
    }
}

/// Runs the batch experiment on the first `n_events` paper events at the
/// given scale (the recipe uses all six).
pub fn batch_experiment(
    scale: f64,
    config: &PipelineConfig,
    n_events: usize,
) -> Result<BatchExperiment, PipelineError> {
    let n_events = n_events.clamp(1, PAPER_EVENT_SHAPES.len());
    let root = scratch("batch-in");
    if root.exists() {
        std::fs::remove_dir_all(&root).map_err(|e| PipelineError::io(&root, e))?;
    }
    let mut items = Vec::with_capacity(n_events);
    for (i, &(label, _, _, _)) in PAPER_EVENT_SHAPES.iter().take(n_events).enumerate() {
        let dir = root.join(label);
        std::fs::create_dir_all(&dir).map_err(|e| PipelineError::io(&dir, e))?;
        write_event_inputs(&paper_event(i, scale), &dir)?;
        items.push(arp_core::BatchItem {
            label: label.to_string(),
            input_dir: dir,
        });
    }
    let loop_work = scratch("batch-loop-w");
    let dag_work = scratch("batch-dag-w");
    let health_work = scratch("batch-health-w");
    for w in [&loop_work, &dag_work, &health_work] {
        if w.exists() {
            std::fs::remove_dir_all(w).map_err(|e| PipelineError::io(w, e))?;
        }
    }
    let loop_report = arp_core::run_batch(&items, &loop_work, config, ImplKind::DagParallel)?;
    // The scheduler-health columns (per-worker utilization, queue-wait and
    // execute-time percentiles) must come from a run on the *real* worker
    // pool: a simulated-timing run executes every node sequentially on the
    // caller thread, so tracing it would collapse all spans onto one
    // "main" lane (with busy time exceeding the virtual makespan) and
    // leave the pool's histograms empty. When the requested config is
    // already measured, a single instrumented run serves both purposes;
    // when it is simulated, the virtual-makespan run happens first,
    // uninstrumented, and a measured health pass follows.
    use arp_core::config::TimingModel;
    let measured = matches!(config.timing, TimingModel::Measured);
    let sim_result = (!measured).then(|| {
        arp_core::run_batch_dag(
            &items,
            &dag_work,
            config,
            arp_core::ReadyOrder::CriticalPath,
        )
    });
    // Both collectors stay within the <1% budget (see
    // `trace_overhead_experiment`). The registry is reset first so the
    // digests cover the health run alone.
    let metrics_before = arp_metrics::enabled();
    arp_metrics::reset();
    arp_metrics::set_enabled(true);
    let session = arp_trace::TraceSession::start();
    let health_result = if measured {
        arp_core::run_batch_dag(
            &items,
            &dag_work,
            config,
            arp_core::ReadyOrder::CriticalPath,
        )
    } else {
        let mut health_config = config.clone();
        health_config.timing = TimingModel::Measured;
        arp_core::run_batch_dag(
            &items,
            &health_work,
            &health_config,
            arp_core::ReadyOrder::CriticalPath,
        )
    };
    let health_trace = session.finish();
    let trace = health_trace.summary();
    arp_metrics::set_enabled(metrics_before);
    let queue_wait = HistDigest::from_snapshot(&arp_par::metrics::queue_wait().snapshot());
    let execute = HistDigest::from_snapshot(&arp_par::metrics::execute_time().snapshot());
    // Fold the same health trace into the attribution profile: per-kernel
    // self-time, realized critical path, and what-if curves replayed on
    // the pool's real worker topology.
    let pool = arp_par::ThreadPool::global();
    let profile = arp_core::profile_trace_what_if(
        &health_trace,
        pool.threads(),
        pool.io_threads(),
        arp_core::WHAT_IF_TOP_K,
        &arp_core::WHAT_IF_SPEEDUPS,
    )
    .map_err(arp_core::PipelineError::Config)?;
    let dag_report = match sim_result {
        Some(sim) => {
            health_result?;
            sim?
        }
        None => health_result?,
    };
    // Diagnostics budget check: the measured super-DAG run with the
    // structured-log ring armed (what `--diag on` enables), sandwiched
    // between two uninstrumented twins (A-B-A) so monotone host drift and
    // warm-up cancel to first order in the plain average. Three sandwiches,
    // median ratio: a single transient stall on a shared CI host can swing
    // one ratio by tens of percent either way.
    let diag_work = scratch("batch-diag-w");
    let mut measured_config = config.clone();
    measured_config.timing = TimingModel::Measured;
    let mut ratios = Vec::with_capacity(3);
    for _ in 0..3 {
        let mut totals = [0.0f64; 3];
        for (slot, diag_on) in [(0, false), (1, true), (2, false)] {
            if diag_work.exists() {
                std::fs::remove_dir_all(&diag_work)
                    .map_err(|e| PipelineError::io(&diag_work, e))?;
            }
            arp_diag::set_ring_enabled(diag_on);
            let result = arp_core::run_batch_dag(
                &items,
                &diag_work,
                &measured_config,
                arp_core::ReadyOrder::CriticalPath,
            );
            arp_diag::set_ring_enabled(false);
            totals[slot] = result?.total.as_secs_f64();
        }
        let plain_mean = (totals[0] + totals[2]) / 2.0;
        ratios.push(if plain_mean <= 0.0 {
            0.0
        } else {
            totals[1] / plain_mean - 1.0
        });
    }
    let diag_overhead = median(&ratios);
    // The SIMD-backend comparison reuses the staged inputs and the profile's
    // what-if curves, so it runs before the input root is torn down.
    let simd = simd_experiment(&items, &measured_config, &profile)?;
    for dir in [&root, &loop_work, &dag_work, &health_work, &diag_work] {
        if dir.exists() {
            std::fs::remove_dir_all(dir).map_err(|e| PipelineError::io(dir, e))?;
        }
    }
    let reader_peak = reader_peak_experiment(scale)?;
    Ok(BatchExperiment {
        scale,
        loop_report,
        dag_report,
        trace,
        queue_wait,
        execute,
        diag_overhead,
        profile,
        reader_peak,
        simd,
    })
}

/// Instrumentation-overhead measurement: the same cross-event super-DAG
/// batch run `reps` times in each of four modes — uninstrumented, inside
/// a trace session, with live metrics collection on, and with the
/// diagnostics ring armed — as `reps` back-to-back quadruples. The
/// acceptance budget is ≤1% per collector at scale 0.05.
#[derive(Debug)]
pub struct TraceOverhead {
    /// Data-point scale of the staged events.
    pub scale: f64,
    /// Repetitions per mode.
    pub reps: usize,
    /// Best untraced wall time, seconds.
    pub untraced_s: f64,
    /// Best traced wall time, seconds.
    pub traced_s: f64,
    /// Best metrics-enabled wall time, seconds.
    pub metrics_s: f64,
    /// Best diagnostics-armed wall time, seconds.
    pub diag_s: f64,
    /// Per-quadruple relative overhead `traced/untraced − 1`, one entry per rep.
    pub pair_overheads: Vec<f64>,
    /// Per-quadruple relative overhead `metrics/untraced − 1`, one entry per rep.
    pub metrics_overheads: Vec<f64>,
    /// Per-quadruple relative overhead `diag/untraced − 1`, one entry per rep.
    pub diag_overheads: Vec<f64>,
    /// Spans the traced runs recorded (per run).
    pub spans: usize,
}

impl TraceOverhead {
    /// Relative overhead of the best times, `traced/untraced − 1`
    /// (negative = within noise).
    pub fn overhead_fraction(&self) -> f64 {
        if self.untraced_s <= 0.0 {
            return 0.0;
        }
        self.traced_s / self.untraced_s - 1.0
    }

    /// Median of the per-quadruple tracing overheads — the headline number.
    /// The modes of each quadruple run back to back (order rotating between
    /// quadruples), so slow drift of the host cancels inside a quadruple
    /// instead of biasing one mode, and the median discards quadruples hit
    /// by interference.
    pub fn median_overhead(&self) -> f64 {
        median(&self.pair_overheads)
    }

    /// Median of the per-quadruple metrics overheads (same discipline).
    pub fn median_metrics_overhead(&self) -> f64 {
        median(&self.metrics_overheads)
    }

    /// Median of the per-quadruple diagnostics overheads (same discipline).
    pub fn median_diag_overhead(&self) -> f64 {
        median(&self.diag_overheads)
    }

    /// Relative overhead of the best metrics-enabled time,
    /// `metrics/untraced − 1`.
    pub fn metrics_overhead_fraction(&self) -> f64 {
        if self.untraced_s <= 0.0 {
            return 0.0;
        }
        self.metrics_s / self.untraced_s - 1.0
    }

    /// Relative overhead of the best diagnostics-armed time,
    /// `diag/untraced − 1`.
    pub fn diag_overhead_fraction(&self) -> f64 {
        if self.untraced_s <= 0.0 {
            return 0.0;
        }
        self.diag_s / self.untraced_s - 1.0
    }
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Runs the instrumentation-overhead experiment on the six paper events:
/// `reps` back-to-back untraced/traced/metrics/diag quadruples of the
/// super-DAG batch run, the order within each quadruple rotating so
/// warm-up bias cancels. Reports the best wall time per mode and the
/// per-quadruple overhead ratios (see [`TraceOverhead::median_overhead`],
/// [`TraceOverhead::median_metrics_overhead`], and
/// [`TraceOverhead::median_diag_overhead`]).
pub fn trace_overhead_experiment(
    scale: f64,
    config: &PipelineConfig,
    reps: usize,
) -> Result<TraceOverhead, PipelineError> {
    let reps = reps.max(1);
    let root = scratch("trace-ovh-in");
    if root.exists() {
        std::fs::remove_dir_all(&root).map_err(|e| PipelineError::io(&root, e))?;
    }
    let mut items = Vec::new();
    for (i, &(label, _, _, _)) in PAPER_EVENT_SHAPES.iter().enumerate() {
        let dir = root.join(label);
        std::fs::create_dir_all(&dir).map_err(|e| PipelineError::io(&dir, e))?;
        write_event_inputs(&paper_event(i, scale), &dir)?;
        items.push(arp_core::BatchItem {
            label: label.to_string(),
            input_dir: dir,
        });
    }
    let work = scratch("trace-ovh-w");
    // Modes: 0 uninstrumented, 1 trace session, 2 live metrics, 3 the
    // diagnostics ring (structured logging armed, as `--diag on` does).
    let run = |mode: usize| -> Result<(f64, usize), PipelineError> {
        if work.exists() {
            std::fs::remove_dir_all(&work).map_err(|e| PipelineError::io(&work, e))?;
        }
        let session = (mode == 1).then(arp_trace::TraceSession::start);
        if mode == 2 {
            arp_metrics::set_enabled(true);
        }
        if mode == 3 {
            arp_diag::set_ring_enabled(true);
        }
        let result =
            arp_core::run_batch_dag(&items, &work, config, arp_core::ReadyOrder::CriticalPath);
        if mode == 2 {
            arp_metrics::set_enabled(false);
        }
        if mode == 3 {
            arp_diag::set_ring_enabled(false);
        }
        let spans = session.map_or(0, |s| s.finish().spans.len());
        Ok((result?.total.as_secs_f64(), spans))
    };
    let mut untraced_s = f64::INFINITY;
    let mut traced_s = f64::INFINITY;
    let mut metrics_s = f64::INFINITY;
    let mut diag_s = f64::INFINITY;
    let mut pair_overheads = Vec::with_capacity(reps);
    let mut metrics_overheads = Vec::with_capacity(reps);
    let mut diag_overheads = Vec::with_capacity(reps);
    let mut spans = 0;
    const ORDERS: [[usize; 4]; 4] = [[0, 1, 2, 3], [1, 2, 3, 0], [2, 3, 0, 1], [3, 0, 1, 2]];
    for rep in 0..reps {
        // Rotate mode order between quadruples so warm-up bias cancels.
        let mut t = [0.0f64; 4];
        for &mode in &ORDERS[rep % ORDERS.len()] {
            let (secs, n) = run(mode)?;
            t[mode] = secs;
            if mode == 1 {
                spans = n;
            }
        }
        untraced_s = untraced_s.min(t[0]);
        traced_s = traced_s.min(t[1]);
        metrics_s = metrics_s.min(t[2]);
        diag_s = diag_s.min(t[3]);
        if t[0] > 0.0 {
            pair_overheads.push(t[1] / t[0] - 1.0);
            metrics_overheads.push(t[2] / t[0] - 1.0);
            diag_overheads.push(t[3] / t[0] - 1.0);
        }
    }
    for dir in [&root, &work] {
        if dir.exists() {
            std::fs::remove_dir_all(dir).map_err(|e| PipelineError::io(dir, e))?;
        }
    }
    Ok(TraceOverhead {
        scale,
        reps,
        untraced_s,
        traced_s,
        metrics_s,
        diag_s,
        pair_overheads,
        metrics_overheads,
        diag_overheads,
        spans,
    })
}

/// Formats the overhead experiment for the terminal and EXPERIMENTS.md.
pub fn format_trace_overhead(t: &TraceOverhead) -> String {
    format!(
        "instrumentation overhead at scale {} ({} quadrupled reps, {} spans/run):\n  \
         tracing: median overhead {:+.2}%   \
         best-of: untraced {:.3}s  traced {:.3}s  ({:+.2}%)\n  \
         metrics: median overhead {:+.2}%   \
         best-of: untraced {:.3}s  metrics {:.3}s  ({:+.2}%)\n  \
         diag:    median overhead {:+.2}%   \
         best-of: untraced {:.3}s  diag {:.3}s  ({:+.2}%)\n",
        t.scale,
        t.reps,
        t.spans,
        t.median_overhead() * 100.0,
        t.untraced_s,
        t.traced_s,
        t.overhead_fraction() * 100.0,
        t.median_metrics_overhead() * 100.0,
        t.untraced_s,
        t.metrics_s,
        t.metrics_overhead_fraction() * 100.0,
        t.median_diag_overhead() * 100.0,
        t.untraced_s,
        t.diag_s,
        t.diag_overhead_fraction() * 100.0
    )
}

/// Formats the batch experiment: per-event comparison rows, then the
/// super-DAG speedup decomposition.
pub fn format_batch_experiment(b: &BatchExperiment) -> String {
    let mut out = format!(
        "Batch experiment, {} events at scale {} (per-event DAG loop vs cross-event super-DAG):\n\
         {:<12} {:>8} {:>10} {:>12} {:>12}\n",
        b.loop_report.events.len(),
        b.scale,
        "Event",
        "V1 Files",
        "Points",
        "Loop (s)",
        "Alone (s)"
    );
    let makespans = b
        .dag_report
        .dag
        .as_ref()
        .map(|d| d.event_makespans.as_slice())
        .unwrap_or(&[]);
    for (i, r) in b.loop_report.events.iter().enumerate() {
        out.push_str(&format!(
            "{:<12} {:>8} {:>10} {:>12.3} {:>12.3}\n",
            r.event,
            r.v1_files,
            r.data_points,
            r.total.as_secs_f64(),
            makespans.get(i).map_or(0.0, |d| d.as_secs_f64()),
        ));
    }
    out.push_str(&format!(
        "per-event loop total {:>10.3}s\nsuper-DAG total      {:>10.3}s  ({:.2}x)\n",
        b.loop_report.total.as_secs_f64(),
        b.dag_report.total.as_secs_f64(),
        b.measured_speedup(),
    ));
    if let Some(dag) = &b.dag_report.dag {
        out.push_str(&dag.to_table());
    }
    out.push_str(&b.trace.render());
    for (name, d) in [("queue-wait", &b.queue_wait), ("execute", &b.execute)] {
        if let Some(d) = d {
            out.push_str(&format!(
                "metrics {name:<10} {:>6} samples  p50 {:>9.1} us  p95 {:>9.1} us  p99 {:>9.1} us\n",
                d.count,
                d.p50_s * 1e6,
                d.p95_s * 1e6,
                d.p99_s * 1e6
            ));
        }
    }
    let p = &b.profile;
    out.push_str(&format!(
        "profile: Σ self {:.3}s vs Σ worker busy {:.3}s (gap {:.2}%), \
         realized critical path {:.3}s\n",
        p.self_total_ns as f64 / 1e9,
        p.worker_busy_ns as f64 / 1e9,
        p.accounting_error() * 100.0,
        p.cp_ns as f64 / 1e9,
    ));
    let composition: Vec<String> = p
        .kernels
        .iter()
        .filter(|k| k.cp_ns > 0)
        .map(|k| format!("#{:02} {} {:.1}%", k.process, k.name, k.cp_share * 100.0))
        .collect();
    out.push_str(&format!(
        "critical-path composition: {}\n",
        composition.join(" | ")
    ));
    for c in &p.what_if {
        let points: Vec<String> = c
            .points
            .iter()
            .map(|pt| format!("{}x → {:+.1}%", pt.speedup, -pt.saving * 100.0))
            .collect();
        out.push_str(&format!(
            "what-if #{:02} {}: {}\n",
            c.process,
            c.name,
            points.join(", ")
        ));
    }
    let rp = &b.reader_peak;
    out.push_str(&format!(
        "reader peak bytes-in-flight, event {} at scale {} ({} files): \
         whole-file {} B vs streaming {} B ({:.0}% lower)\n",
        rp.event,
        rp.scale,
        rp.files,
        rp.whole_bytes,
        rp.stream_bytes,
        rp.reduction() * 100.0
    ));
    out.push_str("simd backend (scalar vs 4-lane kernels, bitwise-identical output):\n");
    for k in &b.simd.kernels {
        out.push_str(&format!(
            "  {:<16} {:>8} elems  scalar {:>10.1} us  simd {:>10.1} us  ({:.2}x)\n",
            k.kernel,
            k.elements,
            k.scalar_s * 1e6,
            k.simd_s * 1e6,
            k.speedup()
        ));
    }
    out.push_str(&format!(
        "  batch: scalar {:.3}s vs simd {:.3}s — measured saving {:+.1}% \
         (what-if curves predicted {:+.1}%)\n",
        b.simd.batch_scalar_s,
        b.simd.batch_simd_s,
        b.simd.measured_saving() * 100.0,
        b.simd.predicted_saving * 100.0
    ));
    out
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Emits the batch experiment as JSON (hand-rolled; the workspace vendors
/// no JSON serializer).
pub fn batch_json(b: &BatchExperiment) -> String {
    let dag = b.dag_report.dag.as_ref();
    let makespans = dag.map(|d| d.event_makespans.as_slice()).unwrap_or(&[]);
    let mut events = String::new();
    for (i, r) in b.loop_report.events.iter().enumerate() {
        if i > 0 {
            events.push_str(",\n");
        }
        events.push_str(&format!(
            "    {{\"label\": {}, \"v1_files\": {}, \"data_points\": {}, \"loop_s\": {:.6}, \"alone_makespan_s\": {:.6}}}",
            json_str(&r.event),
            r.v1_files,
            r.data_points,
            r.total.as_secs_f64(),
            makespans.get(i).map_or(0.0, |d| d.as_secs_f64()),
        ));
    }
    let mut lanes = String::new();
    for (i, lane) in b.trace.lanes.iter().enumerate() {
        if i > 0 {
            lanes.push_str(",\n");
        }
        lanes.push_str(&format!(
            "    {{\"worker\": {}, \"spans\": {}, \"busy_s\": {:.6}, \"utilization\": {:.4}}}",
            json_str(&lane.name),
            lane.spans,
            lane.busy.as_secs_f64(),
            lane.utilization,
        ));
    }
    let digest = |d: &Option<HistDigest>| d.as_ref().map_or("null".to_string(), HistDigest::json);
    let p = &b.profile;
    let s = |ns: u64| ns as f64 / 1e9;
    let cp: Vec<String> = p
        .kernels
        .iter()
        .filter(|k| k.cp_ns > 0)
        .map(|k| {
            format!(
                "      {{\"process\": {}, \"kernel\": {}, \"cp_s\": {:.6}, \"cp_share\": {:.4}}}",
                k.process,
                json_str(&k.name),
                s(k.cp_ns),
                k.cp_share
            )
        })
        .collect();
    let what_if: Vec<String> = p
        .what_if
        .iter()
        .map(|c| {
            let points: Vec<String> = c
                .points
                .iter()
                .map(|pt| {
                    format!(
                        "{{\"speedup\": {}, \"predicted_s\": {:.6}, \"saving\": {:.4}}}",
                        pt.speedup,
                        s(pt.predicted_ns),
                        pt.saving
                    )
                })
                .collect();
            format!(
                "      {{\"process\": {}, \"kernel\": {}, \"points\": [{}]}}",
                c.process,
                json_str(&c.name),
                points.join(", ")
            )
        })
        .collect();
    let profile = format!(
        "{{\n    \"self_total_s\": {:.6},\n    \"worker_busy_s\": {:.6},\n    \
         \"accounting_error\": {:.6},\n    \"cp_s\": {:.6},\n    \"replay_base_s\": {:.6},\n    \
         \"critical_path\": [\n{}\n    ],\n    \"what_if\": [\n{}\n    ]\n  }}",
        s(p.self_total_ns),
        s(p.worker_busy_ns),
        p.accounting_error(),
        s(p.cp_ns),
        s(p.replay_base_ns),
        cp.join(",\n"),
        what_if.join(",\n"),
    );
    format!(
        "{{\n  \"scale\": {},\n  \"threads\": {},\n  \"order\": {},\n  \"events\": [\n{}\n  ],\n  \
         \"per_event_loop_s\": {:.6},\n  \"super_dag_s\": {:.6},\n  \"measured_speedup\": {:.4},\n  \
         \"node_total_s\": {:.6},\n  \"sequential_baseline_s\": {:.6},\n  \"batch_makespan_s\": {:.6},\n  \
         \"io_threads\": {},\n  \"lane_off_makespan_s\": {:.6},\n  \"lane_on_makespan_s\": {:.6},\n  \
         \"lane_saving_s\": {:.6},\n  \
         \"cross_event_overlap_s\": {:.6},\n  \"overlap_speedup\": {:.4},\n  \"batch_speedup\": {:.4},\n  \
         \"trace_spans\": {},\n  \"mean_utilization\": {:.4},\n  \"queue_wait_us\": \
         {{\"mean\": {:.3}, \"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}},\n  \
         \"metrics\": {{\"queue_wait\": {}, \"execute\": {}}},\n  \
         \"diag_overhead\": {:.6},\n  \
         \"profile\": {},\n  \
         \"reader_peak\": {},\n  \
         \"simd\": {},\n  \
         \"workers\": [\n{}\n  ]\n}}\n",
        b.scale,
        dag.map_or(0, |d| d.threads),
        json_str(dag.map_or("", |d| d.order.label())),
        events,
        b.loop_report.total.as_secs_f64(),
        b.dag_report.total.as_secs_f64(),
        b.measured_speedup(),
        dag.map_or(0.0, |d| d.node_total.as_secs_f64()),
        dag.map_or(0.0, |d| d.sequential_baseline().as_secs_f64()),
        dag.map_or(0.0, |d| d.batch_makespan.as_secs_f64()),
        dag.map_or(0, |d| d.io_threads),
        dag.map_or(0.0, |d| d.batch_makespan.as_secs_f64()),
        dag.map_or(0.0, |d| d.lane_makespan.as_secs_f64()),
        dag.map_or(0.0, |d| d.lane_saving().as_secs_f64()),
        dag.map_or(0.0, |d| d.cross_event_overlap().as_secs_f64()),
        dag.map_or(0.0, |d| d.overlap_speedup()),
        dag.map_or(0.0, |d| d.batch_speedup()),
        b.trace.spans,
        b.trace.mean_utilization(),
        b.trace.queue_wait_mean_us,
        b.trace.queue_wait_p50_us,
        b.trace.queue_wait_p90_us,
        b.trace.queue_wait_p99_us,
        b.trace.queue_wait_max_us,
        digest(&b.queue_wait),
        digest(&b.execute),
        b.diag_overhead,
        profile,
        b.reader_peak.json(),
        b.simd.json(),
        lanes,
    )
}

/// One metric compared by [`compare_batch_json`]. `regression` is signed
/// so that positive always means *worse* (slower makespan, lower
/// utilization, lower speedup), whatever the metric's polarity.
#[derive(Debug)]
pub struct CompareRow {
    /// JSON key the row was read from.
    pub metric: &'static str,
    /// Value in the baseline file.
    pub old: f64,
    /// Value in the candidate file.
    pub new: f64,
    /// Relative regression (positive = worse).
    pub regression: f64,
    /// Whether the regression exceeds the gate's tolerance.
    pub failed: bool,
}

/// Outcome of the bench regression gate (see [`compare_batch_json`]).
#[derive(Debug)]
pub struct CompareReport {
    /// Per-metric comparison rows.
    pub rows: Vec<CompareRow>,
    /// Tolerance the gate ran with (fraction, e.g. `0.10`).
    pub tolerance: f64,
    /// Whether absolute-seconds metrics were skipped.
    pub relative_only: bool,
}

impl CompareReport {
    /// True when any gated metric regressed beyond tolerance.
    pub fn failed(&self) -> bool {
        self.rows.iter().any(|r| r.failed)
    }

    /// Renders the comparison table with a PASS/FAIL verdict per row.
    pub fn render(&self) -> String {
        let mut out = format!(
            "bench regression gate (tolerance {:.0}%{}):\n{:<20} {:>12} {:>12} {:>9}  verdict\n",
            self.tolerance * 100.0,
            if self.relative_only {
                ", relative metrics only"
            } else {
                ""
            },
            "metric",
            "baseline",
            "candidate",
            "change"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<20} {:>12.4} {:>12.4} {:>+8.1}%  {}\n",
                r.metric,
                r.old,
                r.new,
                r.regression * 100.0,
                if r.failed { "FAIL" } else { "ok" }
            ));
        }
        out
    }
}

/// The bench regression gate: compares two `BENCH_batch.json` files
/// (baseline vs candidate) and fails any metric that regressed by more
/// than `tolerance`.
///
/// Gated metrics: `super_dag_s` (the batch makespan — lower is better),
/// `mean_utilization` and `measured_speedup` (higher is better), and
/// `lane_saving_s` (sign-gated: a baseline that showed the I/O lane as a
/// net win must not degrade to a net loss). `relative_only` keeps only
/// the machine-stable metrics (utilization and the lane sign): absolute
/// seconds are machine-dependent, and the measured speedup swings with
/// host noise at small scales, so cross-machine gates (CI comparing
/// against a checked-in baseline) should not fail on either.
///
/// `diag_overhead` is gated against the *budget*, not the baseline: the
/// candidate's diagnostics cost must stay within ≤1% (plus the gate's
/// tolerance as noise headroom — bench-scale runs are jittery). The row
/// is skipped when the candidate predates the field, so older baselines
/// still compare. Relative by construction, so it survives
/// `relative_only`.
///
/// `profile.accounting_error` is likewise gated against an absolute bound
/// (Σ per-kernel self-time must equal Σ per-worker busy time to within
/// 0.1%): the profile fold is exact by construction, so any gap means the
/// attribution layer lost or double-counted work. Skipped when the
/// candidate predates the profile block.
///
/// An explicitly `null` digest under `"metrics"` (in either file) is an
/// error, not a silent pass: it means the instrumented scheduler-health
/// run recorded nothing, so the file cannot vouch for the scheduler at
/// all. Key and digest failures print the baseline and candidate values
/// side by side.
pub fn compare_batch_json(
    old: &str,
    new: &str,
    tolerance: f64,
    relative_only: bool,
) -> Result<CompareReport, String> {
    let old = arp_trace::json::parse(old).map_err(|e| format!("baseline: {e}"))?;
    let new = arp_trace::json::parse(new).map_err(|e| format!("candidate: {e}"))?;
    // Failure messages quote BOTH files' values side by side, so a broken
    // gate run names what each file actually holds instead of making the
    // operator diff two JSON documents by hand.
    let brief = |v: Option<&arp_trace::json::Value>| -> String {
        use arp_trace::json::Value;
        match v {
            None => "absent".into(),
            Some(Value::Null) => "null".into(),
            Some(Value::Bool(b)) => b.to_string(),
            Some(Value::Num(x)) => format!("{x}"),
            Some(Value::Str(s)) => format!("{s:?}"),
            Some(Value::Arr(_)) => "[…]".into(),
            Some(Value::Obj(_)) => "{…}".into(),
        }
    };
    let digest_of = |file: &arp_trace::json::Value, key: &str| -> String {
        brief(file.get("metrics").and_then(|m| m.get(key)))
    };
    for (which, file) in [("baseline", &old), ("candidate", &new)] {
        if let Some(metrics) = file.get("metrics") {
            for key in ["queue_wait", "execute"] {
                if metrics.get(key) == Some(&arp_trace::json::Value::Null) {
                    return Err(format!(
                        "{which}: metrics.{key} is null — the instrumented run recorded no \
                         samples (baseline: {}, candidate: {}); regenerate the file with \
                         `report -- batch`",
                        digest_of(&old, key),
                        digest_of(&new, key),
                    ));
                }
            }
        }
    }
    let pair = |key: &'static str| -> Result<(f64, f64), String> {
        let get = |v: &arp_trace::json::Value| v.get(key).and_then(|x| x.as_f64());
        match (get(&old), get(&new)) {
            (Some(o), Some(n)) => Ok((o, n)),
            _ => Err(format!(
                "missing numeric field {key:?} — baseline: {}, candidate: {}",
                brief(old.get(key)),
                brief(new.get(key)),
            )),
        }
    };
    // (key, lower_is_better, machine-dependent)
    const GATES: [(&str, bool, bool); 3] = [
        ("super_dag_s", true, true),
        ("mean_utilization", false, false),
        ("measured_speedup", false, true),
    ];
    let mut rows = Vec::new();
    for (metric, lower_is_better, machine_dependent) in GATES {
        if relative_only && machine_dependent {
            continue;
        }
        let (o, n) = pair(metric)?;
        let regression = if o.abs() < 1e-12 {
            0.0
        } else if lower_is_better {
            n / o - 1.0
        } else {
            1.0 - n / o
        };
        rows.push(CompareRow {
            metric,
            old: o,
            new: n,
            regression,
            failed: regression > tolerance,
        });
    }
    // The lane gate is a sign test, not a ratio: the saving's magnitude is
    // host noise at bench scales, but its sign is the whole point of the
    // I/O lane. Machine-independent, so it survives `relative_only`.
    let (o, n) = pair("lane_saving_s")?;
    let failed = o > 0.0 && n <= 0.0;
    rows.push(CompareRow {
        metric: "lane_saving_s",
        old: o,
        new: n,
        regression: if failed { 1.0 } else { 0.0 },
        failed,
    });
    // The diagnostics gate is an absolute budget (≤1% + tolerance as
    // noise headroom), compared against the candidate only; skipped when
    // the candidate file predates the field.
    if let Some(n) = new.get("diag_overhead").and_then(|x| x.as_f64()) {
        let o = old
            .get("diag_overhead")
            .and_then(|x| x.as_f64())
            .unwrap_or(0.0);
        rows.push(CompareRow {
            metric: "diag_overhead",
            old: o,
            new: n,
            regression: n,
            failed: n > 0.01 + tolerance,
        });
    }
    // The accounting-identity gate: the candidate's profile must attribute
    // every recorded nanosecond — Σ per-kernel self-time ≡ Σ per-worker
    // busy time. The exclusive fold makes the identity exact by
    // construction, so the bound only absorbs the JSON fields' decimal
    // rounding; any real gap means the fold lost or double-counted work.
    // Absolute and machine-independent, so it survives `relative_only`;
    // skipped when the candidate predates the profile block.
    if let Some(n) = new
        .get("profile")
        .and_then(|p| p.get("accounting_error"))
        .and_then(|x| x.as_f64())
    {
        let o = old
            .get("profile")
            .and_then(|p| p.get("accounting_error"))
            .and_then(|x| x.as_f64())
            .unwrap_or(0.0);
        rows.push(CompareRow {
            metric: "accounting_error",
            old: o,
            new: n,
            regression: n,
            failed: n > 1e-3,
        });
    }
    // The SIMD gate holds the backend's headline: the best per-kernel
    // scalar-to-SIMD speedup. It fails when the candidate's SIMD kernels
    // stop beating scalar outright (best ≤ 1, an absolute sign-style
    // bound) or when the speedup collapses vs the baseline beyond
    // tolerance. A same-host throughput ratio, so it survives
    // `relative_only`; skipped when the candidate predates the block.
    if let Some(n) = new
        .get("simd")
        .and_then(|s| s.get("best_kernel_speedup"))
        .and_then(|x| x.as_f64())
    {
        let o = old
            .get("simd")
            .and_then(|s| s.get("best_kernel_speedup"))
            .and_then(|x| x.as_f64())
            .unwrap_or(n);
        let regression = if o.abs() < 1e-12 { 0.0 } else { 1.0 - n / o };
        rows.push(CompareRow {
            metric: "simd_best_speedup",
            old: o,
            new: n,
            regression,
            failed: n <= 1.0 || regression > tolerance,
        });
    }
    Ok(CompareReport {
        rows,
        tolerance,
        relative_only,
    })
}

/// Thread-count sweep: overall speedup of the fully parallelized pipeline
/// at each virtual processor count (the Amdahl curve the paper's Fig. 13
/// gestures at). Returns `(threads, speedup)` pairs.
pub fn thread_sweep(
    event_index: usize,
    scale: f64,
    base_config: &PipelineConfig,
    thread_counts: &[usize],
) -> Result<Vec<(usize, f64)>, PipelineError> {
    use arp_core::config::TimingModel;
    let label = PAPER_EVENT_SHAPES[event_index].0;
    let event = paper_event(event_index, scale);
    let input_dir = stage_event_inputs(&event, &format!("sweep-{label}"))?;

    let mut seq_config = base_config.clone();
    seq_config.timing = TimingModel::Simulated { threads: 1 };
    let baseline = run_once(&input_dir, &seq_config, ImplKind::SequentialOriginal, label)?;
    let base_secs = baseline.total.as_secs_f64();

    let mut results = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        let mut config = base_config.clone();
        config.timing = TimingModel::Simulated { threads };
        let report = run_once(&input_dir, &config, ImplKind::FullyParallel, label)?;
        results.push((threads, base_secs / report.total.as_secs_f64().max(1e-12)));
    }
    std::fs::remove_dir_all(&input_dir).map_err(|e| PipelineError::io(&input_dir, e))?;
    Ok(results)
}

/// Formats a thread sweep as CSV.
pub fn sweep_csv(rows: &[(usize, f64)]) -> String {
    let mut out = String::from("threads,speedup\n");
    for (t, s) in rows {
        out.push_str(&format!("{t},{s:.4}\n"));
    }
    out
}

/// Amdahl check: estimates the serial fraction from the Fig. 11 data and
/// returns `(serial_fraction, predicted_speedup)` for `threads` processors.
pub fn amdahl_prediction(f: &Fig11, threads: usize) -> (f64, f64) {
    let seq_total: f64 = f.sequential.iter().map(|s| s.elapsed.as_secs_f64()).sum();
    let par_total: f64 = f.parallel.iter().map(|s| s.elapsed.as_secs_f64()).sum();
    if seq_total <= 0.0 || threads <= 1 {
        return (1.0, 1.0);
    }
    let speedup = seq_total / par_total.max(1e-12);
    let p = threads as f64;
    // Solve Amdahl for the serial fraction s: speedup = 1 / (s + (1-s)/p).
    let s = ((1.0 / speedup) - 1.0 / p) / (1.0 - 1.0 / p);
    let s = s.clamp(0.0, 1.0);
    let predicted = 1.0 / (s + (1.0 - s) / p);
    (s, predicted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> PipelineConfig {
        PipelineConfig::fast()
    }

    #[test]
    fn run_event_all_impls_produces_five_reports() {
        let event = paper_event(0, 0.002);
        let run = run_event_all_impls(&event, &tiny_config(), "tiny").unwrap();
        assert_eq!(run.reports.len(), 5);
        assert_eq!(run.v1_files, 5);
        assert!(run.data_points > 0);
        assert!(run.speedup() > 0.0);
        assert!(run.dag_speedup() > 0.0);
        assert!(run.throughput() > 0.0);
        let text = format_table1(std::slice::from_ref(&run));
        assert!(text.contains("tiny"));
        assert!(text.contains("DAG.Par."));
        let csv = table1_csv(std::slice::from_ref(&run));
        assert!(csv.lines().count() == 2);
        assert!(csv.starts_with("event,") && csv.contains("dag_par_s"));
        let decomp = format_dag_decomposition(std::slice::from_ref(&run));
        assert!(decomp.contains("critical path"));
        assert!(decomp.contains("->"), "{decomp}");
    }

    #[test]
    fn fig11_produces_eleven_stage_rows() {
        let f = fig11(0, 0.002, &tiny_config()).unwrap();
        assert_eq!(f.sequential.len(), 11);
        assert_eq!(f.parallel.len(), 11);
        let rows = f.speedups();
        assert_eq!(rows.len(), 11);
        let frac: f64 = StageId::ALL.iter().map(|&s| f.sequential_fraction(s)).sum();
        assert!((frac - 1.0).abs() < 1e-9);
        let text = format_fig11(&f);
        assert!(text.contains("IX"));
    }

    #[test]
    fn figure_emitters_produce_svg() {
        let event = paper_event(0, 0.002);
        let run = run_event_all_impls(&event, &tiny_config(), "svg").unwrap();
        let rows = vec![run];
        assert!(fig12_svg(&rows).starts_with("<svg"));
        assert!(fig13_svg(&rows).starts_with("<svg"));
        assert!(fig13_csv(&rows).contains("data_points"));
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let rows: Vec<(usize, f64)> = (1..10)
            .map(|k| (k * 100, 0.5 + 0.002 * (k * 100) as f64))
            .collect();
        let (a, b, r2) = linear_fit(&rows);
        assert!((a - 0.5).abs() < 1e-9);
        assert!((b - 0.002).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
        // Degenerate inputs don't panic.
        assert_eq!(linear_fit(&[]), (0.0, 0.0, 0.0));
        assert_eq!(linear_fit(&[(5, 1.0)]), (0.0, 0.0, 0.0));
        let same_x = [(10usize, 1.0), (10usize, 3.0)];
        let (a, b, _) = linear_fit(&same_x);
        assert_eq!(b, 0.0);
        assert!((a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn batch_experiment_compares_schedules() {
        use arp_core::config::TimingModel;
        let mut config = tiny_config();
        config.timing = TimingModel::Simulated { threads: 8 };
        let b = batch_experiment(0.002, &config, 2).unwrap();
        assert_eq!(b.loop_report.events.len(), 2);
        assert_eq!(b.dag_report.events.len(), 2);
        let dag = b.dag_report.dag.as_ref().expect("super-DAG analysis");
        assert!(dag.cross_event_overlap() > Duration::ZERO);
        let text = format_batch_experiment(&b);
        assert!(text.contains("per-event loop total"), "{text}");
        assert!(text.contains("super-DAG"), "{text}");
        assert!(text.contains("lane-on vs lane-off"), "{text}");
        let json = batch_json(&b);
        assert!(json.contains("\"events\": ["), "{json}");
        assert!(json.contains("\"overlap_speedup\""), "{json}");
        assert!(json.contains("\"order\": \"critical-path\""), "{json}");
        // Lane decomposition: both makespans present, lane-on never slower
        // than the back-to-back baseline clamp allows.
        assert!(json.contains("\"io_threads\""), "{json}");
        assert!(json.contains("\"lane_off_makespan_s\""), "{json}");
        assert!(json.contains("\"lane_on_makespan_s\""), "{json}");
        assert!(dag.lane_makespan <= dag.sequential_baseline());
        // Two event rows, one per label.
        assert_eq!(json.matches("\"label\":").count(), 2);
        // The scheduler-health pass runs on the real pool even though the
        // requested config is simulated: worker rows name actual pool
        // threads with busy time bounded by the trace wall time, and the
        // live-metrics digests are populated, never null.
        assert!(
            b.trace.lanes.iter().any(|l| l.name.starts_with("arp-par-")),
            "no pool-thread lane in {:?}",
            b.trace.lanes.iter().map(|l| &l.name).collect::<Vec<_>>()
        );
        for lane in &b.trace.lanes {
            assert!(
                lane.utilization <= 1.0 + 1e-9,
                "worker {} busier than the wall: {}",
                lane.name,
                lane.utilization
            );
        }
        assert!(b.queue_wait.is_some(), "queue-wait digest missing");
        assert!(b.execute.is_some(), "execute digest missing");
        assert!(!json.contains(": null"), "null digest leaked: {json}");
        // The attribution profile rides on the same health trace: the
        // accounting identity holds, what-if curves are present, and the
        // JSON carries the critical-path composition + sensitivity keys.
        b.profile.validate(1e-3).unwrap();
        assert!(!b.profile.what_if.is_empty(), "no what-if curves");
        assert!(b.profile.cp_ns > 0);
        assert!(json.contains("\"profile\""), "{json}");
        assert!(json.contains("\"accounting_error\""), "{json}");
        assert!(json.contains("\"critical_path\""), "{json}");
        assert!(json.contains("\"what_if\""), "{json}");
        assert!(text.contains("critical-path composition"), "{text}");
        assert!(text.contains("what-if #"), "{text}");
        // The streaming readers must beat the whole-file path on residency:
        // the experiment floors its scale so files exceed the 64 KiB buffer.
        assert!(json.contains("\"reader_peak\""), "{json}");
        assert!(text.contains("reader peak bytes-in-flight"), "{text}");
        assert!(
            b.reader_peak.stream_bytes < b.reader_peak.whole_bytes,
            "streaming {} B not below whole-file {} B",
            b.reader_peak.stream_bytes,
            b.reader_peak.whole_bytes
        );
        assert!(b.reader_peak.reduction() > 0.0);
        // The SIMD block rides along: five kernel rows, batch times from
        // real (measured-timing) runs, and the JSON keys the compare gate
        // reads.
        assert_eq!(b.simd.kernels.len(), 5);
        for k in &b.simd.kernels {
            assert!(k.scalar_s > 0.0 && k.simd_s > 0.0, "{k:?}");
        }
        // `best_kernel_speedup > 1` is a release-build property (the blocked
        // kernels only vectorize under opt); here we pin structure, and the
        // CI simd-smoke gate pins the floor on the release binary.
        assert!(b.simd.best_kernel_speedup() > 0.0, "{:?}", b.simd);
        assert!(b.simd.batch_scalar_s > 0.0 && b.simd.batch_simd_s > 0.0);
        assert!(json.contains("\"simd\""), "{json}");
        assert!(json.contains("\"best_kernel_speedup\""), "{json}");
        assert!(json.contains("\"measured_saving\""), "{json}");
        assert!(json.contains("\"predicted_saving\""), "{json}");
        assert!(text.contains("simd backend"), "{text}");
    }

    #[test]
    fn what_if_interpolation_clamps_and_interpolates() {
        use arp_trace::profile::{WhatIfCurve, WhatIfPoint};
        let point = |speedup: f64, saving: f64| WhatIfPoint {
            speedup,
            predicted_ns: 0,
            saving,
            bottleneck: String::new(),
        };
        let curve = WhatIfCurve {
            process: 16,
            name: "respspec".into(),
            points: vec![point(1.5, 0.10), point(2.0, 0.15), point(4.0, 0.20)],
        };
        // Below 1× saves nothing; the curve starts implicitly at (1, 0).
        assert_eq!(interp_what_if_saving(&curve, 0.8), 0.0);
        assert_eq!(interp_what_if_saving(&curve, 1.0), 0.0);
        // Midway between (1, 0) and (1.5, 0.10).
        assert!((interp_what_if_saving(&curve, 1.25) - 0.05).abs() < 1e-12);
        // Exactly on and between points.
        assert!((interp_what_if_saving(&curve, 1.5) - 0.10).abs() < 1e-12);
        assert!((interp_what_if_saving(&curve, 3.0) - 0.175).abs() < 1e-12);
        // Beyond the last point the saving plateaus.
        assert!((interp_what_if_saving(&curve, 16.0) - 0.20).abs() < 1e-12);
    }

    #[test]
    fn compare_gate_simd_speedup() {
        let base = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0, "lane_saving_s": 0.02}"#;
        // A healthy SIMD block passes in both modes.
        let good = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0,
                       "lane_saving_s": 0.02, "simd": {"best_kernel_speedup": 2.4}}"#;
        for relative_only in [false, true] {
            let report = compare_batch_json(good, good, 0.10, relative_only).unwrap();
            assert!(!report.failed(), "{}", report.render());
            assert!(report.rows.iter().any(|r| r.metric == "simd_best_speedup"));
        }
        // SIMD no longer beating scalar fails at any tolerance.
        let lost = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0,
                       "lane_saving_s": 0.02, "simd": {"best_kernel_speedup": 0.9}}"#;
        let report = compare_batch_json(good, lost, 100.0, true).unwrap();
        assert!(report.failed(), "{}", report.render());
        // A collapse vs the baseline beyond tolerance fails even above 1×.
        let collapsed = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0,
                            "lane_saving_s": 0.02, "simd": {"best_kernel_speedup": 1.3}}"#;
        assert!(compare_batch_json(good, collapsed, 0.10, true)
            .unwrap()
            .failed());
        assert!(!compare_batch_json(good, collapsed, 0.60, true)
            .unwrap()
            .failed());
        // A candidate predating the block gates nothing.
        assert!(!compare_batch_json(good, base, 0.10, false)
            .unwrap()
            .failed());
    }

    #[test]
    fn compare_gate_passes_and_fails() {
        let old = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0, "lane_saving_s": 0.02}"#;
        // 5% slower, slightly better utilization: inside the 10% gate.
        let ok = r#"{"super_dag_s": 10.5, "mean_utilization": 0.82, "measured_speedup": 2.0, "lane_saving_s": 0.01}"#;
        let report = compare_batch_json(old, ok, 0.10, false).unwrap();
        assert!(!report.failed(), "{}", report.render());
        assert_eq!(report.rows.len(), 4);

        // 25% slower makespan: fails the absolute gate, passes relative-only.
        let slow = r#"{"super_dag_s": 12.5, "mean_utilization": 0.80, "measured_speedup": 2.0, "lane_saving_s": 0.02}"#;
        let report = compare_batch_json(old, slow, 0.10, false).unwrap();
        assert!(report.failed());
        assert!(report.render().contains("FAIL"));
        let report = compare_batch_json(old, slow, 0.10, true).unwrap();
        assert!(!report.failed(), "relative-only must skip super_dag_s");
        assert_eq!(report.rows.len(), 2);

        // Utilization collapse fails even relative-only.
        let bad = r#"{"super_dag_s": 10.0, "mean_utilization": 0.50, "measured_speedup": 2.0, "lane_saving_s": 0.02}"#;
        assert!(compare_batch_json(old, bad, 0.10, true).unwrap().failed());

        // Missing fields and malformed JSON are errors, not panics.
        assert!(compare_batch_json(old, "{}", 0.10, false).is_err());
        assert!(compare_batch_json("not json", ok, 0.10, false).is_err());
    }

    #[test]
    fn compare_gate_lane_sign_and_null_digests() {
        let old = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0, "lane_saving_s": 0.02}"#;
        // The lane flipped from a win to a loss: fails in both modes, at
        // any tolerance — the gate is a sign test, not a ratio.
        let flipped = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0, "lane_saving_s": -0.01}"#;
        for relative_only in [false, true] {
            let report = compare_batch_json(old, flipped, 100.0, relative_only).unwrap();
            assert!(report.failed(), "{}", report.render());
            let row = report
                .rows
                .iter()
                .find(|r| r.metric == "lane_saving_s")
                .unwrap();
            assert!(row.failed);
        }
        // A lane-off baseline (saving 0) gates nothing: zero-to-zero and
        // zero-to-positive both pass.
        let lane_off = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0, "lane_saving_s": 0.0}"#;
        assert!(!compare_batch_json(lane_off, flipped, 0.10, true)
            .unwrap()
            .failed());
        assert!(!compare_batch_json(lane_off, old, 0.10, true)
            .unwrap()
            .failed());

        // Explicit null digests are an error in either file: they mean the
        // instrumented run recorded nothing.
        let nulled = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0,
                         "lane_saving_s": 0.02, "metrics": {"queue_wait": null, "execute": {"count": 1}}}"#;
        let err = compare_batch_json(old, nulled, 0.10, false).unwrap_err();
        assert!(err.contains("queue_wait"), "{err}");
        assert!(err.contains("candidate"), "{err}");
        let err = compare_batch_json(nulled, old, 0.10, false).unwrap_err();
        assert!(err.contains("baseline"), "{err}");
        // Populated digests sail through.
        let healthy = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0,
                          "lane_saving_s": 0.02, "metrics": {"queue_wait": {"count": 5}, "execute": {"count": 5}}}"#;
        assert!(!compare_batch_json(healthy, healthy, 0.10, false)
            .unwrap()
            .failed());
    }

    #[test]
    fn compare_gate_accounting_identity_and_side_by_side() {
        let base = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0, "lane_saving_s": 0.02}"#;
        // A healthy identity passes; a broken one fails at any tolerance
        // (the bound is absolute, not relative to the baseline).
        let good = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0,
                       "lane_saving_s": 0.02, "profile": {"accounting_error": 0.0}}"#;
        assert!(!compare_batch_json(base, good, 0.10, false)
            .unwrap()
            .failed());
        let broken = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0,
                         "lane_saving_s": 0.02, "profile": {"accounting_error": 0.05}}"#;
        let report = compare_batch_json(base, broken, 100.0, true).unwrap();
        assert!(report.failed(), "{}", report.render());
        let row = report
            .rows
            .iter()
            .find(|r| r.metric == "accounting_error")
            .unwrap();
        assert!(row.failed);
        // A candidate predating the profile block gates nothing.
        assert!(!compare_batch_json(base, base, 0.10, false)
            .unwrap()
            .failed());

        // Missing-key failures quote both files' values side by side.
        let typed = r#"{"super_dag_s": true, "mean_utilization": 0.80, "measured_speedup": 2.0, "lane_saving_s": 0.02}"#;
        let err = compare_batch_json(base, typed, 0.10, false).unwrap_err();
        assert!(err.contains("baseline: 10"), "{err}");
        assert!(err.contains("candidate: true"), "{err}");
        let err = compare_batch_json(base, "{}", 0.10, false).unwrap_err();
        assert!(err.contains("candidate: absent"), "{err}");
        // Null-digest failures do too.
        let nulled = r#"{"super_dag_s": 10.0, "mean_utilization": 0.80, "measured_speedup": 2.0,
                         "lane_saving_s": 0.02, "metrics": {"queue_wait": null, "execute": {"count": 1}}}"#;
        let err = compare_batch_json(base, nulled, 0.10, false).unwrap_err();
        assert!(err.contains("baseline: absent"), "{err}");
        assert!(err.contains("candidate: null"), "{err}");
    }

    #[test]
    fn hist_digest_empty_is_none() {
        let empty = arp_metrics::HistogramSnapshot {
            counts: vec![0; arp_metrics::BUCKET_COUNT],
            count: 0,
            sum: 0,
            scale: 1e9,
        };
        assert!(HistDigest::from_snapshot(&empty).is_none());
    }

    #[test]
    fn sweep_csv_format() {
        let csv = sweep_csv(&[(1, 1.0), (8, 2.5)]);
        assert!(csv.starts_with("threads,speedup"));
        assert!(csv.contains("8,2.5000"));
    }

    #[test]
    fn amdahl_prediction_bounds() {
        let f = fig11(0, 0.002, &tiny_config()).unwrap();
        let (s, predicted) = amdahl_prediction(&f, 8);
        assert!((0.0..=1.0).contains(&s));
        assert!((1.0..=8.0).contains(&predicted));
    }
}
