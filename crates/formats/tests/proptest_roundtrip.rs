//! Property tests: every file format round-trips arbitrary valid content,
//! and rejects mangled content rather than mis-reading it.

use arp_dsp::fir::BandPass;
use arp_dsp::peaks::PeakValues;
use arp_dsp::respspec::ResponseSpectrum;
use arp_formats::gem::{GemFile, GemSource};
use arp_formats::meta::{FileList, FilterParams, MaxEntry, MaxValues, StationCorners};
use arp_formats::types::{Component, MotionTriple, Quantity, RecordHeader};
use arp_formats::v1::{V1ComponentFile, V1StationFile};
use arp_formats::v2::V2File;
use arp_formats::{FFile, Filter, RFile, RecordEncoder, RecordReader};
use proptest::prelude::*;

fn station_code() -> impl Strategy<Value = String> {
    "[A-Z]{2,5}[0-9]{0,2}".prop_filter("non-empty", |s| !s.is_empty())
}

fn values(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, n)
}

fn header_strategy() -> impl Strategy<Value = RecordHeader> {
    (station_code(), "[A-Za-z0-9-]{1,12}", 1e-3f64..0.1)
        .prop_map(|(s, ev, dt)| RecordHeader::new(s, ev, "2019-07-31T03:04:05Z", dt).unwrap())
}

fn triple_strategy() -> impl Strategy<Value = (RecordHeader, MotionTriple)> {
    (header_strategy(), values(2..120)).prop_map(|(h, acc)| {
        let t = MotionTriple::from_acceleration(acc, h.dt).unwrap();
        (h, t)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn v1_component_roundtrip((header, data) in triple_strategy(), ci in 0usize..3) {
        let file = V1ComponentFile { header, component: Component::ALL[ci], data };
        let back = V1ComponentFile::from_text(&file.to_text()).unwrap();
        prop_assert_eq!(back.header, file.header);
        prop_assert_eq!(back.component, file.component);
        for (a, b) in back.data.acc.iter().zip(file.data.acc.iter()) {
            prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1e-12));
        }
    }

    #[test]
    fn v1_station_roundtrip((header, data) in triple_strategy()) {
        let file = V1StationFile {
            header,
            components: Component::ALL.iter().map(|&c| (c, data.clone())).collect(),
        };
        let back = V1StationFile::from_text(&file.to_text()).unwrap();
        prop_assert_eq!(back.components.len(), 3);
        prop_assert_eq!(back.data_points(), file.data_points());
    }

    #[test]
    fn v2_roundtrip((header, data) in triple_strategy()) {
        let peaks = PeakValues {
            pga: 1.0, pga_time: 0.5, pgv: 0.2, pgv_time: 0.7, pgd: 0.05, pgd_time: 0.9,
        };
        let file = V2File {
            header,
            component: Component::Transversal,
            band: BandPass::DEFAULT,
            peaks,
            data,
        };
        let back = V2File::from_text(&file.to_text()).unwrap();
        prop_assert_eq!(back.component, file.component);
        prop_assert!((back.band.fpl - file.band.fpl).abs() < 1e-9);
        for (a, b) in back.data.disp.iter().zip(file.data.disp.iter()) {
            prop_assert!((a - b).abs() <= 1e-9 * b.abs().max(1e-12));
        }
    }

    #[test]
    fn gem_roundtrip(vals in values(1..100), src in prop::bool::ANY, qi in 0usize..3) {
        let axis: Vec<f64> = (0..vals.len()).map(|i| i as f64 * 0.01).collect();
        let g = GemFile::new(
            "SSLB",
            "EV",
            Component::Vertical,
            if src { GemSource::ResponseSpectrum } else { GemSource::TimeSeries },
            Quantity::ALL[qi],
            axis,
            vals,
        ).unwrap();
        let back = GemFile::from_text(&g.to_text()).unwrap();
        prop_assert_eq!(back.values.len(), g.values.len());
        prop_assert!((back.peak - g.peak).abs() <= 1e-9 * g.peak.max(1e-12));
        for (a, b) in back.axis.iter().zip(g.axis.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn file_list_roundtrip(entries in prop::collection::vec("[a-zA-Z0-9._-]{1,20}", 0..30)) {
        let list = FileList::new("anything", entries).unwrap();
        let back = FileList::from_text(&list.to_text()).unwrap();
        prop_assert_eq!(back, list);
    }

    #[test]
    fn filter_params_roundtrip(
        stations in prop::collection::vec(
            (station_code(), prop::collection::vec((1e-3f64..0.5, 0.5f64..1.0), 1..4)),
            0..8,
        )
    ) {
        let mut fp = FilterParams::new(BandPass::DEFAULT);
        for (code, corners) in stations {
            fp.stations.push(StationCorners { station: code, corners });
        }
        let back = FilterParams::from_text(&fp.to_text()).unwrap();
        prop_assert_eq!(back.stations.len(), fp.stations.len());
        for (a, b) in back.stations.iter().zip(fp.stations.iter()) {
            prop_assert_eq!(&a.station, &b.station);
            for ((a1, a2), (b1, b2)) in a.corners.iter().zip(b.corners.iter()) {
                prop_assert!((a1 - b1).abs() < 1e-6);
                prop_assert!((a2 - b2).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn max_values_roundtrip(rows in prop::collection::vec(
        (station_code(), 0usize..3, 0.0f64..1e4, 0.0f64..1e3, 0.0f64..1e2),
        0..20,
    )) {
        let mv = MaxValues {
            entries: rows
                .into_iter()
                .map(|(s, ci, pga, pgv, pgd)| MaxEntry {
                    station: s,
                    component: Component::ALL[ci],
                    pga,
                    pgv,
                    pgd,
                })
                .collect(),
        };
        let back = MaxValues::from_text(&mv.to_text()).unwrap();
        prop_assert_eq!(back.entries.len(), mv.entries.len());
    }

    #[test]
    fn rfile_roundtrip(periods_n in 2usize..30, dampings_n in 1usize..4) {
        let periods: Vec<f64> = (0..periods_n).map(|i| 0.04 * 1.2f64.powi(i as i32)).collect();
        let spectra: Vec<ResponseSpectrum> = (0..dampings_n)
            .map(|k| ResponseSpectrum {
                periods: periods.clone(),
                damping: 0.02 * (k + 1) as f64,
                sd: periods.iter().map(|p| p * 2.0).collect(),
                sv: periods.iter().map(|p| p * 3.0).collect(),
                sa: periods.iter().map(|p| p * 5.0).collect(),
            })
            .collect();
        let r = RFile {
            station: "QCAL".into(),
            event_id: "E".into(),
            component: Component::Longitudinal,
            spectra,
        };
        let back = RFile::from_text(&r.to_text()).unwrap();
        prop_assert_eq!(back.spectra.len(), dampings_n);
        prop_assert_eq!(back.spectra[0].periods.len(), periods_n);
    }

    #[test]
    fn truncation_never_parses(
        (header, data) in triple_strategy(),
        frac in 0.05f64..0.95,
    ) {
        let file = V1ComponentFile { header, component: Component::Longitudinal, data };
        let text = file.to_text();
        let cut = (text.len() as f64 * frac) as usize;
        // Cutting anywhere strictly inside the document must fail to parse
        // (the counted blocks and mandatory header fields catch it).
        if cut < text.len() - 1 {
            prop_assert!(V1ComponentFile::from_text(&text[..cut]).is_err());
        }
    }

    #[test]
    fn reader_encoder_roundtrip_is_byte_identical(
        (header, data) in triple_strategy(),
        ci in 0usize..3,
        n in 2usize..40,
    ) {
        // A heterogeneous record stream: V1C + V1S + F, concatenated.
        let v1c = V1ComponentFile {
            header: header.clone(),
            component: Component::ALL[ci],
            data: data.clone(),
        };
        let v1s = V1StationFile {
            header: header.clone(),
            components: Component::ALL.iter().map(|&c| (c, data.clone())).collect(),
        };
        let freq: Vec<f64> = (0..n).map(|k| k as f64 * 0.1).collect();
        let f = FFile {
            station: header.station.clone(),
            event_id: header.event_id.clone(),
            component: Component::ALL[ci],
            dt: header.dt,
            spectrum: arp_dsp::spectrum::FourierSpectrum {
                frequency_hz: freq.clone(),
                acceleration: freq.iter().map(|v| v + 1.0).collect(),
                velocity: freq.iter().map(|v| v + 2.0).collect(),
                displacement: freq.iter().map(|v| v + 3.0).collect(),
            },
        };
        let stream = format!("{}{}{}", v1c.to_text(), v1s.to_text(), f.to_text());

        let mut out = Vec::new();
        let mut enc = RecordEncoder::new(&mut out);
        let mut reader = RecordReader::new(stream.as_bytes());
        for rec in reader.by_ref() {
            enc.write_record(&rec.unwrap()).unwrap();
        }
        prop_assert_eq!(reader.records_scanned(), 3);
        prop_assert_eq!(enc.records_written(), 3);
        enc.finish().unwrap();
        prop_assert_eq!(out, stream.into_bytes());
    }

    #[test]
    fn filtered_reencode_is_byte_subset(
        (header, data) in triple_strategy(),
        keep in 0usize..3,
    ) {
        // Three single-component records; keep exactly one by component.
        let texts: Vec<String> = Component::ALL
            .iter()
            .map(|&c| {
                V1ComponentFile { header: header.clone(), component: c, data: data.clone() }
                    .to_text()
            })
            .collect();
        let stream = texts.concat();
        let mut out = Vec::new();
        let mut enc = RecordEncoder::new(&mut out);
        for rec in RecordReader::new(stream.as_bytes())
            .with_filters(vec![Filter::Component(Component::ALL[keep])])
        {
            enc.write_record(&rec.unwrap()).unwrap();
        }
        prop_assert_eq!(enc.records_written(), 1);
        enc.finish().unwrap();
        prop_assert_eq!(out, texts[keep].clone().into_bytes());
    }

    #[test]
    fn reader_rejects_truncation_anywhere(
        (header, data) in triple_strategy(),
        frac in 0.05f64..0.95,
    ) {
        let file = V1ComponentFile { header, component: Component::Vertical, data };
        let text = file.to_text();
        let cut = (text.len() as f64 * frac) as usize;
        if cut < text.len() - 1 {
            let results: Vec<_> = RecordReader::new(&text.as_bytes()[..cut]).collect();
            // The streaming reader must surface exactly one error and fuse.
            prop_assert_eq!(results.len(), 1);
            prop_assert!(results[0].is_err());
        }
    }

    #[test]
    fn ffile_roundtrip(n in 2usize..60) {
        let freq: Vec<f64> = (0..n).map(|k| k as f64 * 0.1).collect();
        let f = FFile {
            station: "SMIG".into(),
            event_id: "E".into(),
            component: Component::Vertical,
            dt: 0.01,
            spectrum: arp_dsp::spectrum::FourierSpectrum {
                frequency_hz: freq.clone(),
                acceleration: freq.iter().map(|v| v + 1.0).collect(),
                velocity: freq.iter().map(|v| v + 2.0).collect(),
                displacement: freq.iter().map(|v| v + 3.0).collect(),
            },
        };
        let back = FFile::from_text(&f.to_text()).unwrap();
        prop_assert_eq!(back.spectrum.len(), n);
    }
}
