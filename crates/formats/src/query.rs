//! Directory-level queries over pipeline products.
//!
//! A [`Query`] scans a work directory for product files (`.v1`, `.v2`,
//! `.f`, `.r`), streams each through a filtered
//! [`RecordReader`], and yields the matches in
//! stable (filename-sorted) order. This backs the `arp query` CLI
//! subcommand.
//!
//! ```no_run
//! use arp_formats::filter::Filter;
//! use arp_formats::query::Query;
//! use std::path::Path;
//!
//! // All corrected records of event EV1 with PGA at least 50 cm/s².
//! let hits = Query::new(Path::new("work"))
//!     .filter(Filter::Event("EV1".into()))
//!     .filter(Filter::pga_range(Some(50.0), None))
//!     .run()
//!     .unwrap();
//! for hit in hits {
//!     let hit = hit.unwrap();
//!     println!("{} {}", hit.path.display(), hit.record.station());
//! }
//! ```

use crate::error::FormatError;
use crate::filter::Filter;
use crate::iter::{Record, RecordReader};
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

/// File extensions the query layer scans, in scan order.
pub const PRODUCT_EXTENSIONS: [&str; 4] = ["v1", "v2", "f", "r"];

/// One matching record, together with the file it came from.
#[derive(Debug)]
pub struct QueryHit {
    /// File the record was read from.
    pub path: PathBuf,
    /// The parsed record.
    pub record: Record,
}

/// A filtered scan over the product files of a directory.
#[derive(Debug, Clone)]
pub struct Query {
    dir: PathBuf,
    filters: Vec<Filter>,
}

impl Query {
    /// Queries the product files directly inside `dir` (non-recursive —
    /// pipeline work directories are flat).
    pub fn new(dir: &Path) -> Self {
        Query {
            dir: dir.to_path_buf(),
            filters: Vec::new(),
        }
    }

    /// Adds a filter; all filters must match (conjunction).
    pub fn filter(mut self, filter: Filter) -> Self {
        self.filters.push(filter);
        self
    }

    /// Adds several filters at once.
    pub fn filters(mut self, filters: impl IntoIterator<Item = Filter>) -> Self {
        self.filters.extend(filters);
        self
    }

    /// Lists the product files the scan will visit, sorted by file name so
    /// query output is stable across platforms and runs.
    pub fn candidate_files(&self) -> Result<Vec<PathBuf>, FormatError> {
        let entries = std::fs::read_dir(&self.dir).map_err(|e| FormatError::io(&self.dir, e))?;
        let mut files = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| FormatError::io(&self.dir, e))?;
            let path = entry.path();
            if !path.is_file() {
                continue;
            }
            let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
            if PRODUCT_EXTENSIONS.contains(&ext) {
                files.push(path);
            }
        }
        files.sort_by(|a, b| a.file_name().cmp(&b.file_name()));
        Ok(files)
    }

    /// Runs the query, returning a lazy iterator over matches. Files are
    /// opened one at a time; a malformed file surfaces as an `Err` item and
    /// the scan moves on to the next file.
    pub fn run(self) -> Result<QueryIter, FormatError> {
        let files = self.candidate_files()?;
        Ok(QueryIter {
            files: files.into_iter(),
            filters: self.filters,
            current: None,
        })
    }
}

/// Lazy iterator over query matches; see [`Query::run`].
pub struct QueryIter {
    files: std::vec::IntoIter<PathBuf>,
    filters: Vec<Filter>,
    current: Option<(PathBuf, RecordReader<BufReader<File>>)>,
}

impl QueryIter {
    fn open_next_file(&mut self) -> Option<Result<(), FormatError>> {
        let path = self.files.next()?;
        match RecordReader::open(&path) {
            Ok(reader) => {
                self.current = Some((path, reader.with_filters(self.filters.clone())));
                Some(Ok(()))
            }
            Err(e) => Some(Err(e)),
        }
    }
}

impl Iterator for QueryIter {
    type Item = Result<QueryHit, FormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match &mut self.current {
                Some((path, reader)) => match reader.next() {
                    Some(Ok(record)) => {
                        let path = path.clone();
                        return Some(Ok(QueryHit { path, record }));
                    }
                    Some(Err(e)) => {
                        // The reader fuses after an error; drop the file and
                        // surface the error, then continue with the next one.
                        self.current = None;
                        return Some(Err(e));
                    }
                    None => self.current = None,
                },
                None => match self.open_next_file()? {
                    Ok(()) => {}
                    Err(e) => return Some(Err(e)),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::iter::RecordKind;
    use crate::types::{names, Component, MotionTriple, RecordHeader};
    use crate::v1::V1ComponentFile;

    fn v1c(station: &str, comp: Component) -> V1ComponentFile {
        let acc: Vec<f64> = (0..16).map(|i| (i as f64 * 0.23).sin()).collect();
        V1ComponentFile {
            header: RecordHeader::new(station, "EV1", "2019-07-31T03:04:05Z", 0.01).unwrap(),
            component: comp,
            data: MotionTriple::from_acceleration(acc, 0.01).unwrap(),
        }
    }

    fn setup(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("arp-query-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (station, comp) in [
            ("AAAA", Component::Longitudinal),
            ("AAAA", Component::Vertical),
            ("BBBB", Component::Longitudinal),
        ] {
            let rec = v1c(station, comp);
            rec.write(&dir.join(names::v1_component(station, comp)))
                .unwrap();
        }
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        dir
    }

    #[test]
    fn scan_is_sorted_and_filtered_by_extension() {
        let dir = setup("sorted");
        let q = Query::new(&dir);
        let files = q.candidate_files().unwrap();
        assert_eq!(files.len(), 3);
        let names: Vec<_> = files
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(!names.iter().any(|n| n.ends_with(".txt")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn filters_restrict_hits() {
        let dir = setup("filters");
        let hits: Vec<QueryHit> = Query::new(&dir)
            .filter(Filter::Station("AAAA".into()))
            .filter(Filter::Component(Component::Vertical))
            .run()
            .unwrap()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].record.station(), "AAAA");
        assert_eq!(hits[0].record.component(), Some(Component::Vertical));
        assert!(hits[0].path.ends_with("AAAAv.v1"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kind_filter_and_empty_results() {
        let dir = setup("kinds");
        let hits: Vec<_> = Query::new(&dir)
            .filter(Filter::Kind(RecordKind::V2))
            .run()
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert!(hits.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn malformed_file_surfaces_error_then_scan_continues() {
        let dir = setup("bad");
        std::fs::write(dir.join("AAAA0.v2"), "ARP-V2 1.0\nSTATION: X\nbroken\n").unwrap();
        let results: Vec<_> = Query::new(&dir).run().unwrap().collect();
        let errors = results.iter().filter(|r| r.is_err()).count();
        let hits = results.iter().filter(|r| r.is_ok()).count();
        assert_eq!(errors, 1);
        assert_eq!(hits, 3, "good files still scanned after the bad one");
        // The error names the offending file.
        let msg = results
            .iter()
            .find_map(|r| r.as_ref().err())
            .unwrap()
            .to_string();
        assert!(msg.contains("AAAA0.v2"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_is_io_error() {
        let q = Query::new(Path::new("/nonexistent/arp-query-test"));
        assert!(q.run().is_err());
    }
}
