//! Error type for file-format parsing and writing.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Errors produced while reading or writing pipeline files.
#[derive(Debug)]
pub enum FormatError {
    /// Underlying I/O failure, annotated with the path involved.
    Io {
        /// File being accessed.
        path: PathBuf,
        /// OS error.
        source: io::Error,
    },
    /// The file's leading magic line did not match the expected format.
    BadMagic {
        /// Expected magic token.
        expected: &'static str,
        /// What the file actually started with.
        found: String,
    },
    /// A syntactic problem at a specific line (1-based).
    Syntax {
        /// Line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// A required header field was absent.
    MissingField(&'static str),
    /// A data block declared `expected` values but contained `found`.
    CountMismatch {
        /// Block name.
        block: String,
        /// Declared count.
        expected: usize,
        /// Values actually present.
        found: usize,
    },
    /// A header value failed validation (e.g. non-positive dt).
    InvalidValue(String),
    /// An error annotated with the file it occurred in, so parse failures
    /// carry both the path and (via the inner [`FormatError::Syntax`]) the
    /// line offset.
    InFile {
        /// File being parsed.
        path: PathBuf,
        /// The underlying parse error.
        source: Box<FormatError>,
    },
}

impl FormatError {
    /// Helper to wrap an I/O error with its path.
    pub fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        FormatError::Io {
            path: path.into(),
            source,
        }
    }

    /// Helper for syntax errors.
    pub fn syntax(line: usize, message: impl Into<String>) -> Self {
        FormatError::Syntax {
            line,
            message: message.into(),
        }
    }

    /// Annotates the error with the file it came from. Errors that already
    /// carry a path ([`FormatError::Io`], [`FormatError::InFile`]) are
    /// returned unchanged.
    pub fn in_file(self, path: impl Into<PathBuf>) -> Self {
        match self {
            FormatError::Io { .. } | FormatError::InFile { .. } => self,
            other => FormatError::InFile {
                path: path.into(),
                source: Box::new(other),
            },
        }
    }
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            FormatError::BadMagic { expected, found } => {
                write!(f, "bad magic: expected {expected:?}, found {found:?}")
            }
            FormatError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            FormatError::MissingField(name) => write!(f, "missing header field {name}"),
            FormatError::CountMismatch {
                block,
                expected,
                found,
            } => write!(
                f,
                "block {block}: declared {expected} values but found {found}"
            ),
            FormatError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            FormatError::InFile { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Io { source, .. } => Some(source),
            FormatError::InFile { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = FormatError::io("/tmp/x.v1", io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("/tmp/x.v1"));
        assert!(FormatError::syntax(7, "junk")
            .to_string()
            .contains("line 7"));
        assert!(FormatError::MissingField("DT").to_string().contains("DT"));
        let c = FormatError::CountMismatch {
            block: "ACC".into(),
            expected: 10,
            found: 9,
        };
        assert!(c.to_string().contains("ACC"));
        assert!(FormatError::BadMagic {
            expected: "ARP-V1",
            found: "nope".into()
        }
        .to_string()
        .contains("ARP-V1"));
        assert!(FormatError::InvalidValue("dt".into())
            .to_string()
            .contains("dt"));
    }

    #[test]
    fn in_file_wraps_once_and_keeps_line() {
        let inner = FormatError::syntax(12, "bad value");
        let wrapped = inner.in_file("/work/SSLBl.v2");
        let msg = wrapped.to_string();
        assert!(msg.contains("/work/SSLBl.v2"), "{msg}");
        assert!(msg.contains("line 12"), "{msg}");
        // Re-wrapping must not nest paths.
        let again = wrapped.in_file("/other/path");
        assert!(!again.to_string().contains("/other/path"));
        // I/O errors already carry their path.
        let io = FormatError::io("/x", io::Error::other("boom")).in_file("/y");
        assert!(!io.to_string().contains("/y"));
    }

    #[test]
    fn source_chain() {
        use std::error::Error;
        let e = FormatError::io("/x", io::Error::other("boom"));
        assert!(e.source().is_some());
        assert!(FormatError::MissingField("X").source().is_none());
    }
}
