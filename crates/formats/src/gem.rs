//! GEM product files (process #19).
//!
//! For every station component, six files are generated per V2/R pair — one
//! per (source, quantity) combination — 18 per station in total:
//!
//! * `GEM2A/2V/2D` — corrected time series of acceleration / velocity /
//!   displacement, extracted from the V2 file;
//! * `GEMRA/RV/RD` — the 5%-damped response spectrum ordinate series of the
//!   same quantities, extracted from the R file.
//!
//! These feed the Global Earthquake Model toolchain downstream of the
//! observatory pipeline.

use crate::error::FormatError;
use crate::fsio::write_file;
use crate::numio::{write_block, write_kv, write_magic, Scanner};
use crate::types::{Component, Quantity};
use std::io::BufRead;
use std::path::Path;

const MAGIC: &str = "ARP-GEM";

/// Where a GEM series came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum GemSource {
    /// Extracted from a corrected time-series (`V2`) file.
    TimeSeries,
    /// Extracted from a response-spectrum (`R`) file.
    ResponseSpectrum,
}

impl GemSource {
    /// File-name code: `2` for time series, `R` for response spectra.
    pub fn code(self) -> char {
        match self {
            GemSource::TimeSeries => '2',
            GemSource::ResponseSpectrum => 'R',
        }
    }

    /// Parses the file-name code.
    pub fn from_code(c: char) -> Result<Self, FormatError> {
        match c.to_ascii_uppercase() {
            '2' => Ok(GemSource::TimeSeries),
            'R' => Ok(GemSource::ResponseSpectrum),
            other => Err(FormatError::InvalidValue(format!(
                "unknown GEM source code {other:?}"
            ))),
        }
    }
}

/// One GEM product file: a single labelled series with its abscissa.
#[derive(Debug, Clone, PartialEq)]
pub struct GemFile {
    /// Station code.
    pub station: String,
    /// Event identifier.
    pub event_id: String,
    /// Component.
    pub component: Component,
    /// Time-series or response-spectrum product.
    pub source: GemSource,
    /// Which physical quantity the series holds.
    pub quantity: Quantity,
    /// Abscissa: time (s) for time series, period (s) for spectra.
    pub axis: Vec<f64>,
    /// The series values.
    pub values: Vec<f64>,
    /// Peak absolute value of the series (archived for quick lookup).
    pub peak: f64,
}

impl GemFile {
    /// Builds a GEM file, computing the archived peak.
    pub fn new(
        station: impl Into<String>,
        event_id: impl Into<String>,
        component: Component,
        source: GemSource,
        quantity: Quantity,
        axis: Vec<f64>,
        values: Vec<f64>,
    ) -> Result<Self, FormatError> {
        let peak = values.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let f = GemFile {
            station: station.into(),
            event_id: event_id.into(),
            component,
            source,
            quantity,
            axis,
            values,
            peak,
        };
        f.validate()?;
        Ok(f)
    }

    /// Validates axis/value length agreement.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.axis.len() != self.values.len() {
            return Err(FormatError::InvalidValue(format!(
                "axis length {} != values length {}",
                self.axis.len(),
                self.values.len()
            )));
        }
        if self.values.is_empty() {
            return Err(FormatError::InvalidValue("empty GEM series".into()));
        }
        Ok(())
    }

    /// True when the abscissa is uniform (time series): it can then be
    /// stored as `start/step` instead of a full block.
    fn axis_uniform(&self) -> Option<(f64, f64)> {
        if self.axis.len() < 2 {
            return None;
        }
        let start = self.axis[0];
        let step = self.axis[1] - self.axis[0];
        if step <= 0.0 {
            return None;
        }
        let uniform = self
            .axis
            .windows(2)
            .all(|w| ((w[1] - w[0]) - step).abs() <= 1e-9 * step.abs());
        uniform.then_some((start, step))
    }

    /// Serializes to the text format. Uniform axes (time series) are stored
    /// compactly as `AXIS-UNIFORM: start step count`; non-uniform axes
    /// (period grids) keep the full block.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_magic(&mut out, MAGIC);
        write_kv(&mut out, "STATION", &self.station);
        write_kv(&mut out, "EVENT", &self.event_id);
        write_kv(&mut out, "COMPONENT", self.component.name());
        write_kv(&mut out, "SOURCE", self.source.code());
        write_kv(&mut out, "QUANTITY", self.quantity.code());
        write_kv(&mut out, "PEAK", format!("{:.9e}", self.peak));
        match self.axis_uniform() {
            Some((start, step)) => {
                write_kv(
                    &mut out,
                    "AXIS-UNIFORM",
                    format!("{start:.16e} {step:.16e} {}", self.axis.len()),
                );
            }
            None => write_block(&mut out, "AXIS", &self.axis),
        }
        write_block(&mut out, "VALUES", &self.values);
        out
    }

    fn from_scanner<B: BufRead>(sc: &mut Scanner<B>) -> Result<Self, FormatError> {
        sc.expect_magic(MAGIC)?;
        let station = sc.expect_kv("STATION")?;
        let event_id = sc.expect_kv("EVENT")?;
        let component = Component::from_name(&sc.expect_kv("COMPONENT")?)?;
        let source_str = sc.expect_kv("SOURCE")?;
        let source = GemSource::from_code(source_str.chars().next().unwrap_or(' '))?;
        let quantity_str = sc.expect_kv("QUANTITY")?;
        let quantity = Quantity::from_code(quantity_str.chars().next().unwrap_or(' '))?;
        let peak = sc.expect_kv_f64("PEAK")?;
        let uniform = matches!(
            sc.peek()?,
            Some(line) if line.trim_start().starts_with("AXIS-UNIFORM")
        );
        let axis = match uniform {
            true => {
                let spec = sc.expect_kv("AXIS-UNIFORM")?;
                let parts: Vec<&str> = spec.split_whitespace().collect();
                if parts.len() != 3 {
                    return Err(FormatError::InvalidValue(format!(
                        "AXIS-UNIFORM needs `start step count`, got {spec:?}"
                    )));
                }
                let start: f64 = parts[0]
                    .parse()
                    .map_err(|e| FormatError::InvalidValue(format!("bad axis start: {e}")))?;
                let step: f64 = parts[1]
                    .parse()
                    .map_err(|e| FormatError::InvalidValue(format!("bad axis step: {e}")))?;
                let count: usize = parts[2]
                    .parse()
                    .map_err(|e| FormatError::InvalidValue(format!("bad axis count: {e}")))?;
                if !(step > 0.0 && step.is_finite() && start.is_finite()) {
                    return Err(FormatError::InvalidValue(format!(
                        "bad uniform axis start={start} step={step}"
                    )));
                }
                (0..count).map(|i| start + step * i as f64).collect()
            }
            false => sc.read_block("AXIS")?,
        };
        let values = sc.read_block("VALUES")?;
        let f = GemFile {
            station,
            event_id,
            component,
            source,
            quantity,
            axis,
            values,
            peak,
        };
        f.validate()?;
        Ok(f)
    }

    /// Parses from the text format.
    pub fn from_text(text: &str) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::from_text(text))
    }

    /// Writes to `path`.
    pub fn write(&self, path: &Path) -> Result<(), FormatError> {
        write_file(path, &self.to_text())
    }

    /// Reads from `path`, streaming with a bounded buffer.
    pub fn read(path: &Path) -> Result<Self, FormatError> {
        let mut sc = Scanner::open(path)?;
        Self::from_scanner(&mut sc).map_err(|e| e.in_file(path))
    }

    /// The file name this product should be stored under.
    pub fn file_name(&self) -> String {
        crate::types::names::gem(
            &self.station,
            self.component,
            self.source == GemSource::ResponseSpectrum,
            self.quantity,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GemFile {
        GemFile::new(
            "SSLB",
            "EV9",
            Component::Longitudinal,
            GemSource::TimeSeries,
            Quantity::Velocity,
            (0..50).map(|i| i as f64 * 0.01).collect(),
            (0..50).map(|i| (i as f64 * 0.4).sin() * 3.0).collect(),
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let g = sample();
        let back = GemFile::from_text(&g.to_text()).unwrap();
        assert_eq!(back.station, g.station);
        assert_eq!(back.source, g.source);
        assert_eq!(back.quantity, g.quantity);
        assert!((back.peak - g.peak).abs() <= 1e-9 * g.peak);
        assert_eq!(back.values.len(), 50);
    }

    #[test]
    fn peak_is_max_abs() {
        let g = GemFile::new(
            "S1",
            "E",
            Component::Vertical,
            GemSource::ResponseSpectrum,
            Quantity::Acceleration,
            vec![0.1, 0.2, 0.3],
            vec![1.0, -7.5, 2.0],
        )
        .unwrap();
        assert_eq!(g.peak, 7.5);
    }

    #[test]
    fn file_name_follows_convention() {
        let g = sample();
        assert_eq!(g.file_name(), "SSLBlGEM2V.gem");
        let mut r = sample();
        r.source = GemSource::ResponseSpectrum;
        r.quantity = Quantity::Displacement;
        assert_eq!(r.file_name(), "SSLBlGEMRD.gem");
    }

    #[test]
    fn uniform_axis_stored_compactly_and_roundtrips() {
        let g = sample(); // 0.01-step time axis
        let text = g.to_text();
        assert!(text.contains("AXIS-UNIFORM"), "{text}");
        assert!(!text.contains("BEGIN AXIS"));
        let back = GemFile::from_text(&text).unwrap();
        assert_eq!(back.axis.len(), g.axis.len());
        for (a, b) in back.axis.iter().zip(&g.axis) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn nonuniform_axis_keeps_full_block() {
        let g = GemFile::new(
            "S1",
            "E",
            Component::Vertical,
            GemSource::ResponseSpectrum,
            Quantity::Acceleration,
            vec![0.04, 0.1, 0.5, 2.0, 15.0], // log-spaced period grid
            vec![1.0, 2.0, 3.0, 2.0, 1.0],
        )
        .unwrap();
        let text = g.to_text();
        assert!(text.contains("BEGIN AXIS"), "{text}");
        let back = GemFile::from_text(&text).unwrap();
        assert_eq!(back.axis, g.axis);
    }

    #[test]
    fn corrupt_uniform_axis_rejected() {
        let g = sample();
        let text = g.to_text();
        let bad = text.replace("AXIS-UNIFORM: 0", "AXIS-UNIFORM: nope");
        assert!(GemFile::from_text(&bad).is_err());
    }

    #[test]
    fn source_codes() {
        assert_eq!(GemSource::from_code('2').unwrap(), GemSource::TimeSeries);
        assert_eq!(
            GemSource::from_code('r').unwrap(),
            GemSource::ResponseSpectrum
        );
        assert!(GemSource::from_code('x').is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        assert!(GemFile::new(
            "S1",
            "E",
            Component::Vertical,
            GemSource::TimeSeries,
            Quantity::Acceleration,
            vec![0.1, 0.2],
            vec![1.0],
        )
        .is_err());
    }

    #[test]
    fn empty_series_rejected() {
        assert!(GemFile::new(
            "S1",
            "E",
            Component::Vertical,
            GemSource::TimeSeries,
            Quantity::Acceleration,
            vec![],
            vec![],
        )
        .is_err());
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("arp-gem-{}", std::process::id()));
        let g = sample();
        let p = dir.join(g.file_name());
        g.write(&p).unwrap();
        assert_eq!(GemFile::read(&p).unwrap().event_id, "EV9");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
