//! `V1` files — uncorrected accelerographic records.
//!
//! Two shapes exist in the pipeline:
//!
//! * `<station>.v1` — the raw file a sensor uploads, holding all three
//!   components ([`V1StationFile`]). Process #3 splits it.
//! * `<station><c>.v1` — one component ([`V1ComponentFile`]), the unit the
//!   filtering processes (#4, #13) consume.
//!
//! Per the paper (§II) a V1 file stores acceleration, velocity, and
//! displacement over the recorded window.
//!
//! Both shapes parse from any [`BufRead`] source via `from_reader`, and
//! [`V1StationReader`] streams a station file one component at a time so a
//! splitter never holds more than one component's traces in memory.

use crate::error::FormatError;
use crate::fsio::write_file;
use crate::numio::{write_block, write_kv, write_magic, Scanner};
use crate::types::{Component, MotionTriple, RecordHeader};
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

pub(crate) const MAGIC_STATION: &str = "ARP-V1S";
pub(crate) const MAGIC_COMPONENT: &str = "ARP-V1C";

/// A raw multi-component station record (`<station>.v1`).
#[derive(Debug, Clone, PartialEq)]
pub struct V1StationFile {
    /// Record metadata.
    pub header: RecordHeader,
    /// Component traces in canonical (L, T, V) order.
    pub components: Vec<(Component, MotionTriple)>,
}

/// A single-component uncorrected record (`<station><c>.v1`).
#[derive(Debug, Clone, PartialEq)]
pub struct V1ComponentFile {
    /// Record metadata.
    pub header: RecordHeader,
    /// Which component this file holds.
    pub component: Component,
    /// The motion traces.
    pub data: MotionTriple,
}

fn write_header(out: &mut String, h: &RecordHeader) {
    write_kv(out, "STATION", &h.station);
    write_kv(out, "EVENT", &h.event_id);
    write_kv(out, "ORIGIN", &h.origin_time);
    write_kv(out, "DT", format!("{:.16e}", h.dt));
    write_kv(out, "UNITS", &h.units);
    write_kv(out, "INSTRUMENT", &h.instrument);
}

pub(crate) fn read_header<B: BufRead>(sc: &mut Scanner<B>) -> Result<RecordHeader, FormatError> {
    let station = sc.expect_kv("STATION")?;
    let event_id = sc.expect_kv("EVENT")?;
    let origin_time = sc.expect_kv("ORIGIN")?;
    let dt = sc.expect_kv_f64("DT")?;
    let units = sc.expect_kv("UNITS")?;
    let instrument = sc.expect_kv("INSTRUMENT")?;
    let h = RecordHeader {
        station,
        event_id,
        origin_time,
        dt,
        units,
        instrument,
    };
    h.validate()?;
    Ok(h)
}

fn write_triple(out: &mut String, t: &MotionTriple) {
    write_block(out, "ACC", &t.acc);
    write_block(out, "VEL", &t.vel);
    write_block(out, "DISP", &t.disp);
}

fn read_triple<B: BufRead>(sc: &mut Scanner<B>) -> Result<MotionTriple, FormatError> {
    let acc = sc.read_block("ACC")?;
    let vel = sc.read_block("VEL")?;
    let disp = sc.read_block("DISP")?;
    let t = MotionTriple { acc, vel, disp };
    t.validate()?;
    Ok(t)
}

/// Header portion of a station file, parsed before any trace data.
pub(crate) struct V1StationHead {
    pub header: RecordHeader,
    pub count: usize,
}

/// Header portion of a component file, parsed before any trace data.
pub(crate) struct V1ComponentHead {
    pub header: RecordHeader,
    pub component: Component,
}

impl V1StationFile {
    /// Validates header and traces (equal lengths, known components,
    /// no duplicate components).
    pub fn validate(&self) -> Result<(), FormatError> {
        self.header.validate()?;
        if self.components.is_empty() {
            return Err(FormatError::InvalidValue(
                "station file has no components".into(),
            ));
        }
        let mut seen = Vec::new();
        for (c, t) in &self.components {
            if seen.contains(c) {
                return Err(FormatError::InvalidValue(format!(
                    "duplicate component {c}"
                )));
            }
            seen.push(*c);
            t.validate()?;
        }
        Ok(())
    }

    /// Total number of data points across all components and quantities
    /// counted as acceleration samples (the paper's "data points" measure
    /// counts acceleration samples per component).
    pub fn data_points(&self) -> usize {
        self.components.iter().map(|(_, t)| t.len()).sum()
    }

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_magic(&mut out, MAGIC_STATION);
        write_header(&mut out, &self.header);
        write_kv(&mut out, "COMPONENTS", self.components.len());
        for (c, t) in &self.components {
            write_kv(&mut out, "COMPONENT", c.name());
            write_triple(&mut out, t);
        }
        out
    }

    pub(crate) fn scan_head<B: BufRead>(sc: &mut Scanner<B>) -> Result<V1StationHead, FormatError> {
        let header = read_header(sc)?;
        let count = sc.expect_kv_usize("COMPONENTS")?;
        Ok(V1StationHead { header, count })
    }

    pub(crate) fn finish_body<B: BufRead>(
        sc: &mut Scanner<B>,
        head: V1StationHead,
    ) -> Result<Self, FormatError> {
        let mut components = Vec::with_capacity(head.count);
        for _ in 0..head.count {
            let name = sc.expect_kv("COMPONENT")?;
            let comp = Component::from_name(&name)?;
            let triple = read_triple(sc)?;
            components.push((comp, triple));
        }
        let file = V1StationFile {
            header: head.header,
            components,
        };
        file.validate()?;
        Ok(file)
    }

    pub(crate) fn from_scanner<B: BufRead>(sc: &mut Scanner<B>) -> Result<Self, FormatError> {
        sc.expect_magic(MAGIC_STATION)?;
        let head = Self::scan_head(sc)?;
        Self::finish_body(sc, head)
    }

    /// Parses from the text format.
    pub fn from_text(text: &str) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::from_text(text))
    }

    /// Parses from any buffered reader, consuming one record.
    pub fn from_reader<B: BufRead>(src: B) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::new(src))
    }

    /// Writes to `path`.
    pub fn write(&self, path: &Path) -> Result<(), FormatError> {
        write_file(path, &self.to_text())
    }

    /// Reads from `path`, streaming with a bounded buffer.
    pub fn read(path: &Path) -> Result<Self, FormatError> {
        let mut sc = Scanner::open(path)?;
        Self::from_scanner(&mut sc).map_err(|e| e.in_file(path))
    }

    /// Splits into per-component files (process #3's transformation).
    pub fn split(&self) -> Vec<V1ComponentFile> {
        self.components
            .iter()
            .map(|(c, t)| V1ComponentFile {
                header: self.header.clone(),
                component: *c,
                data: t.clone(),
            })
            .collect()
    }
}

impl V1ComponentFile {
    /// Validates header and traces.
    pub fn validate(&self) -> Result<(), FormatError> {
        self.header.validate()?;
        self.data.validate()
    }

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_magic(&mut out, MAGIC_COMPONENT);
        write_header(&mut out, &self.header);
        write_kv(&mut out, "COMPONENT", self.component.name());
        write_triple(&mut out, &self.data);
        out
    }

    pub(crate) fn scan_head<B: BufRead>(
        sc: &mut Scanner<B>,
    ) -> Result<V1ComponentHead, FormatError> {
        let header = read_header(sc)?;
        let component = Component::from_name(&sc.expect_kv("COMPONENT")?)?;
        Ok(V1ComponentHead { header, component })
    }

    pub(crate) fn finish_body<B: BufRead>(
        sc: &mut Scanner<B>,
        head: V1ComponentHead,
    ) -> Result<Self, FormatError> {
        let data = read_triple(sc)?;
        let file = V1ComponentFile {
            header: head.header,
            component: head.component,
            data,
        };
        file.validate()?;
        Ok(file)
    }

    pub(crate) fn from_scanner<B: BufRead>(sc: &mut Scanner<B>) -> Result<Self, FormatError> {
        sc.expect_magic(MAGIC_COMPONENT)?;
        let head = Self::scan_head(sc)?;
        Self::finish_body(sc, head)
    }

    /// Parses from the text format.
    pub fn from_text(text: &str) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::from_text(text))
    }

    /// Parses from any buffered reader, consuming one record.
    pub fn from_reader<B: BufRead>(src: B) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::new(src))
    }

    /// Writes to `path`.
    pub fn write(&self, path: &Path) -> Result<(), FormatError> {
        write_file(path, &self.to_text())
    }

    /// Reads from `path`, streaming with a bounded buffer.
    pub fn read(path: &Path) -> Result<Self, FormatError> {
        let mut sc = Scanner::open(path)?;
        Self::from_scanner(&mut sc).map_err(|e| e.in_file(path))
    }
}

/// Streams a station file one component at a time.
///
/// The header is parsed eagerly; each call to `next` parses exactly one
/// component's traces, so a splitter holds at most one component in memory
/// (plus the bounded stream buffer) instead of the whole station record.
///
/// ```
/// use arp_formats::types::{Component, MotionTriple, RecordHeader};
/// use arp_formats::v1::{V1StationFile, V1StationReader};
///
/// let header = RecordHeader::new("SSLB", "EV1", "2019-07-31T03:04:05Z", 0.01).unwrap();
/// let triple = MotionTriple::from_acceleration(vec![0.0, 1.0, -1.0], 0.01).unwrap();
/// let station = V1StationFile {
///     header,
///     components: vec![(Component::Longitudinal, triple)],
/// };
/// let text = station.to_text();
///
/// let mut reader = V1StationReader::from_reader(text.as_bytes()).unwrap();
/// assert_eq!(reader.header().station, "SSLB");
/// let parts: Vec<_> = reader.map(Result::unwrap).collect();
/// assert_eq!(parts.len(), 1);
/// assert_eq!(parts[0].component, Component::Longitudinal);
/// ```
pub struct V1StationReader<B> {
    sc: Scanner<B>,
    header: RecordHeader,
    remaining: usize,
    seen: Vec<Component>,
    failed: bool,
}

impl V1StationReader<BufReader<File>> {
    /// Opens `path` and parses the station header, ready to stream
    /// components.
    pub fn open(path: &Path) -> Result<Self, FormatError> {
        let sc = Scanner::open(path)?;
        Self::start(sc).map_err(|e| e.in_file(path))
    }
}

impl<B: BufRead> V1StationReader<B> {
    /// Starts streaming from any buffered source.
    pub fn from_reader(src: B) -> Result<Self, FormatError> {
        Self::start(Scanner::new(src))
    }

    fn start(mut sc: Scanner<B>) -> Result<Self, FormatError> {
        sc.expect_magic(MAGIC_STATION)?;
        let head = V1StationFile::scan_head(&mut sc)?;
        if head.count == 0 {
            return Err(FormatError::InvalidValue(
                "station file has no components".into(),
            ));
        }
        Ok(V1StationReader {
            sc,
            header: head.header,
            remaining: head.count,
            seen: Vec::new(),
            failed: false,
        })
    }

    /// The station header shared by all components.
    pub fn header(&self) -> &RecordHeader {
        &self.header
    }

    /// Components not yet streamed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    fn next_component(&mut self) -> Result<V1ComponentFile, FormatError> {
        let name = self.sc.expect_kv("COMPONENT")?;
        let component = Component::from_name(&name)?;
        if self.seen.contains(&component) {
            return Err(FormatError::InvalidValue(format!(
                "duplicate component {component}"
            )));
        }
        self.seen.push(component);
        let data = read_triple(&mut self.sc)?;
        let file = V1ComponentFile {
            header: self.header.clone(),
            component,
            data,
        };
        file.validate()?;
        Ok(file)
    }
}

impl<B: BufRead> Iterator for V1StationReader<B> {
    type Item = Result<V1ComponentFile, FormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let result = self.next_component().map_err(|e| {
            self.failed = true;
            match self.sc.path() {
                Some(p) => e.in_file(p),
                None => e,
            }
        });
        Some(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> RecordHeader {
        RecordHeader::new("SSLB", "ES-2019-0731", "2019-07-31T03:04:05Z", 0.01).unwrap()
    }

    fn sample_triple(n: usize, seed: f64) -> MotionTriple {
        let acc: Vec<f64> = (0..n).map(|i| ((i as f64 + seed) * 0.37).sin()).collect();
        MotionTriple::from_acceleration(acc, 0.01).unwrap()
    }

    #[test]
    fn station_file_roundtrip() {
        let file = V1StationFile {
            header: sample_header(),
            components: Component::ALL
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, sample_triple(50, i as f64)))
                .collect(),
        };
        let text = file.to_text();
        let back = V1StationFile::from_text(&text).unwrap();
        assert_eq!(file.header, back.header);
        assert_eq!(file.components.len(), back.components.len());
        for ((c1, t1), (c2, t2)) in file.components.iter().zip(&back.components) {
            assert_eq!(c1, c2);
            for (a, b) in t1.acc.iter().zip(&t2.acc) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn component_file_roundtrip_via_disk() {
        let dir = std::env::temp_dir().join(format!("arp-v1-{}", std::process::id()));
        let file = V1ComponentFile {
            header: sample_header(),
            component: Component::Transversal,
            data: sample_triple(33, 0.0),
        };
        let path = dir.join("SSLBt.v1");
        file.write(&path).unwrap();
        let back = V1ComponentFile::read(&path).unwrap();
        assert_eq!(back.component, Component::Transversal);
        assert_eq!(back.data.len(), 33);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn split_produces_per_component_files() {
        let file = V1StationFile {
            header: sample_header(),
            components: vec![
                (Component::Longitudinal, sample_triple(10, 0.0)),
                (Component::Vertical, sample_triple(10, 1.0)),
            ],
        };
        let parts = file.split();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].component, Component::Longitudinal);
        assert_eq!(parts[1].component, Component::Vertical);
        assert_eq!(parts[0].header, file.header);
    }

    #[test]
    fn station_reader_streams_same_parts_as_split() {
        let file = V1StationFile {
            header: sample_header(),
            components: Component::ALL
                .iter()
                .enumerate()
                .map(|(i, &c)| (c, sample_triple(40, i as f64)))
                .collect(),
        };
        let text = file.to_text();
        let reader = V1StationReader::from_reader(text.as_bytes()).unwrap();
        let streamed: Vec<_> = reader.map(Result::unwrap).collect();
        assert_eq!(streamed, file.split());
    }

    #[test]
    fn station_reader_from_disk() {
        let dir = std::env::temp_dir().join(format!("arp-v1r-{}", std::process::id()));
        let file = V1StationFile {
            header: sample_header(),
            components: vec![(Component::Vertical, sample_triple(25, 0.0))],
        };
        let path = dir.join("SSLB.v1");
        file.write(&path).unwrap();
        let mut reader = V1StationReader::open(&path).unwrap();
        assert_eq!(reader.remaining(), 1);
        let part = reader.next().unwrap().unwrap();
        assert_eq!(part.component, Component::Vertical);
        assert!(reader.next().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn station_reader_rejects_duplicates_and_stops() {
        let file = V1StationFile {
            header: sample_header(),
            components: vec![(Component::Vertical, sample_triple(5, 0.0))],
        };
        let text = file.to_text().replace("COMPONENTS: 1", "COMPONENTS: 2");
        // Duplicate the whole component section.
        let idx = text.find("COMPONENT: VERTICAL").unwrap();
        let dup = format!("{}{}", text, &text[idx..]);
        let mut reader = V1StationReader::from_reader(dup.as_bytes()).unwrap();
        assert!(reader.next().unwrap().is_ok());
        assert!(reader.next().unwrap().is_err());
        // After an error, the iterator fuses.
        assert!(reader.next().is_none());
    }

    #[test]
    fn station_reader_rejects_empty_station() {
        let text = "ARP-V1S 1.0\nSTATION: X\nEVENT: E\nORIGIN: t\nDT: 0.01\nUNITS: cm/s2\nINSTRUMENT: i\nCOMPONENTS: 0\n";
        assert!(V1StationReader::from_reader(text.as_bytes()).is_err());
    }

    #[test]
    fn data_points_counts_acc_samples() {
        let file = V1StationFile {
            header: sample_header(),
            components: vec![
                (Component::Longitudinal, sample_triple(10, 0.0)),
                (Component::Transversal, sample_triple(20, 0.0)),
            ],
        };
        assert_eq!(file.data_points(), 30);
    }

    #[test]
    fn rejects_duplicate_components() {
        let file = V1StationFile {
            header: sample_header(),
            components: vec![
                (Component::Vertical, sample_triple(10, 0.0)),
                (Component::Vertical, sample_triple(10, 0.0)),
            ],
        };
        assert!(file.validate().is_err());
    }

    #[test]
    fn rejects_empty_station_file() {
        let file = V1StationFile {
            header: sample_header(),
            components: vec![],
        };
        assert!(file.validate().is_err());
    }

    #[test]
    fn rejects_mismatched_trace_lengths() {
        let mut t = sample_triple(10, 0.0);
        t.vel.pop();
        let file = V1ComponentFile {
            header: sample_header(),
            component: Component::Longitudinal,
            data: t,
        };
        assert!(file.validate().is_err());
        let text = file.to_text();
        assert!(V1ComponentFile::from_text(&text).is_err());
    }

    #[test]
    fn corrupt_text_rejected() {
        assert!(V1ComponentFile::from_text("garbage").is_err());
        assert!(V1StationFile::from_text("ARP-V1S 1.0\nSTATION: X\n").is_err());
        // wrong magic for the type
        let file = V1ComponentFile {
            header: sample_header(),
            component: Component::Longitudinal,
            data: sample_triple(5, 0.0),
        };
        assert!(V1StationFile::from_text(&file.to_text()).is_err());
    }

    #[test]
    fn truncated_block_rejected() {
        let file = V1ComponentFile {
            header: sample_header(),
            component: Component::Longitudinal,
            data: sample_triple(20, 0.0),
        };
        let text = file.to_text();
        let cut = &text[..text.len() / 2];
        assert!(V1ComponentFile::from_text(cut).is_err());
    }

    #[test]
    fn read_error_names_file_and_line() {
        let dir = std::env::temp_dir().join(format!("arp-v1e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.v1");
        std::fs::write(
            &path,
            "ARP-V1C 1.0\nSTATION: OK1\nEVENT: E\nORIGIN: t\nDT: zero\n",
        )
        .unwrap();
        let err = V1ComponentFile::read(&path).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad.v1"), "{msg}");
        assert!(msg.contains("line 5"), "{msg}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
