//! `R` files — response spectra (`<station><c>.r`), output of process #16.
//!
//! One file holds the spectra for every standard damping ratio.

use crate::error::FormatError;
use crate::fsio::write_file;
use crate::numio::{write_block, write_kv, write_magic, Scanner};
use crate::types::Component;
use arp_dsp::respspec::ResponseSpectrum;
use std::io::BufRead;
use std::path::Path;

pub(crate) const MAGIC: &str = "ARP-R";

/// Header portion of an R file: everything before the period grid.
pub(crate) struct RHead {
    pub station: String,
    pub event_id: String,
    pub component: Component,
    pub dampings: usize,
}

/// A response-spectrum file for one component.
#[derive(Debug, Clone, PartialEq)]
pub struct RFile {
    /// Station code.
    pub station: String,
    /// Event identifier.
    pub event_id: String,
    /// Component the spectra belong to.
    pub component: Component,
    /// One spectrum per damping ratio, all sharing the same period grid.
    pub spectra: Vec<ResponseSpectrum>,
}

impl RFile {
    /// Validates internal consistency: at least one damping, shared period
    /// grid, matching column lengths.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.spectra.is_empty() {
            return Err(FormatError::InvalidValue("no spectra".into()));
        }
        let periods = &self.spectra[0].periods;
        for s in &self.spectra {
            if &s.periods != periods {
                return Err(FormatError::InvalidValue(
                    "spectra use different period grids".into(),
                ));
            }
            let n = s.periods.len();
            if s.sd.len() != n || s.sv.len() != n || s.sa.len() != n {
                return Err(FormatError::InvalidValue(
                    "spectrum column lengths differ".into(),
                ));
            }
            if !(0.0..1.0).contains(&s.damping) {
                return Err(FormatError::InvalidValue(format!(
                    "damping {} out of range",
                    s.damping
                )));
            }
        }
        Ok(())
    }

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_magic(&mut out, MAGIC);
        write_kv(&mut out, "STATION", &self.station);
        write_kv(&mut out, "EVENT", &self.event_id);
        write_kv(&mut out, "COMPONENT", self.component.name());
        write_kv(&mut out, "DAMPINGS", self.spectra.len());
        write_block(&mut out, "PERIODS", &self.spectra[0].periods);
        for s in &self.spectra {
            write_kv(&mut out, "DAMPING", format!("{:.6}", s.damping));
            write_block(&mut out, "SD", &s.sd);
            write_block(&mut out, "SV", &s.sv);
            write_block(&mut out, "SA", &s.sa);
        }
        out
    }

    pub(crate) fn scan_head<B: BufRead>(sc: &mut Scanner<B>) -> Result<RHead, FormatError> {
        let station = sc.expect_kv("STATION")?;
        let event_id = sc.expect_kv("EVENT")?;
        let component = Component::from_name(&sc.expect_kv("COMPONENT")?)?;
        let dampings = sc.expect_kv_usize("DAMPINGS")?;
        Ok(RHead {
            station,
            event_id,
            component,
            dampings,
        })
    }

    pub(crate) fn finish_body<B: BufRead>(
        sc: &mut Scanner<B>,
        head: RHead,
    ) -> Result<Self, FormatError> {
        let periods = sc.read_block("PERIODS")?;
        let mut spectra = Vec::with_capacity(head.dampings);
        for _ in 0..head.dampings {
            let damping = sc.expect_kv_f64("DAMPING")?;
            let sd = sc.read_block("SD")?;
            let sv = sc.read_block("SV")?;
            let sa = sc.read_block("SA")?;
            spectra.push(ResponseSpectrum {
                periods: periods.clone(),
                damping,
                sd,
                sv,
                sa,
            });
        }
        let file = RFile {
            station: head.station,
            event_id: head.event_id,
            component: head.component,
            spectra,
        };
        file.validate()?;
        Ok(file)
    }

    pub(crate) fn from_scanner<B: BufRead>(sc: &mut Scanner<B>) -> Result<Self, FormatError> {
        sc.expect_magic(MAGIC)?;
        let head = Self::scan_head(sc)?;
        Self::finish_body(sc, head)
    }

    /// Parses from the text format.
    pub fn from_text(text: &str) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::from_text(text))
    }

    /// Parses from any buffered reader, consuming one record.
    pub fn from_reader<B: BufRead>(src: B) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::new(src))
    }

    /// Writes to `path`.
    pub fn write(&self, path: &Path) -> Result<(), FormatError> {
        write_file(path, &self.to_text())
    }

    /// Reads from `path`, streaming with a bounded buffer.
    pub fn read(path: &Path) -> Result<Self, FormatError> {
        let mut sc = Scanner::open(path)?;
        Self::from_scanner(&mut sc).map_err(|e| e.in_file(path))
    }

    /// Returns the spectrum closest to the requested damping ratio, if any.
    pub fn at_damping(&self, damping: f64) -> Option<&ResponseSpectrum> {
        self.spectra.iter().min_by(|a, b| {
            (a.damping - damping)
                .abs()
                .partial_cmp(&(b.damping - damping).abs())
                .unwrap()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_dsp::respspec::{log_spaced_periods, response_spectrum, ResponseMethod};

    fn sample() -> RFile {
        let dt = 0.01;
        let acc: Vec<f64> = (0..400).map(|i| (i as f64 * 0.11).sin() * 9.0).collect();
        let periods = log_spaced_periods(0.1, 5.0, 20);
        let spectra = [0.02, 0.05]
            .iter()
            .map(|&z| {
                response_spectrum(&acc, dt, &periods, z, ResponseMethod::NigamJennings).unwrap()
            })
            .collect();
        RFile {
            station: "UCAX".into(),
            event_id: "EV3".into(),
            component: Component::Transversal,
            spectra,
        }
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let back = RFile::from_text(&f.to_text()).unwrap();
        assert_eq!(back.spectra.len(), 2);
        assert!((back.spectra[1].damping - 0.05).abs() < 1e-9);
        for (a, b) in back.spectra[0].sa.iter().zip(f.spectra[0].sa.iter()) {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1e-15));
        }
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("arp-r-{}", std::process::id()));
        let f = sample();
        let p = dir.join("UCAXt.r");
        f.write(&p).unwrap();
        assert_eq!(RFile::read(&p).unwrap().station, "UCAX");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn at_damping_picks_nearest() {
        let f = sample();
        assert!((f.at_damping(0.04).unwrap().damping - 0.05).abs() < 1e-12);
        assert!((f.at_damping(0.01).unwrap().damping - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_spectra_rejected() {
        let f = RFile {
            station: "X".into(),
            event_id: "E".into(),
            component: Component::Vertical,
            spectra: vec![],
        };
        assert!(f.validate().is_err());
    }

    #[test]
    fn differing_period_grids_rejected() {
        let mut f = sample();
        f.spectra[1].periods[0] *= 2.0;
        assert!(f.validate().is_err());
    }

    #[test]
    fn out_of_range_damping_rejected() {
        let mut f = sample();
        f.spectra[0].damping = 1.5;
        assert!(f.validate().is_err());
    }
}
