//! Shared domain types: components, stations, record headers.

use crate::error::FormatError;
use std::fmt;

/// The three motion components a strong-motion sensor records.
///
/// ```
/// use arp_formats::Component;
///
/// assert_eq!(Component::Longitudinal.code(), 'l');
/// assert_eq!(Component::from_code('V').unwrap(), Component::Vertical);
/// assert_eq!(Component::from_name("transversal").unwrap(), Component::Transversal);
/// assert!(Component::from_code('x').is_err());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Component {
    /// Longitudinal (horizontal, along instrument axis) — code `l`.
    Longitudinal,
    /// Transversal (horizontal, across instrument axis) — code `t`.
    Transversal,
    /// Vertical — code `v`.
    Vertical,
}

impl Component {
    /// All components in canonical order (L, T, V).
    pub const ALL: [Component; 3] = [
        Component::Longitudinal,
        Component::Transversal,
        Component::Vertical,
    ];

    /// One-letter code used in file names (`l`, `t`, `v`).
    pub fn code(self) -> char {
        match self {
            Component::Longitudinal => 'l',
            Component::Transversal => 't',
            Component::Vertical => 'v',
        }
    }

    /// Parses a one-letter code (case-insensitive).
    pub fn from_code(c: char) -> Result<Self, FormatError> {
        match c.to_ascii_lowercase() {
            'l' => Ok(Component::Longitudinal),
            't' => Ok(Component::Transversal),
            'v' => Ok(Component::Vertical),
            other => Err(FormatError::InvalidValue(format!(
                "unknown component code {other:?}"
            ))),
        }
    }

    /// Full name used in file headers.
    pub fn name(self) -> &'static str {
        match self {
            Component::Longitudinal => "LONGITUDINAL",
            Component::Transversal => "TRANSVERSAL",
            Component::Vertical => "VERTICAL",
        }
    }

    /// Parses the header name (case-insensitive); accepts the one-letter
    /// code too.
    pub fn from_name(s: &str) -> Result<Self, FormatError> {
        match s.trim().to_ascii_uppercase().as_str() {
            "LONGITUDINAL" | "L" => Ok(Component::Longitudinal),
            "TRANSVERSAL" | "T" => Ok(Component::Transversal),
            "VERTICAL" | "V" => Ok(Component::Vertical),
            other => Err(FormatError::InvalidValue(format!(
                "unknown component name {other:?}"
            ))),
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The three ground-motion quantities stored in processed files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Quantity {
    /// Acceleration — code `A`.
    Acceleration,
    /// Velocity — code `V`.
    Velocity,
    /// Displacement — code `D`.
    Displacement,
}

impl Quantity {
    /// All quantities in canonical order (A, V, D).
    pub const ALL: [Quantity; 3] = [
        Quantity::Acceleration,
        Quantity::Velocity,
        Quantity::Displacement,
    ];

    /// One-letter code used in GEM file names.
    pub fn code(self) -> char {
        match self {
            Quantity::Acceleration => 'A',
            Quantity::Velocity => 'V',
            Quantity::Displacement => 'D',
        }
    }

    /// Parses the one-letter code (case-insensitive).
    pub fn from_code(c: char) -> Result<Self, FormatError> {
        match c.to_ascii_uppercase() {
            'A' => Ok(Quantity::Acceleration),
            'V' => Ok(Quantity::Velocity),
            'D' => Ok(Quantity::Displacement),
            other => Err(FormatError::InvalidValue(format!(
                "unknown quantity code {other:?}"
            ))),
        }
    }
}

/// Metadata carried in every record file header.
///
/// ```
/// use arp_formats::RecordHeader;
///
/// let h = RecordHeader::new("SSLB", "ES-2019-0731", "2019-07-31T03:04:05Z", 0.01).unwrap();
/// assert_eq!(h.units, "cm/s2");
/// // Station codes must be alphanumeric; dt must be positive.
/// assert!(RecordHeader::new("BAD CODE", "E", "t", 0.01).is_err());
/// assert!(RecordHeader::new("SSLB", "E", "t", -1.0).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecordHeader {
    /// Station code, e.g. `SSLB` (alphanumeric, non-empty).
    pub station: String,
    /// Event identifier, e.g. `ES-2019-0731`.
    pub event_id: String,
    /// Event origin time, ISO-8601 text (treated as opaque).
    pub origin_time: String,
    /// Sampling interval in seconds (> 0).
    pub dt: f64,
    /// Acceleration units label (the pipeline uses `cm/s2`).
    pub units: String,
    /// Instrument description (free text).
    pub instrument: String,
}

impl RecordHeader {
    /// Creates a header, validating the station code and dt.
    pub fn new(
        station: impl Into<String>,
        event_id: impl Into<String>,
        origin_time: impl Into<String>,
        dt: f64,
    ) -> Result<Self, FormatError> {
        let h = RecordHeader {
            station: station.into(),
            event_id: event_id.into(),
            origin_time: origin_time.into(),
            dt,
            units: "cm/s2".to_string(),
            instrument: "synthetic".to_string(),
        };
        h.validate()?;
        Ok(h)
    }

    /// Checks invariants: non-empty alphanumeric station, positive finite dt.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.station.is_empty() || !self.station.chars().all(|c| c.is_ascii_alphanumeric()) {
            return Err(FormatError::InvalidValue(format!(
                "station code {:?} must be non-empty alphanumeric",
                self.station
            )));
        }
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return Err(FormatError::InvalidValue(format!(
                "dt {} must be positive and finite",
                self.dt
            )));
        }
        Ok(())
    }
}

/// Acceleration, velocity and displacement traces of one component, all the
/// same length and sampling interval.
///
/// ```
/// use arp_formats::{MotionTriple, Quantity};
///
/// let t = MotionTriple::from_acceleration(vec![0.0, 1.0, 0.0, -1.0], 0.01).unwrap();
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.get(Quantity::Velocity).len(), 4);
/// assert!(t.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct MotionTriple {
    /// Acceleration trace (cm/s²).
    pub acc: Vec<f64>,
    /// Velocity trace (cm/s).
    pub vel: Vec<f64>,
    /// Displacement trace (cm).
    pub disp: Vec<f64>,
}

impl MotionTriple {
    /// Builds the triple from acceleration by trapezoidal integration.
    pub fn from_acceleration(acc: Vec<f64>, dt: f64) -> Result<Self, FormatError> {
        let (vel, disp) = arp_dsp::integrate::acc_to_vel_disp(&acc, dt)
            .map_err(|e| FormatError::InvalidValue(e.to_string()))?;
        Ok(MotionTriple { acc, vel, disp })
    }

    /// Number of samples (acceleration length).
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// True when the traces are empty.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Checks that all three traces have equal length.
    pub fn validate(&self) -> Result<(), FormatError> {
        if self.acc.len() != self.vel.len() || self.acc.len() != self.disp.len() {
            return Err(FormatError::InvalidValue(format!(
                "trace length mismatch: acc {} vel {} disp {}",
                self.acc.len(),
                self.vel.len(),
                self.disp.len()
            )));
        }
        Ok(())
    }

    /// Selects the trace for a [`Quantity`].
    pub fn get(&self, q: Quantity) -> &[f64] {
        match q {
            Quantity::Acceleration => &self.acc,
            Quantity::Velocity => &self.vel,
            Quantity::Displacement => &self.disp,
        }
    }
}

/// File-name helpers implementing the pipeline's naming scheme.
///
/// ```
/// use arp_formats::{names, Component, Quantity};
///
/// assert_eq!(names::v1_station("SSLB"), "SSLB.v1");
/// assert_eq!(names::v2_component("SSLB", Component::Transversal), "SSLBt.v2");
/// assert_eq!(names::gem("SSLB", Component::Longitudinal, true, Quantity::Acceleration),
///            "SSLBlGEMRA.gem");
/// ```
pub mod names {
    use super::{Component, Quantity};

    /// `<station>.v1` — raw multi-component record.
    pub fn v1_station(station: &str) -> String {
        format!("{station}.v1")
    }

    /// `<station><c>.v1` — single-component uncorrected record.
    pub fn v1_component(station: &str, comp: Component) -> String {
        format!("{station}{}.v1", comp.code())
    }

    /// `<station><c>.v2` — corrected record.
    pub fn v2_component(station: &str, comp: Component) -> String {
        format!("{station}{}.v2", comp.code())
    }

    /// `<station><c>.f` — Fourier spectrum file.
    pub fn f_component(station: &str, comp: Component) -> String {
        format!("{station}{}.f", comp.code())
    }

    /// `<station><c>.r` — response spectrum file.
    pub fn r_component(station: &str, comp: Component) -> String {
        format!("{station}{}.r", comp.code())
    }

    /// `<station><c>GEM<2|R><A|V|D>.gem` — GEM product file.
    pub fn gem(station: &str, comp: Component, from_response: bool, quantity: Quantity) -> String {
        format!(
            "{station}{}GEM{}{}.gem",
            comp.code(),
            if from_response { 'R' } else { '2' },
            quantity.code()
        )
    }

    /// `<station>.ps` — accelerograph plot.
    pub fn plot_acc(station: &str) -> String {
        format!("{station}.ps")
    }

    /// `<station>f.ps` — Fourier spectrum plot.
    pub fn plot_fourier(station: &str) -> String {
        format!("{station}f.ps")
    }

    /// `<station>r.ps` — response spectrum plot.
    pub fn plot_response(station: &str) -> String {
        format!("{station}r.ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_codes_roundtrip() {
        for c in Component::ALL {
            assert_eq!(Component::from_code(c.code()).unwrap(), c);
            assert_eq!(Component::from_name(c.name()).unwrap(), c);
        }
        assert_eq!(Component::from_code('L').unwrap(), Component::Longitudinal);
        assert!(Component::from_code('x').is_err());
        assert!(Component::from_name("sideways").is_err());
    }

    #[test]
    fn quantity_codes_roundtrip() {
        for q in Quantity::ALL {
            assert_eq!(Quantity::from_code(q.code()).unwrap(), q);
        }
        assert_eq!(Quantity::from_code('a').unwrap(), Quantity::Acceleration);
        assert!(Quantity::from_code('z').is_err());
    }

    #[test]
    fn header_validation() {
        assert!(RecordHeader::new("SSLB", "EV1", "2019-07-31T03:04:05Z", 0.01).is_ok());
        assert!(RecordHeader::new("", "EV1", "t", 0.01).is_err());
        assert!(RecordHeader::new("BAD CODE", "EV1", "t", 0.01).is_err());
        assert!(RecordHeader::new("OK1", "EV1", "t", 0.0).is_err());
        assert!(RecordHeader::new("OK1", "EV1", "t", f64::NAN).is_err());
    }

    #[test]
    fn file_names() {
        use names::*;
        assert_eq!(v1_station("SSLB"), "SSLB.v1");
        assert_eq!(v1_component("SSLB", Component::Longitudinal), "SSLBl.v1");
        assert_eq!(v2_component("SSLB", Component::Transversal), "SSLBt.v2");
        assert_eq!(f_component("SSLB", Component::Vertical), "SSLBv.f");
        assert_eq!(r_component("SSLB", Component::Longitudinal), "SSLBl.r");
        assert_eq!(
            gem(
                "SSLB",
                Component::Longitudinal,
                false,
                Quantity::Acceleration
            ),
            "SSLBlGEM2A.gem"
        );
        assert_eq!(
            gem("SSLB", Component::Vertical, true, Quantity::Displacement),
            "SSLBvGEMRD.gem"
        );
        assert_eq!(plot_acc("X1"), "X1.ps");
        assert_eq!(plot_fourier("X1"), "X1f.ps");
        assert_eq!(plot_response("X1"), "X1r.ps");
    }

    #[test]
    fn component_display() {
        assert_eq!(Component::Vertical.to_string(), "VERTICAL");
    }
}
