//! Reader buffer accounting: resident bytes-in-flight gauges.
//!
//! Every reader in this crate registers the bytes it keeps resident while
//! parsing — the full text for the whole-file path
//! ([`from_text`](crate::v1::V1StationFile::from_text)), only the stream
//! buffer for the streaming path ([`Scanner::open`](crate::numio::Scanner)).
//! The gauges let benchmarks compare the two paths' peak memory footprint
//! (`report batch` writes the peaks to `BENCH_batch.json`).
//!
//! ```
//! use arp_formats::stats;
//!
//! stats::reset_peak();
//! {
//!     let _g = stats::track(1024);
//!     assert!(stats::current() >= 1024);
//! }
//! assert!(stats::peak() >= 1024);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// Bytes currently resident across all live format readers.
static IN_FLIGHT: AtomicU64 = AtomicU64::new(0);
/// Highest value [`IN_FLIGHT`] has reached since the last reset.
static PEAK: AtomicU64 = AtomicU64::new(0);

/// Bytes currently held by live readers.
pub fn current() -> u64 {
    IN_FLIGHT.load(Ordering::Relaxed)
}

/// Peak resident reader bytes since the last [`reset_peak`].
pub fn peak() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak gauge to the current in-flight value.
pub fn reset_peak() {
    PEAK.store(IN_FLIGHT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Registers `bytes` as resident until the returned guard drops.
pub fn track(bytes: u64) -> InFlightGuard {
    let now = IN_FLIGHT.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(now, Ordering::Relaxed);
    InFlightGuard { bytes }
}

/// RAII handle for a tracked reader buffer; decrements the gauge on drop.
#[derive(Debug)]
pub struct InFlightGuard {
    bytes: u64,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        IN_FLIGHT.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_tracks_and_releases() {
        let before = current();
        let g = track(4096);
        assert!(current() >= before + 4096);
        assert!(peak() >= before + 4096);
        drop(g);
        // Other threads may hold guards concurrently; only our delta is known.
        assert!(current() < before + 4096 || current() >= before);
    }

    #[test]
    fn peak_survives_drop_until_reset() {
        let _g = track(123);
        let p = peak();
        assert!(p >= 123);
    }
}
