//! Shared low-level reader/writer for the text file formats.
//!
//! All pipeline files share one scheme:
//!
//! ```text
//! <MAGIC> 1.0            e.g.  ARP-V2 1.0
//! KEY: value             header fields, one per line
//! ...
//! BEGIN <BLOCK> <count>  numeric blocks
//!   v v v v v v          six values per line, %.16e (full f64 round-trip precision)
//! END <BLOCK>
//! ```
//!
//! [`Scanner`] provides a positioned line cursor over any [`BufRead`]
//! source. Lines are pulled from the source one at a time, so parsing a
//! multi-megabyte record keeps only the stream buffer resident — never the
//! whole file (the [`crate::stats`] gauges measure exactly this). The
//! `write_*` helpers produce the same layout.
//!
//! ```
//! use arp_formats::numio::Scanner;
//!
//! let mut sc = Scanner::from_text("ARP-X 1.0\nNPTS: 3\nBEGIN A 3\n1 2 3\nEND A\n");
//! sc.expect_magic("ARP-X").unwrap();
//! assert_eq!(sc.expect_kv_usize("NPTS").unwrap(), 3);
//! assert_eq!(sc.read_block("A").unwrap(), vec![1.0, 2.0, 3.0]);
//! ```

use crate::error::FormatError;
use crate::stats;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

/// Values printed per line in numeric blocks.
const VALUES_PER_LINE: usize = 6;

/// Stream buffer capacity for file-backed scanners (bytes). This bounds the
/// resident footprint of the streaming path regardless of record size.
pub const STREAM_BUF_BYTES: usize = 64 * 1024;

/// A positioned line cursor over a buffered byte stream.
///
/// Blank lines are skipped; line numbers are 1-based positions in the
/// underlying stream so parse errors point at the offending line.
pub struct Scanner<B> {
    src: B,
    /// Next non-empty line, already trimmed of the trailing newline.
    peeked: Option<String>,
    /// 1-based line number of `peeked`.
    peeked_no: usize,
    /// Lines consumed from `src` so far.
    consumed: usize,
    /// Path for error annotation, when file-backed.
    path: Option<PathBuf>,
    /// Keeps the resident-bytes gauge honest for this scanner's buffer.
    _in_flight: Option<stats::InFlightGuard>,
}

impl<'a> Scanner<&'a [u8]> {
    /// Creates a scanner over in-memory text.
    ///
    /// The whole text is already resident, so the full length is registered
    /// with the [`crate::stats`] gauges for the scanner's lifetime — this is
    /// what makes the whole-file and streaming paths comparable.
    pub fn from_text(text: &'a str) -> Self {
        let guard = stats::track(text.len() as u64);
        let mut sc = Scanner::new(text.as_bytes());
        sc._in_flight = Some(guard);
        sc
    }
}

impl Scanner<BufReader<File>> {
    /// Opens `path` for streaming with a bounded buffer
    /// ([`STREAM_BUF_BYTES`], or the file length if smaller).
    pub fn open(path: &Path) -> Result<Self, FormatError> {
        let file = File::open(path).map_err(|e| FormatError::io(path, e))?;
        let len = file
            .metadata()
            .map(|m| m.len() as usize)
            .unwrap_or(STREAM_BUF_BYTES);
        let cap = len.clamp(1, STREAM_BUF_BYTES);
        let guard = stats::track(cap as u64);
        let mut sc = Scanner::new(BufReader::with_capacity(cap, file));
        sc.path = Some(path.to_path_buf());
        sc._in_flight = Some(guard);
        Ok(sc)
    }
}

impl<B: BufRead> Scanner<B> {
    /// Creates a scanner over any buffered source.
    pub fn new(src: B) -> Self {
        Scanner {
            src,
            peeked: None,
            peeked_no: 0,
            consumed: 0,
            path: None,
            _in_flight: None,
        }
    }

    /// The file this scanner reads, when file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    fn read_err(&self, e: std::io::Error) -> FormatError {
        let path = self
            .path
            .clone()
            .unwrap_or_else(|| PathBuf::from("<stream>"));
        FormatError::io(path, e)
    }

    /// Pulls lines from the source until a non-empty one is buffered (or EOF).
    fn fill_peek(&mut self) -> Result<(), FormatError> {
        while self.peeked.is_none() {
            let mut buf = String::new();
            let n = self.src.read_line(&mut buf).map_err(|e| self.read_err(e))?;
            if n == 0 {
                return Ok(());
            }
            self.consumed += 1;
            if buf.trim().is_empty() {
                continue;
            }
            while buf.ends_with('\n') || buf.ends_with('\r') {
                buf.pop();
            }
            self.peeked_no = self.consumed;
            self.peeked = Some(buf);
        }
        Ok(())
    }

    /// 1-based line number of the next unread non-empty line (blank lines
    /// are skipped first, so errors point at real content). An I/O failure
    /// while looking ahead is deferred to the next consuming call.
    pub fn line_number(&mut self) -> usize {
        let _ = self.fill_peek();
        if self.peeked.is_some() {
            self.peeked_no
        } else {
            self.consumed + 1
        }
    }

    /// True when only blank lines (or nothing) remain.
    pub fn at_end(&mut self) -> Result<bool, FormatError> {
        Ok(self.peek()?.is_none())
    }

    /// Returns the next non-empty line without consuming it.
    pub fn peek(&mut self) -> Result<Option<&str>, FormatError> {
        self.fill_peek()?;
        Ok(self.peeked.as_deref())
    }

    /// Consumes and returns the next non-empty line.
    pub fn next_line(&mut self) -> Result<String, FormatError> {
        self.fill_peek()?;
        self.peeked
            .take()
            .ok_or_else(|| FormatError::syntax(self.line_number(), "unexpected end of file"))
    }

    /// Consumes the magic line, checking the leading token.
    pub fn expect_magic(&mut self, magic: &'static str) -> Result<(), FormatError> {
        let line = self.next_line()?;
        if line.split_whitespace().next() != Some(magic) {
            return Err(FormatError::BadMagic {
                expected: magic,
                found: line,
            });
        }
        Ok(())
    }

    /// Consumes a `KEY: value` line with the given key; returns the value.
    pub fn expect_kv(&mut self, key: &'static str) -> Result<String, FormatError> {
        let ln = self.line_number();
        let line = self.next_line()?;
        let (k, v) = line.split_once(':').ok_or_else(|| {
            FormatError::syntax(ln, format!("expected `{key}: ...`, got {line:?}"))
        })?;
        if k.trim() != key {
            return Err(FormatError::syntax(
                ln,
                format!("expected key {key:?}, got {:?}", k.trim()),
            ));
        }
        Ok(v.trim().to_string())
    }

    /// Like [`Scanner::expect_kv`] but parses the value as `f64`.
    pub fn expect_kv_f64(&mut self, key: &'static str) -> Result<f64, FormatError> {
        let ln = self.line_number();
        let v = self.expect_kv(key)?;
        v.parse::<f64>()
            .map_err(|e| FormatError::syntax(ln, format!("bad number for {key}: {e}")))
    }

    /// Like [`Scanner::expect_kv`] but parses the value as `usize`.
    pub fn expect_kv_usize(&mut self, key: &'static str) -> Result<usize, FormatError> {
        let ln = self.line_number();
        let v = self.expect_kv(key)?;
        v.parse::<usize>()
            .map_err(|e| FormatError::syntax(ln, format!("bad integer for {key}: {e}")))
    }

    /// Consumes a `BEGIN <name> <count>` line, returning the declared count.
    fn begin_block(&mut self, name: &str) -> Result<usize, FormatError> {
        let ln = self.line_number();
        let line = self.next_line()?;
        let mut parts = line.split_whitespace();
        if parts.next() != Some("BEGIN") {
            return Err(FormatError::syntax(
                ln,
                format!("expected `BEGIN {name} <count>`, got {line:?}"),
            ));
        }
        let got_name = parts
            .next()
            .ok_or_else(|| FormatError::syntax(ln, "BEGIN missing block name"))?;
        if got_name != name {
            return Err(FormatError::syntax(
                ln,
                format!("expected block {name:?}, got {got_name:?}"),
            ));
        }
        parts
            .next()
            .ok_or_else(|| FormatError::syntax(ln, "BEGIN missing count"))?
            .parse()
            .map_err(|e| FormatError::syntax(ln, format!("bad count: {e}")))
    }

    /// Reads a `BEGIN <name> <count> ... END <name>` numeric block.
    pub fn read_block(&mut self, name: &str) -> Result<Vec<f64>, FormatError> {
        let count = self.begin_block(name)?;
        let mut values = Vec::with_capacity(count);
        loop {
            let ln = self.line_number();
            let line = self.next_line()?;
            let trimmed = line.trim();
            if let Some(rest) = trimmed.strip_prefix("END") {
                let end_name = rest.trim();
                if !end_name.is_empty() && end_name != name {
                    return Err(FormatError::syntax(
                        ln,
                        format!("END {end_name:?} does not match BEGIN {name:?}"),
                    ));
                }
                break;
            }
            for tok in trimmed.split_whitespace() {
                let v: f64 = tok
                    .parse()
                    .map_err(|e| FormatError::syntax(ln, format!("bad value {tok:?}: {e}")))?;
                values.push(v);
            }
            if values.len() > count {
                return Err(FormatError::CountMismatch {
                    block: name.to_string(),
                    expected: count,
                    found: values.len(),
                });
            }
        }
        if values.len() != count {
            return Err(FormatError::CountMismatch {
                block: name.to_string(),
                expected: count,
                found: values.len(),
            });
        }
        Ok(values)
    }

    /// Skips a `BEGIN <name> <count> ... END <name>` block without parsing
    /// its values as numbers (tokens are only counted). Returns the declared
    /// count. This is the fast path record filters take when a record's
    /// header already fails the filter.
    pub fn skip_block(&mut self, name: &str) -> Result<usize, FormatError> {
        let count = self.begin_block(name)?;
        let mut found = 0usize;
        loop {
            let ln = self.line_number();
            let line = self.next_line()?;
            let trimmed = line.trim();
            if let Some(rest) = trimmed.strip_prefix("END") {
                let end_name = rest.trim();
                if !end_name.is_empty() && end_name != name {
                    return Err(FormatError::syntax(
                        ln,
                        format!("END {end_name:?} does not match BEGIN {name:?}"),
                    ));
                }
                break;
            }
            found += trimmed.split_whitespace().count();
            if found > count {
                return Err(FormatError::CountMismatch {
                    block: name.to_string(),
                    expected: count,
                    found,
                });
            }
        }
        if found != count {
            return Err(FormatError::CountMismatch {
                block: name.to_string(),
                expected: count,
                found,
            });
        }
        Ok(count)
    }

    /// Consumes lines until the next record magic (a line whose first token
    /// starts with `ARP-`) or end of stream. Used to skip the remainder of a
    /// filtered-out record in a multi-record stream.
    pub fn skip_to_magic(&mut self) -> Result<(), FormatError> {
        loop {
            match self.peek()? {
                None => return Ok(()),
                Some(line) => {
                    if line
                        .split_whitespace()
                        .next()
                        .is_some_and(|t| t.starts_with("ARP-"))
                    {
                        return Ok(());
                    }
                    self.next_line()?;
                }
            }
        }
    }
}

/// Appends the magic line.
pub fn write_magic(out: &mut String, magic: &str) {
    out.push_str(magic);
    out.push_str(" 1.0\n");
}

/// Appends a `KEY: value` line.
pub fn write_kv(out: &mut String, key: &str, value: impl std::fmt::Display) {
    let _ = writeln!(out, "{key}: {value}");
}

/// Appends a numeric block in the standard layout.
pub fn write_block(out: &mut String, name: &str, values: &[f64]) {
    let _ = writeln!(out, "BEGIN {name} {}", values.len());
    for chunk in values.chunks(VALUES_PER_LINE) {
        let mut first = true;
        for v in chunk {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{v:.16e}");
            first = false;
        }
        out.push('\n');
    }
    let _ = writeln!(out, "END {name}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_roundtrip() {
        let mut s = String::new();
        write_magic(&mut s, "ARP-TEST");
        write_kv(&mut s, "STATION", "SSLB");
        write_kv(&mut s, "DT", 0.01);
        write_kv(&mut s, "NPTS", 42usize);

        let mut sc = Scanner::from_text(&s);
        sc.expect_magic("ARP-TEST").unwrap();
        assert_eq!(sc.expect_kv("STATION").unwrap(), "SSLB");
        assert!((sc.expect_kv_f64("DT").unwrap() - 0.01).abs() < 1e-15);
        assert_eq!(sc.expect_kv_usize("NPTS").unwrap(), 42);
        assert!(sc.at_end().unwrap());
    }

    #[test]
    fn block_roundtrip_preserves_values() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.377).sin() * 1e-3).collect();
        let mut s = String::new();
        write_block(&mut s, "ACC", &values);
        let mut sc = Scanner::from_text(&s);
        let back = sc.read_block("ACC").unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(values.iter()) {
            assert!((a - b).abs() < 1e-12 * b.abs().max(1e-12));
        }
    }

    #[test]
    fn empty_block_roundtrip() {
        let mut s = String::new();
        write_block(&mut s, "EMPTY", &[]);
        let mut sc = Scanner::from_text(&s);
        assert!(sc.read_block("EMPTY").unwrap().is_empty());
    }

    #[test]
    fn bad_magic_detected() {
        let mut sc = Scanner::from_text("WRONG 1.0\n");
        match sc.expect_magic("RIGHT") {
            Err(FormatError::BadMagic { expected, .. }) => assert_eq!(expected, "RIGHT"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_key_detected() {
        let mut sc = Scanner::from_text("FOO: 1\n");
        assert!(sc.expect_kv("BAR").is_err());
    }

    #[test]
    fn missing_colon_detected() {
        let mut sc = Scanner::from_text("FOO 1\n");
        assert!(sc.expect_kv("FOO").is_err());
    }

    #[test]
    fn count_mismatch_detected() {
        let text = "BEGIN X 5\n1 2 3\nEND X\n";
        let mut sc = Scanner::from_text(text);
        match sc.read_block("X") {
            Err(FormatError::CountMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, 5);
                assert_eq!(found, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overflow_count_detected() {
        let text = "BEGIN X 2\n1 2 3 4\nEND X\n";
        let mut sc = Scanner::from_text(text);
        assert!(matches!(
            sc.read_block("X"),
            Err(FormatError::CountMismatch { .. })
        ));
    }

    #[test]
    fn wrong_block_name_detected() {
        let text = "BEGIN Y 1\n1\nEND Y\n";
        let mut sc = Scanner::from_text(text);
        assert!(sc.read_block("X").is_err());
    }

    #[test]
    fn mismatched_end_name_detected() {
        let text = "BEGIN X 1\n1\nEND Y\n";
        let mut sc = Scanner::from_text(text);
        assert!(sc.read_block("X").is_err());
    }

    #[test]
    fn garbage_value_detected() {
        let text = "BEGIN X 2\n1 banana\nEND X\n";
        let mut sc = Scanner::from_text(text);
        match sc.read_block("X") {
            Err(FormatError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_file_detected() {
        let text = "BEGIN X 10\n1 2 3\n";
        let mut sc = Scanner::from_text(text);
        assert!(sc.read_block("X").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "\n\nKEY: v\n\n";
        let mut sc = Scanner::from_text(text);
        assert_eq!(sc.expect_kv("KEY").unwrap(), "v");
    }

    #[test]
    fn line_numbers_account_for_blank_lines() {
        let text = "A: 1\n\n\nB: two\n";
        let mut sc = Scanner::from_text(text);
        sc.expect_kv("A").unwrap();
        match sc.expect_kv_f64("B") {
            Err(FormatError::Syntax { line, .. }) => assert_eq!(line, 4),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn special_values_roundtrip() {
        let values = vec![0.0, -0.0, 1e-300, -1e300, 123.456789];
        let mut s = String::new();
        write_block(&mut s, "B", &values);
        let mut sc = Scanner::from_text(&s);
        let back = sc.read_block("B").unwrap();
        for (a, b) in back.iter().zip(values.iter()) {
            assert!((a - b).abs() <= 1e-9 * b.abs());
        }
    }

    #[test]
    fn skip_block_counts_without_parsing() {
        let text = "BEGIN X 4\n1 banana 3\nmore\nEND X\n";
        // skip_block tolerates non-numeric tokens but still enforces counts.
        let mut sc = Scanner::from_text(text);
        assert_eq!(sc.skip_block("X").unwrap(), 4);
        let mut sc = Scanner::from_text("BEGIN X 9\n1 2\nEND X\n");
        assert!(matches!(
            sc.skip_block("X"),
            Err(FormatError::CountMismatch { .. })
        ));
        let mut sc = Scanner::from_text("BEGIN X 1\n1 2\nEND X\n");
        assert!(sc.skip_block("X").is_err());
    }

    #[test]
    fn skip_to_magic_stops_at_next_record() {
        let text = "1 2 3\nEND ACC\nARP-V2 1.0\nSTATION: X\n";
        let mut sc = Scanner::from_text(text);
        sc.skip_to_magic().unwrap();
        assert_eq!(sc.peek().unwrap().unwrap(), "ARP-V2 1.0");
        // And at EOF it simply stops.
        let mut sc = Scanner::from_text("no magic here\n");
        sc.skip_to_magic().unwrap();
        assert!(sc.at_end().unwrap());
    }

    #[test]
    fn open_streams_from_disk_with_bounded_buffer() {
        let dir = std::env::temp_dir().join(format!("arp-numio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("block.txt");
        let values: Vec<f64> = (0..5000).map(|i| i as f64).collect();
        let mut s = String::new();
        write_block(&mut s, "V", &values);
        std::fs::write(&path, &s).unwrap();

        let mut sc = Scanner::open(&path).unwrap();
        assert_eq!(sc.path().unwrap(), path.as_path());
        let back = sc.read_block("V").unwrap();
        assert_eq!(back.len(), 5000);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_file_is_io_error() {
        assert!(matches!(
            Scanner::open(Path::new("/nonexistent/arp/scan")),
            Err(FormatError::Io { .. })
        ));
    }
}
