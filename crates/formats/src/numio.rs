//! Shared low-level reader/writer for the text file formats.
//!
//! All pipeline files share one scheme:
//!
//! ```text
//! <MAGIC> 1.0            e.g.  ARP-V2 1.0
//! KEY: value             header fields, one per line
//! ...
//! BEGIN <BLOCK> <count>  numeric blocks
//!   v v v v v v          six values per line, %.16e (full f64 round-trip precision)
//! END <BLOCK>
//! ```
//!
//! [`Scanner`] provides a line-cursor over file contents with positioned
//! errors; the `write_*` helpers produce the same layout.

use crate::error::FormatError;
use std::fmt::Write as _;

/// Values printed per line in numeric blocks.
const VALUES_PER_LINE: usize = 6;

/// A positioned line cursor over file contents.
pub struct Scanner<'a> {
    lines: Vec<&'a str>,
    /// Zero-based index of the next line to consume.
    pos: usize,
}

impl<'a> Scanner<'a> {
    /// Creates a scanner over the full text of a file.
    pub fn new(text: &'a str) -> Self {
        Scanner {
            lines: text.lines().collect(),
            pos: 0,
        }
    }

    /// 1-based line number of the next unread line.
    pub fn line_number(&self) -> usize {
        self.pos + 1
    }

    /// True when all lines are consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.lines.len()
    }

    /// Returns the next non-empty line without consuming it.
    pub fn peek(&mut self) -> Option<&'a str> {
        while self.pos < self.lines.len() && self.lines[self.pos].trim().is_empty() {
            self.pos += 1;
        }
        self.lines.get(self.pos).copied()
    }

    /// Consumes and returns the next non-empty line.
    pub fn next_line(&mut self) -> Result<&'a str, FormatError> {
        match self.peek() {
            Some(line) => {
                self.pos += 1;
                Ok(line)
            }
            None => Err(FormatError::syntax(
                self.line_number(),
                "unexpected end of file",
            )),
        }
    }

    /// Consumes the magic line, checking the leading token.
    pub fn expect_magic(&mut self, magic: &'static str) -> Result<(), FormatError> {
        let line = self.next_line()?;
        if line.split_whitespace().next() != Some(magic) {
            return Err(FormatError::BadMagic {
                expected: magic,
                found: line.to_string(),
            });
        }
        Ok(())
    }

    /// Consumes a `KEY: value` line with the given key; returns the value.
    pub fn expect_kv(&mut self, key: &'static str) -> Result<&'a str, FormatError> {
        let ln = self.line_number();
        let line = self.next_line()?;
        let (k, v) = line.split_once(':').ok_or_else(|| {
            FormatError::syntax(ln, format!("expected `{key}: ...`, got {line:?}"))
        })?;
        if k.trim() != key {
            return Err(FormatError::syntax(
                ln,
                format!("expected key {key:?}, got {:?}", k.trim()),
            ));
        }
        Ok(v.trim())
    }

    /// Like [`Scanner::expect_kv`] but parses the value as `f64`.
    pub fn expect_kv_f64(&mut self, key: &'static str) -> Result<f64, FormatError> {
        let ln = self.line_number();
        let v = self.expect_kv(key)?;
        v.parse::<f64>()
            .map_err(|e| FormatError::syntax(ln, format!("bad number for {key}: {e}")))
    }

    /// Like [`Scanner::expect_kv`] but parses the value as `usize`.
    pub fn expect_kv_usize(&mut self, key: &'static str) -> Result<usize, FormatError> {
        let ln = self.line_number();
        let v = self.expect_kv(key)?;
        v.parse::<usize>()
            .map_err(|e| FormatError::syntax(ln, format!("bad integer for {key}: {e}")))
    }

    /// Reads a `BEGIN <name> <count> ... END <name>` numeric block.
    pub fn read_block(&mut self, name: &str) -> Result<Vec<f64>, FormatError> {
        let ln = self.line_number();
        let line = self.next_line()?;
        let mut parts = line.split_whitespace();
        if parts.next() != Some("BEGIN") {
            return Err(FormatError::syntax(
                ln,
                format!("expected `BEGIN {name} <count>`, got {line:?}"),
            ));
        }
        let got_name = parts
            .next()
            .ok_or_else(|| FormatError::syntax(ln, "BEGIN missing block name"))?;
        if got_name != name {
            return Err(FormatError::syntax(
                ln,
                format!("expected block {name:?}, got {got_name:?}"),
            ));
        }
        let count: usize = parts
            .next()
            .ok_or_else(|| FormatError::syntax(ln, "BEGIN missing count"))?
            .parse()
            .map_err(|e| FormatError::syntax(ln, format!("bad count: {e}")))?;

        let mut values = Vec::with_capacity(count);
        loop {
            let ln = self.line_number();
            let line = self.next_line()?;
            let trimmed = line.trim();
            if let Some(rest) = trimmed.strip_prefix("END") {
                let end_name = rest.trim();
                if !end_name.is_empty() && end_name != name {
                    return Err(FormatError::syntax(
                        ln,
                        format!("END {end_name:?} does not match BEGIN {name:?}"),
                    ));
                }
                break;
            }
            for tok in trimmed.split_whitespace() {
                let v: f64 = tok
                    .parse()
                    .map_err(|e| FormatError::syntax(ln, format!("bad value {tok:?}: {e}")))?;
                values.push(v);
            }
            if values.len() > count {
                return Err(FormatError::CountMismatch {
                    block: name.to_string(),
                    expected: count,
                    found: values.len(),
                });
            }
        }
        if values.len() != count {
            return Err(FormatError::CountMismatch {
                block: name.to_string(),
                expected: count,
                found: values.len(),
            });
        }
        Ok(values)
    }
}

/// Appends the magic line.
pub fn write_magic(out: &mut String, magic: &str) {
    out.push_str(magic);
    out.push_str(" 1.0\n");
}

/// Appends a `KEY: value` line.
pub fn write_kv(out: &mut String, key: &str, value: impl std::fmt::Display) {
    let _ = writeln!(out, "{key}: {value}");
}

/// Appends a numeric block in the standard layout.
pub fn write_block(out: &mut String, name: &str, values: &[f64]) {
    let _ = writeln!(out, "BEGIN {name} {}", values.len());
    for chunk in values.chunks(VALUES_PER_LINE) {
        let mut first = true;
        for v in chunk {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{v:.16e}");
            first = false;
        }
        out.push('\n');
    }
    let _ = writeln!(out, "END {name}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_roundtrip() {
        let mut s = String::new();
        write_magic(&mut s, "ARP-TEST");
        write_kv(&mut s, "STATION", "SSLB");
        write_kv(&mut s, "DT", 0.01);
        write_kv(&mut s, "NPTS", 42usize);

        let mut sc = Scanner::new(&s);
        sc.expect_magic("ARP-TEST").unwrap();
        assert_eq!(sc.expect_kv("STATION").unwrap(), "SSLB");
        assert!((sc.expect_kv_f64("DT").unwrap() - 0.01).abs() < 1e-15);
        assert_eq!(sc.expect_kv_usize("NPTS").unwrap(), 42);
        assert!(sc.at_end());
    }

    #[test]
    fn block_roundtrip_preserves_values() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.377).sin() * 1e-3).collect();
        let mut s = String::new();
        write_block(&mut s, "ACC", &values);
        let mut sc = Scanner::new(&s);
        let back = sc.read_block("ACC").unwrap();
        assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(values.iter()) {
            assert!((a - b).abs() < 1e-12 * b.abs().max(1e-12));
        }
    }

    #[test]
    fn empty_block_roundtrip() {
        let mut s = String::new();
        write_block(&mut s, "EMPTY", &[]);
        let mut sc = Scanner::new(&s);
        assert!(sc.read_block("EMPTY").unwrap().is_empty());
    }

    #[test]
    fn bad_magic_detected() {
        let mut sc = Scanner::new("WRONG 1.0\n");
        match sc.expect_magic("RIGHT") {
            Err(FormatError::BadMagic { expected, .. }) => assert_eq!(expected, "RIGHT"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn wrong_key_detected() {
        let mut sc = Scanner::new("FOO: 1\n");
        assert!(sc.expect_kv("BAR").is_err());
    }

    #[test]
    fn missing_colon_detected() {
        let mut sc = Scanner::new("FOO 1\n");
        assert!(sc.expect_kv("FOO").is_err());
    }

    #[test]
    fn count_mismatch_detected() {
        let text = "BEGIN X 5\n1 2 3\nEND X\n";
        let mut sc = Scanner::new(text);
        match sc.read_block("X") {
            Err(FormatError::CountMismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, 5);
                assert_eq!(found, 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn overflow_count_detected() {
        let text = "BEGIN X 2\n1 2 3 4\nEND X\n";
        let mut sc = Scanner::new(text);
        assert!(matches!(
            sc.read_block("X"),
            Err(FormatError::CountMismatch { .. })
        ));
    }

    #[test]
    fn wrong_block_name_detected() {
        let text = "BEGIN Y 1\n1\nEND Y\n";
        let mut sc = Scanner::new(text);
        assert!(sc.read_block("X").is_err());
    }

    #[test]
    fn mismatched_end_name_detected() {
        let text = "BEGIN X 1\n1\nEND Y\n";
        let mut sc = Scanner::new(text);
        assert!(sc.read_block("X").is_err());
    }

    #[test]
    fn garbage_value_detected() {
        let text = "BEGIN X 2\n1 banana\nEND X\n";
        let mut sc = Scanner::new(text);
        match sc.read_block("X") {
            Err(FormatError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn truncated_file_detected() {
        let text = "BEGIN X 10\n1 2 3\n";
        let mut sc = Scanner::new(text);
        assert!(sc.read_block("X").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "\n\nKEY: v\n\n";
        let mut sc = Scanner::new(text);
        assert_eq!(sc.expect_kv("KEY").unwrap(), "v");
    }

    #[test]
    fn special_values_roundtrip() {
        let values = vec![0.0, -0.0, 1e-300, -1e300, 123.456789];
        let mut s = String::new();
        write_block(&mut s, "B", &values);
        let mut sc = Scanner::new(&s);
        let back = sc.read_block("B").unwrap();
        for (a, b) in back.iter().zip(values.iter()) {
            assert!((a - b).abs() <= 1e-9 * b.abs());
        }
    }
}
