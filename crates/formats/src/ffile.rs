//! `F` files — Fourier spectra (`<station><c>.f`), output of process #7.

use crate::error::FormatError;
use crate::fsio::write_file;
use crate::numio::{write_block, write_kv, write_magic, Scanner};
use crate::types::Component;
use arp_dsp::spectrum::FourierSpectrum;
use std::io::BufRead;
use std::path::Path;

pub(crate) const MAGIC: &str = "ARP-F";

/// Header portion of an F file: everything before the spectrum blocks.
pub(crate) struct FHead {
    pub station: String,
    pub event_id: String,
    pub component: Component,
    pub dt: f64,
}

/// A Fourier-spectrum file for one component.
#[derive(Debug, Clone, PartialEq)]
pub struct FFile {
    /// Station code.
    pub station: String,
    /// Event identifier.
    pub event_id: String,
    /// Component the spectra belong to.
    pub component: Component,
    /// Sampling interval of the source record (s).
    pub dt: f64,
    /// The spectra (frequency axis + acceleration/velocity/displacement).
    pub spectrum: FourierSpectrum,
}

impl FFile {
    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), FormatError> {
        let n = self.spectrum.frequency_hz.len();
        if self.spectrum.acceleration.len() != n
            || self.spectrum.velocity.len() != n
            || self.spectrum.displacement.len() != n
        {
            return Err(FormatError::InvalidValue(
                "spectrum column lengths differ".into(),
            ));
        }
        if !(self.dt.is_finite() && self.dt > 0.0) {
            return Err(FormatError::InvalidValue(format!("bad dt {}", self.dt)));
        }
        Ok(())
    }

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        write_magic(&mut out, MAGIC);
        write_kv(&mut out, "STATION", &self.station);
        write_kv(&mut out, "EVENT", &self.event_id);
        write_kv(&mut out, "COMPONENT", self.component.name());
        write_kv(&mut out, "DT", format!("{:.16e}", self.dt));
        write_block(&mut out, "FREQ", &self.spectrum.frequency_hz);
        write_block(&mut out, "FAS_ACC", &self.spectrum.acceleration);
        write_block(&mut out, "FAS_VEL", &self.spectrum.velocity);
        write_block(&mut out, "FAS_DISP", &self.spectrum.displacement);
        out
    }

    pub(crate) fn scan_head<B: BufRead>(sc: &mut Scanner<B>) -> Result<FHead, FormatError> {
        let station = sc.expect_kv("STATION")?;
        let event_id = sc.expect_kv("EVENT")?;
        let component = Component::from_name(&sc.expect_kv("COMPONENT")?)?;
        let dt = sc.expect_kv_f64("DT")?;
        Ok(FHead {
            station,
            event_id,
            component,
            dt,
        })
    }

    pub(crate) fn finish_body<B: BufRead>(
        sc: &mut Scanner<B>,
        head: FHead,
    ) -> Result<Self, FormatError> {
        let frequency_hz = sc.read_block("FREQ")?;
        let acceleration = sc.read_block("FAS_ACC")?;
        let velocity = sc.read_block("FAS_VEL")?;
        let displacement = sc.read_block("FAS_DISP")?;
        let file = FFile {
            station: head.station,
            event_id: head.event_id,
            component: head.component,
            dt: head.dt,
            spectrum: FourierSpectrum {
                frequency_hz,
                acceleration,
                velocity,
                displacement,
            },
        };
        file.validate()?;
        Ok(file)
    }

    pub(crate) fn from_scanner<B: BufRead>(sc: &mut Scanner<B>) -> Result<Self, FormatError> {
        sc.expect_magic(MAGIC)?;
        let head = Self::scan_head(sc)?;
        Self::finish_body(sc, head)
    }

    /// Parses from the text format.
    pub fn from_text(text: &str) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::from_text(text))
    }

    /// Parses from any buffered reader, consuming one record.
    pub fn from_reader<B: BufRead>(src: B) -> Result<Self, FormatError> {
        Self::from_scanner(&mut Scanner::new(src))
    }

    /// Writes to `path`.
    pub fn write(&self, path: &Path) -> Result<(), FormatError> {
        write_file(path, &self.to_text())
    }

    /// Reads from `path`, streaming with a bounded buffer.
    pub fn read(path: &Path) -> Result<Self, FormatError> {
        let mut sc = Scanner::open(path)?;
        Self::from_scanner(&mut sc).map_err(|e| e.in_file(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arp_dsp::spectrum::fourier_spectrum;

    fn sample() -> FFile {
        let dt = 0.02;
        let acc: Vec<f64> = (0..256).map(|i| (i as f64 * 0.3).sin()).collect();
        FFile {
            station: "SMIG".into(),
            event_id: "EV2".into(),
            component: Component::Longitudinal,
            dt,
            spectrum: fourier_spectrum(&acc, dt).unwrap(),
        }
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let back = FFile::from_text(&f.to_text()).unwrap();
        assert_eq!(back.station, "SMIG");
        assert_eq!(back.component, Component::Longitudinal);
        assert_eq!(back.spectrum.len(), f.spectrum.len());
        for (a, b) in back
            .spectrum
            .velocity
            .iter()
            .zip(f.spectrum.velocity.iter())
        {
            assert!((a - b).abs() <= 1e-9 * b.abs().max(1e-15));
        }
    }

    #[test]
    fn disk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("arp-f-{}", std::process::id()));
        let f = sample();
        let p = dir.join("SMIGl.f");
        f.write(&p).unwrap();
        assert_eq!(FFile::read(&p).unwrap().event_id, "EV2");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_columns_rejected() {
        let mut f = sample();
        f.spectrum.velocity.pop();
        assert!(f.validate().is_err());
        assert!(FFile::from_text(&f.to_text()).is_err());
    }

    #[test]
    fn bad_dt_rejected() {
        let mut f = sample();
        f.dt = 0.0;
        assert!(f.validate().is_err());
    }
}
