//! # arp-formats — file formats of the accelerographic-records pipeline
//!
//! Every artifact the pipeline reads or writes has a typed representation
//! with a text serialization, a validating parser, and disk I/O:
//!
//! | Module | Files |
//! |---|---|
//! | [`v1`] | `<s>.v1` (raw station), `<s><c>.v1` (per component) |
//! | [`v2`] | `<s><c>.v2` (corrected records) |
//! | [`ffile`] | `<s><c>.f` (Fourier spectra) |
//! | [`rfile`] | `<s><c>.r` (response spectra) |
//! | [`gem`] | `<s><c>GEM<2\|R><A\|V\|D>.gem` (GEM products) |
//! | [`meta`] | flags, file lists, filter params, max values |
//!
//! All formats share the layout implemented in [`numio`]: a magic line,
//! `KEY: value` headers, and counted `BEGIN`/`END` numeric blocks, so a
//! corrupt or truncated file is always detected rather than silently
//! mis-read.

#![deny(missing_docs)]

pub mod catalog;
pub mod encode;
pub mod error;
pub mod ffile;
pub mod filter;
pub mod fsio;
pub mod gem;
pub mod iter;
pub mod meta;
pub mod numio;
pub mod query;
pub mod rfile;
pub mod smc;
pub mod stats;
pub mod types;
pub mod v1;
pub mod v2;

pub use catalog::{Catalog, CatalogEntry};
pub use encode::RecordEncoder;
pub use error::FormatError;
pub use ffile::FFile;
pub use filter::Filter;
pub use gem::{GemFile, GemSource};
pub use iter::{Record, RecordKind, RecordMeta, RecordReader};
pub use meta::{FileList, FilterParams, FlagFile, MaxEntry, MaxValues, StationCorners};
pub use query::{Query, QueryHit, QueryIter};
pub use rfile::RFile;
pub use smc::{from_smc, to_smc};
pub use types::{names, Component, MotionTriple, Quantity, RecordHeader};
pub use v1::{V1ComponentFile, V1StationFile};
pub use v2::V2File;
